//! Process binning: use the sensor's self-extracted (ΔVtn, ΔVtp) to sort a
//! wafer's dies into speed bins — with **no external tester**.
//!
//! A die's digital speed tracks its threshold shifts; conventional binning
//! measures ring-oscillator speed on automated test equipment. A
//! self-calibrated PT sensor lets every die grade *itself* at boot. This
//! example draws a 500-die population, bins by sensor-reported ΔVtn, and
//! checks the agreement against the true (hidden) process state.
//!
//! Run with: `cargo run --release --example process_binning`

use tsv_pt_sensor::prelude::*;

/// Speed bin by NMOS threshold shift (lower Vt = faster).
fn bin_of(d_vtn_mv: f64) -> usize {
    match d_vtn_mv {
        x if x < -12.0 => 0, // fast
        x if x < 12.0 => 1,  // typical
        _ => 2,              // slow
    }
}

const BIN_NAMES: [&str; 3] = ["FAST", "TYP ", "SLOW"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let spec = SensorSpec::default_65nm();

    let n_dies = 500;
    let results = run_parallel(&McConfig::new(n_dies, 77), |i, rng| {
        let die = model.sample_die_with_id(rng, i);
        let mut sensor = PtSensor::new(tech.clone(), spec).expect("sensor builds");
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        sensor.calibrate(&boot, rng).expect("calibration converges");
        let cal = *sensor.calibration().expect("calibrated");
        // Truth at the PSRO-N site (what the sensor physically samples).
        let site = sensor.bank().site_of(RoClass::PsroN, DieSite::CENTER);
        let truth = die.d_vtn_at(site);
        (cal.d_vtn().millivolts(), truth.millivolts())
    });

    let mut confusion = [[0usize; 3]; 3];
    let mut err_stats = OnlineStats::new();
    for (reported, truth) in &results {
        confusion[bin_of(*truth)][bin_of(*reported)] += 1;
        err_stats.push(reported - truth);
    }

    println!("self-binning of {n_dies} dies by sensor-extracted ΔVtn\n");
    println!(
        "extraction error: mean {:+.3} mV, sd {:.3} mV, worst {:+.3} mV",
        err_stats.mean(),
        err_stats.std_dev(),
        err_stats.max_abs()
    );

    println!("\nconfusion matrix (rows = true bin, cols = sensor bin):");
    println!(
        "          {:>6} {:>6} {:>6}",
        BIN_NAMES[0], BIN_NAMES[1], BIN_NAMES[2]
    );
    let mut correct = 0;
    for (i, row) in confusion.iter().enumerate() {
        println!(
            "  {:>6}  {:>6} {:>6} {:>6}",
            BIN_NAMES[i], row[0], row[1], row[2]
        );
        correct += row[i];
    }
    let accuracy = 100.0 * correct as f64 / n_dies as f64;
    println!("\nbinning agreement: {accuracy:.1}%");

    // Histogram of the reported population.
    let mut hist = Histogram::new(-45.0, 45.0, 18);
    for (reported, _) in &results {
        hist.push(*reported);
    }
    println!("\nreported ΔVtn population [mV]:");
    print!("{}", hist.render(40));
    Ok(())
}
