//! Quickstart: build the sensor on a randomly-drawn die, self-calibrate at
//! boot, and read temperature + threshold drift across the operating range.
//!
//! Run with: `cargo run --release --example quickstart`

use tsv_pt_sensor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(2012);

    // Draw one die from the process spread — this is "our chip".
    let die = model.sample_die(&mut rng);
    println!(
        "die: ΔVtn(D2D) = {:+.2} mV, ΔVtp(D2D) = {:+.2} mV, µn = {:.3}, µp = {:.3}",
        die.d_vtn_d2d.millivolts(),
        die.d_vtp_d2d.millivolts(),
        die.mu_n_d2d,
        die.mu_p_d2d
    );

    // Build the sensor and self-calibrate at the assumed 25 °C boot point.
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm())?;
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let outcome = sensor.calibrate(&boot, &mut rng)?;
    let cal = outcome.calibration;
    println!(
        "self-calibration: extracted ΔVtn = {:+.2} mV, ΔVtp = {:+.2} mV, µn = {:.3}, µp = {:.3} \
         ({} Newton iterations, {:.1} pJ)",
        cal.d_vtn().millivolts(),
        cal.d_vtp().millivolts(),
        cal.mu_n(),
        cal.mu_p(),
        outcome.solver_iterations,
        outcome.energy.total().picojoules(),
    );

    // Sweep the true junction temperature and read back.
    println!(
        "\n{:>8}  {:>10}  {:>8}  {:>12}  {:>12}  {:>10}",
        "true °C", "read °C", "err °C", "ΔVtn [mV]", "ΔVtp [mV]", "E [pJ]"
    );
    for t in (-20..=100).step_by(10) {
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(t as f64));
        let r = sensor.read(&inputs, &mut rng)?;
        println!(
            "{:>8}  {:>10.3}  {:>8.3}  {:>12.2}  {:>12.2}  {:>10.1}",
            t,
            r.temperature.0,
            r.temperature.0 - t as f64,
            r.d_vtn.millivolts(),
            r.d_vtp.millivolts(),
            r.energy_total().picojoules(),
        );
    }

    Ok(())
}
