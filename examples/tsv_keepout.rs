//! TSV keep-out-zone survey: place the sensor at increasing distance from a
//! TSV and compare the *tracked* threshold drift against the true
//! stress-induced shift — the sensing capability that motivates placing PT
//! sensors inside TSV-dense regions.
//!
//! Run with: `cargo run --release --example tsv_keepout`

use tsv_pt_sensor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let stress = StressModel::default_65nm();
    let geom = TsvGeometry::standard_10um();
    let temp = Celsius(60.0);

    println!(
        "TSV: r = {} µm, wall stress {:.0} MPa at 25 °C",
        geom.radius.0,
        stress.sigma_edge(Celsius(25.0)).0 / 1e6
    );
    let koz = stress.keep_out_radius(&geom, 0.01, Celsius(25.0));
    println!("1% mobility keep-out radius: {:.1} µm\n", koz.0);

    // One die, one sensor, calibrated far from any TSV.
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(9);
    let model = VariationModel::new(&tech);
    let die = model.sample_die(&mut rng);
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm())?;
    sensor.calibrate(
        &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
        &mut rng,
    )?;

    // Reference reading with no stress.
    let clean = sensor.read(&SensorInputs::new(&die, DieSite::CENTER, temp), &mut rng)?;

    println!(
        "{:>10}  {:>14}  {:>14}  {:>14}  {:>10}",
        "dist [µm]", "true ΔVtn [mV]", "tracked [mV]", "true ΔVtp [mV]", "T err [°C]"
    );
    for dist in [6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0] {
        let d = Micron(dist);
        let s_vtn = stress.delta_vtn(&geom, d, temp);
        let s_vtp = stress.delta_vtp(&geom, d, temp);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, temp).with_stress(s_vtn, s_vtp);
        let r = sensor.read(&inputs, &mut rng)?;
        let tracked = (r.d_vtn - clean.d_vtn).millivolts();
        println!(
            "{:>10.1}  {:>14.3}  {:>14.3}  {:>14.3}  {:>10.3}",
            dist,
            s_vtn.millivolts(),
            tracked,
            s_vtp.millivolts(),
            r.temperature.0 - temp.0,
        );
    }

    println!(
        "\nthe sensor resolves stress-induced ΔVtn down to ~1 mV \
         (paper sensitivity: ±1.6 mV) without disturbing the temperature reading"
    );
    Ok(())
}
