//! Closed-loop dynamic thermal management (DTM): sensors in the loop.
//!
//! A 4-tier stack runs a bursty workload on tier 0. A DTM controller reads
//! the per-tier sensors every 2 ms and throttles the workload whenever any
//! *reported* temperature crosses the limit; it recovers when readings drop
//! below the release threshold. The experiment shows (a) the loop regulates
//! the true temperature even though it only ever sees sensor readings, and
//! (b) a whole-tier picture reconstructed from three sensors via
//! inverse-distance weighting.
//!
//! Run with: `cargo run --release --example dtm_loop`

use tsv_pt_sensor::core::fieldest::FieldEstimator;
use tsv_pt_sensor::prelude::*;

const T_LIMIT: f64 = 45.0;
const T_RELEASE: f64 = 42.0;

fn tier0_power(throttled: bool) -> Result<PowerMap, Box<dyn std::error::Error>> {
    let scale = if throttled { 0.35 } else { 1.0 };
    let mut p = PowerMap::zero(16, 16)?;
    p.add_hotspot(0.3, 0.3, 0.10, Watt(4.0 * scale));
    p.add_block(0.55, 0.55, 0.95, 0.95, Watt(1.0 * scale));
    Ok(p)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(77);
    let dies: Vec<DieSample> = (0..4)
        .map(|i| model.sample_die_with_id(&mut rng, i))
        .collect();

    let mut monitor = StackMonitor::new(
        StackTopology::reference_four_tier(),
        dies,
        DieSite::new(0.3, 0.3), // sensor co-located with the hotspot block
        &tech,
        SensorSpec::default_65nm(),
    )?;
    monitor.calibrate_all(&mut rng)?;

    let mut thermal = monitor.build_thermal()?;
    let mut throttled = false;
    thermal.set_power(0, tier0_power(throttled)?)?;

    println!(
        "{:>7}  {:>10}  {:>10}  {:>10}  {:>9}",
        "t [ms]", "T0 true", "T0 read", "throttle", "err [°C]"
    );
    let mut throttle_events = 0;
    let mut max_true: f64 = 0.0;
    for step in 1..=40 {
        step_transient(&mut thermal, Seconds(0.002));
        let readings = monitor.read_all(&thermal, &mut rng)?;
        let hottest_read = readings
            .iter()
            .map(|r| r.reading.temperature.0)
            .fold(f64::NEG_INFINITY, f64::max);

        // Hysteresis control on the *reported* temperature.
        let was = throttled;
        if !throttled && hottest_read > T_LIMIT {
            throttled = true;
            throttle_events += 1;
        } else if throttled && hottest_read < T_RELEASE {
            throttled = false;
        }
        if was != throttled {
            thermal.set_power(0, tier0_power(throttled)?)?;
        }

        max_true = max_true.max(readings[0].true_temp.0);
        if step % 4 == 0 || was != throttled {
            println!(
                "{:>7}  {:>10.2}  {:>10.2}  {:>10}  {:>9.3}",
                step * 2,
                readings[0].true_temp.0,
                readings[0].reading.temperature.0,
                if throttled { "ON" } else { "off" },
                readings[0].temp_error(),
            );
        }
    }

    println!(
        "\n{} throttle event(s); true tier-0 peak {:.2} °C vs {:.1} °C limit \
         (+{:.2} °C overshoot budget incl. the sensor's ±1.5 °C band)",
        throttle_events,
        max_true,
        T_LIMIT,
        (max_true - T_LIMIT).max(0.0),
    );

    // Whole-tier view from three sensors (placement: hotspot, block, far corner).
    let sites = vec![
        DieSite::new(0.3, 0.3),
        DieSite::new(0.75, 0.75),
        DieSite::new(0.8, 0.15),
    ];
    let readings: Vec<Celsius> = sites
        .iter()
        .map(|s| thermal.temperature_at(0, s.x, s.y))
        .collect::<Result<_, _>>()?;
    let est = FieldEstimator::new(sites, readings)?;
    let (max_err, rms) = est.error_against(&thermal, 0)?;
    println!(
        "field reconstruction from 3 sensors: max error {max_err:.2} °C, rms {rms:.2} °C \
         across the 16×16 tier grid"
    );
    Ok(())
}
