//! Closed-loop dynamic thermal management (DTM): sensors in the loop.
//!
//! A 4-tier stack runs a seeded synthetic workload trace on tier 0. The
//! [`DtmController`] reads the per-tier sensors every 2 ms and walks a
//! six-point DVFS ladder on the *reported* temperature only; deep
//! operating points (0.25–0.5 V) hand sensing over to the 2013 sensor's
//! dynamic-voltage-selection mode through the dual-mode [`DvsDtmSensing`]
//! stack. The printout shows the loop regulating the true temperature it
//! never directly sees, the ladder level over time, and the sensing mode
//! switching as the rail drops. The graded fixed-seed version of this
//! loop is the R3 campaign (`cargo run --release -p ptsim-bench --bin
//! dtm_campaign`); a whole-tier reconstruction from three sensors closes
//! the demo.
//!
//! Run with: `cargo run --release --example dtm_loop`

use tsv_pt_sensor::core::fieldest::FieldEstimator;
use tsv_pt_sensor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let spec = SensorSpec::default_65nm();
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(77);
    let dies: Vec<DieSample> = (0..4)
        .map(|i| model.sample_die_with_id(&mut rng, i))
        .collect();

    let steps = 150;
    let trace = WorkloadTrace::synth(77, steps);
    // Place the sensors at the floorplan's hottest cell (steady solve at
    // peak demand) — the spot the controller must defend.
    let topo = StackTopology::reference_four_tier();
    let mut scratch_stack = topo.build_thermal()?;
    let site = hottest_site(&mut scratch_stack, &trace, 0)?;
    let monitor = StackMonitor::new(topo, dies, site, &tech, spec)?;
    let mut thermal = monitor.build_thermal()?;

    // One dual-mode sensing stack per tier: 2012 sensor at nominal rail,
    // 2013 DVS sensor once the ladder drops to 0.5 V or below.
    let mut sensing: Vec<DvsDtmSensing> = (0..4)
        .map(|_| DvsDtmSensing::new(&tech, spec))
        .collect::<Result<_, _>>()?;

    let mut controller = DtmController::new(DvfsTable::default_six_point(), DtmConfig::default())?;
    let cfg = *controller.config();
    let outcome = run_dtm_loop(
        &monitor,
        &mut thermal,
        &mut sensing,
        &mut controller,
        &trace,
        0,
        steps,
        &mut rng,
    )?;

    println!(
        "{:>7}  {:>7}  {:>6}  {:>10}  {:>10}  {:>8}",
        "t [ms]", "demand", "level", "T peak", "T read", "mode"
    );
    for r in outcome.records.iter().step_by(4) {
        println!(
            "{:>7.0}  {:>7.2}  {:>6}  {:>10.2}  {:>10.2}  {:>8}",
            r.step as f64 * cfg.sample_period.0 * 1e3,
            r.demand,
            r.level,
            r.true_peak.0,
            r.reported_hottest.0,
            match r.mode {
                SensingMode::Nominal => "nominal",
                SensingMode::DynamicVoltageSelection => "DVS",
            },
        );
    }

    println!(
        "\ntrue peak {:.2} °C vs {:.1} °C limit (overshoot {:.2} °C); \
         {} actuation(s), duty {:.2}, deepest level {}",
        outcome.peak_true.0,
        cfg.t_limit.0,
        outcome.overshoot,
        outcome.actuations,
        outcome.throttle_duty,
        outcome.min_level,
    );
    println!(
        "sensing: worst decision-instant error {:.2} °C, {:.0}% of conversions in DVS mode, \
         total conversion energy {:.1} nJ",
        outcome.worst_lag_error,
        100.0 * outcome.dvs_read_fraction,
        outcome.sensing_energy.0 * 1e9,
    );

    // Whole-tier view from three sensors (placement: hotspot, block, far corner).
    let sites = vec![site, DieSite::new(0.75, 0.75), DieSite::new(0.8, 0.15)];
    let readings: Vec<Celsius> = sites
        .iter()
        .map(|s| thermal.temperature_at(0, s.x, s.y))
        .collect::<Result<_, _>>()?;
    let est = FieldEstimator::new(sites, readings)?;
    let (max_err, rms) = est.error_against(&thermal, 0)?;
    println!(
        "field reconstruction from 3 sensors: max error {max_err:.2} °C, rms {rms:.2} °C \
         across the 16×16 tier grid"
    );
    Ok(())
}
