//! 3D-stack monitoring: one PT sensor per tier of a 4-tier TSV stack,
//! tracking a transient workload heat-up against thermal ground truth.
//!
//! This is the paper's application scenario: intra-die temperature and
//! threshold monitoring of a TSV-integrated 3D-IC.
//!
//! Run with: `cargo run --release --example stack_monitor`

use tsv_pt_sensor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(42);

    // Four independently-fabricated dies stacked with TSVs.
    let dies: Vec<DieSample> = (0..4)
        .map(|i| model.sample_die_with_id(&mut rng, i))
        .collect();
    let topology = StackTopology::reference_four_tier();
    let mut monitor = StackMonitor::new(
        topology,
        dies,
        DieSite::new(0.3, 0.3),
        &tech,
        SensorSpec::default_65nm(),
    )?;

    // Boot: stack idle at ambient, every tier self-calibrates.
    monitor.calibrate_all(&mut rng)?;
    println!("all 4 tiers self-calibrated at 25 °C ambient\n");

    // Workload: CPU-like hotspot on tier 0 (2 W) plus uniform 0.5 W on
    // tier 2 (memory refresh).
    let mut thermal = monitor.build_thermal()?;
    let mut p0 = PowerMap::zero(16, 16)?;
    p0.add_hotspot(0.3, 0.3, 0.12, Watt(2.0));
    thermal.set_power(0, p0)?;
    thermal.set_power(2, PowerMap::uniform(16, 16, Watt(0.5))?)?;

    // Transient heat-up: the thinned dies have millisecond-scale thermal
    // time constants, so sample every 2 ms.
    println!(
        "{:>8}  {}",
        "t [ms]",
        (0..4)
            .map(|t| format!("tier{t}: true/read [°C]   "))
            .collect::<String>()
    );
    let mut elapsed_ms = 0.0;
    for _ in 0..10 {
        step_transient(&mut thermal, Seconds(0.002));
        elapsed_ms += 2.0;
        let readings = monitor.read_all(&thermal, &mut rng)?;
        let row: String = readings
            .iter()
            .map(|r| {
                format!(
                    "{:>7.2} /{:>7.2}       ",
                    r.true_temp.0, r.reading.temperature.0
                )
            })
            .collect();
        println!("{elapsed_ms:>8.1}  {row}");
    }

    // Steady state.
    solve_steady_state(&mut thermal, &SolveOptions::default())?;
    let readings = monitor.read_all(&thermal, &mut rng)?;
    println!("\nsteady state:");
    for r in &readings {
        println!(
            "  tier {}: true {:>7.2} °C, read {:>7.2} °C (err {:+.2} °C), \
             stress ΔVtn {:+.3} mV, drift since boot {:+.3} mV",
            r.tier,
            r.true_temp.0,
            r.reading.temperature.0,
            r.temp_error(),
            r.true_stress_shift.0.millivolts(),
            r.vt_drift.0.millivolts(),
        );
    }

    let worst = readings
        .iter()
        .map(|r| r.temp_error().abs())
        .fold(0.0, f64::max);
    println!("\nworst-tier temperature error: {worst:.2} °C (paper reports ±1.5 °C)");
    Ok(())
}
