//! Lifetime aging monitor: the sensor tracks BTI/HCI threshold drift over a
//! ten-year deployment — the "process" half of the PT sensor doing the job
//! silicon-lifecycle-management products do today.
//!
//! The die self-calibrates once at time zero; afterwards the logic ages
//! (NBTI on PMOS, PBTI + HCI on NMOS) and every conversion's tracked
//! (ΔVtn, ΔVtp) drift is compared against the true injected aging.
//!
//! Run with: `cargo run --release --example aging_monitor`

use tsv_pt_sensor::device::aging::{AgingModel, StressCondition, TEN_YEARS};
use tsv_pt_sensor::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(3);
    let die = model.sample_die(&mut rng);

    let nbti = AgingModel::nbti_65nm();
    let pbti = AgingModel::pbti_65nm();
    let stress = StressCondition {
        temp: Celsius(85.0),
        overdrive: Volt(0.65),
        duty: 0.5,
        activity: 0.15,
    };

    // Boot: fresh silicon, self-calibrate at 25 °C.
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm())?;
    sensor.calibrate(
        &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
        &mut rng,
    )?;
    let cal = *sensor.calibration().expect("calibrated");
    println!(
        "t=0 self-calibration: ΔVtn = {:+.2} mV, ΔVtp = {:+.2} mV\n",
        cal.d_vtn().millivolts(),
        cal.d_vtp().millivolts()
    );

    println!(
        "{:>9}  {:>13}  {:>13}  {:>13}  {:>13}  {:>9}",
        "age", "true ΔVtn agg", "tracked drift", "true ΔVtp agg", "tracked drift", "T err °C"
    );
    for (label, frac) in [
        ("1 month", 1.0 / 120.0),
        ("6 months", 0.05),
        ("1 year", 0.1),
        ("2 years", 0.2),
        ("5 years", 0.5),
        ("10 years", 1.0),
    ] {
        let age = Seconds(TEN_YEARS.0 * frac);
        // Aging increases both threshold magnitudes.
        let aged_vtn = pbti.delta_vt(&stress, age);
        let aged_vtp = nbti.delta_vt(&stress, age);
        let operating = Celsius(85.0);
        let inputs =
            SensorInputs::new(&die, DieSite::CENTER, operating).with_stress(aged_vtn, aged_vtp);
        let r = sensor.read(&inputs, &mut rng)?;
        let drift_n = (r.d_vtn - cal.d_vtn()).millivolts();
        let drift_p = (r.d_vtp - cal.d_vtp()).millivolts();
        println!(
            "{:>9}  {:>13.2}  {:>13.2}  {:>13.2}  {:>13.2}  {:>9.3}",
            label,
            aged_vtn.millivolts(),
            drift_n,
            aged_vtp.millivolts(),
            drift_p,
            r.temperature.0 - operating.0,
        );
    }

    // When does the PMOS cross a 30 mV end-of-life guardband?
    if let Some(t) = nbti.time_to_drift(&stress, Volt(0.030), TEN_YEARS) {
        println!(
            "\nNBTI reaches the 30 mV guardband after {:.1} years — the tracked drift \
             lets firmware see it coming instead of provisioning worst-case margin.",
            t.0 / (365.25 * 24.0 * 3600.0)
        );
    }
    Ok(())
}
