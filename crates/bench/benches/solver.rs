//! Newton decoupling-solver throughput (internal harness) — the on-chip
//! datapath's software model; conversions are solver-bound.

use ptsim_bench::harness::{bench, emit_meta};
use ptsim_core::newton::{newton_solve, NewtonOptions};
use std::hint::black_box;

fn main() {
    emit_meta();
    bench("newton_1d_sqrt", || {
        let mut x = [1.0];
        newton_solve(
            &mut x,
            |v| vec![v[0] * v[0] - black_box(2.0)],
            &[1e-7],
            &[10.0],
            &NewtonOptions::default(),
            "bench",
        )
        .unwrap();
        black_box(x[0]);
    });

    // Same dimensionality/conditioning class as the calibration solve.
    bench("newton_4d_decoupling_shape", || {
        let mut x = [0.0f64, 0.0, 1.0, 1.0];
        let target = [0.012f64, -0.008, 1.03, 0.97];
        newton_solve(
            &mut x,
            |v| {
                vec![
                    (v[2] * (0.65 - v[0]).powf(1.3)).ln()
                        - (target[2] * (0.65 - target[0]).powf(1.3)).ln(),
                    (v[2] * (0.20 - v[0]).exp()).ln() - (target[2] * (0.20 - target[0]).exp()).ln(),
                    (v[3] * (0.67 - v[1]).powf(1.3)).ln()
                        - (target[3] * (0.67 - target[1]).powf(1.3)).ln(),
                    (v[3] * (0.22 - v[1]).exp()).ln() - (target[3] * (0.22 - target[1]).exp()).ln(),
                ]
            },
            &[1e-4, 1e-4, 1e-3, 1e-3],
            &[0.04, 0.04, 0.15, 0.15],
            &NewtonOptions::default(),
            "bench",
        )
        .unwrap();
        black_box(x);
    });
}
