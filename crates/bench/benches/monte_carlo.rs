//! Criterion: Monte-Carlo die-sampling throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ptsim_device::process::Technology;
use ptsim_mc::driver::die_rng;
use ptsim_mc::model::VariationModel;
use std::hint::black_box;

fn bench_mc(c: &mut Criterion) {
    let model = VariationModel::new(&Technology::n65());
    c.bench_function("sample_die", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = die_rng(42, i);
            black_box(model.sample_die_with_id(&mut rng, i))
        })
    });
    c.bench_function("die_env_query", |b| {
        let mut rng = die_rng(42, 0);
        let die = model.sample_die(&mut rng);
        b.iter(|| {
            black_box(die.env_at(
                ptsim_mc::die::DieSite::new(0.37, 0.61),
                ptsim_device::units::Celsius(55.0),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_mc
}
criterion_main!(benches);
