//! Monte-Carlo die-sampling throughput (internal harness).

use ptsim_bench::harness::{bench, emit_meta};
use ptsim_device::process::Technology;
use ptsim_mc::driver::die_rng;
use ptsim_mc::model::VariationModel;
use std::hint::black_box;

fn main() {
    emit_meta();
    let model = VariationModel::new(&Technology::n65());

    let mut i = 0u64;
    bench("sample_die", || {
        i += 1;
        let mut rng = die_rng(42, i);
        black_box(model.sample_die_with_id(&mut rng, i));
    });

    let mut rng = die_rng(42, 0);
    let die = model.sample_die(&mut rng);
    bench("die_env_query", || {
        black_box(die.env_at(
            ptsim_mc::die::DieSite::new(0.37, 0.61),
            ptsim_device::units::Celsius(55.0),
        ));
    });
}
