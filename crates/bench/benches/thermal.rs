//! Criterion: thermal-solver scaling (steady-state solve of the reference
//! 4-tier stack, and one transient step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptsim_device::units::{Seconds, Watt};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, step_transient, SolveOptions};
use ptsim_thermal::stack::{StackConfig, ThermalStack};
use std::hint::black_box;

fn stack(n: usize) -> ThermalStack {
    let cfg = StackConfig {
        nx: n,
        ny: n,
        ..StackConfig::four_tier_5mm()
    };
    let mut s = ThermalStack::new(cfg).unwrap();
    let mut p = PowerMap::zero(n, n).unwrap();
    p.add_hotspot(0.3, 0.3, 0.1, Watt(2.0));
    s.set_power(0, p).unwrap();
    s
}

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = stack(n);
                black_box(solve_steady_state(&mut s, &SolveOptions::default()).unwrap())
            })
        });
    }
    group.finish();

    c.bench_function("transient_step_16x16x4", |b| {
        let mut s = stack(16);
        b.iter(|| black_box(step_transient(&mut s, Seconds(1e-4))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_thermal
}
criterion_main!(benches);
