//! Thermal-solver scaling (internal harness): steady-state solve of the
//! reference 4-tier stack at several grid sizes, and one transient step.
//!
//! `steady_state/{8,16,32,64}` time the multigrid production solver
//! ([`solve_steady_state_mg`]); `steady_state_gs/16` keeps the
//! Gauss–Seidel oracle on the trajectory so a regression in either
//! solver is visible on its own.

use ptsim_bench::harness::{bench, emit_meta};
use ptsim_device::units::{Seconds, Watt};
use ptsim_thermal::multigrid::{solve_steady_state_mg, MgOptions};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{
    solve_steady_state, step_transient, step_transient_with, SolveOptions, TransientScratch,
};
use ptsim_thermal::stack::{StackConfig, ThermalStack};
use std::hint::black_box;

fn stack(n: usize) -> ThermalStack {
    let cfg = StackConfig {
        nx: n,
        ny: n,
        ..StackConfig::four_tier_5mm()
    };
    let mut s = ThermalStack::new(cfg).unwrap();
    let mut p = PowerMap::zero(n, n).unwrap();
    p.add_hotspot(0.3, 0.3, 0.1, Watt(2.0));
    s.set_power(0, p).unwrap();
    s
}

fn main() {
    emit_meta();
    for n in [8usize, 16, 32, 64] {
        bench(&format!("steady_state/{n}"), || {
            let mut s = stack(n);
            black_box(solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap());
        });
    }

    bench("steady_state_gs/16", || {
        let mut s = stack(16);
        black_box(solve_steady_state(&mut s, &SolveOptions::default()).unwrap());
    });

    let mut s = stack(16);
    bench("transient_step_16x16x4", || {
        black_box(step_transient(&mut s, Seconds(1e-4)));
    });

    // The DTM control-loop tick: caller-held scratch, no per-step heap
    // traffic (the counting-allocator gate in ptsim-core enforces zero
    // allocations; this tracks what the saved allocations buy in time).
    let mut s = stack(16);
    let mut scratch = TransientScratch::new();
    step_transient_with(&mut s, Seconds(1e-4), &mut scratch);
    bench("transient_step_warm_16x16x4", || {
        black_box(step_transient_with(&mut s, Seconds(1e-4), &mut scratch));
    });
}
