//! Whole-pipeline conversion throughput (internal harness) — the per-die
//! inner loop every campaign (golden gates, R1, F3/F4) funnels through.
//!
//! `batch_convert_100` is the headline perf-trajectory number: a full
//! 100-die population (calibrate at boot + one conversion per die) on one
//! thread, so the measurement tracks the per-die hot path rather than
//! thread-pool noise — since the SoA refactor it runs the lane kernel,
//! with `batch_convert_scalar_100` keeping the bit-exact scalar oracle on
//! the same trajectory. `read_batch_100` isolates the steady-state
//! conversion loop of one calibrated sensor over a 100-point temperature
//! schedule.

use ptsim_bench::harness::{bench, emit_meta, emit_metrics};
use ptsim_core::pipeline::batch::BatchPlan;
use ptsim_core::pipeline::Scratch;
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{die_rng, McConfig};
use ptsim_mc::model::VariationModel;
use std::hint::black_box;

fn main() {
    emit_meta();
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);

    let plan = BatchPlan::new(tech.clone(), SensorSpec::default_65nm())
        .unwrap()
        .read_at(&[63.0]);
    let mut cfg = McConfig::new(100, 0x2012);
    cfg.threads = 1;
    bench("batch_convert_100", || {
        black_box(plan.run_population(&cfg, &model));
    });

    // The retained scalar oracle stays on the trajectory next to the lane
    // kernel (same population, same seed), so a regression in either path
    // is attributable from the medians alone.
    bench("batch_convert_scalar_100", || {
        black_box(plan.run_population_scalar(&cfg, &model));
    });

    let mut rng = die_rng(0x2012, 0);
    let die = model.sample_die(&mut rng);
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm()).unwrap();
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
    let temps: Vec<Celsius> = (0..100).map(|i| Celsius(-40.0 + 1.6 * i as f64)).collect();
    let inputs: Vec<SensorInputs> = temps
        .iter()
        .map(|&t| SensorInputs::new(&die, DieSite::CENTER, t))
        .collect();
    bench("read_batch_100", || {
        black_box(sensor.read_batch(&inputs, &mut rng).unwrap());
    });

    // Same per-die loop with the observability layer on, so the trajectory
    // records the instrumented hot path too — and emit the snapshot (per
    // stage spans, energy histogram, conversion counters) for inspection.
    let mut scratch = Scratch::with_metrics();
    bench("batch_convert_metrics_8", || {
        let mut s = plan.sensor();
        let mut rng = die_rng(0x2012, 1);
        let die = model.sample_die(&mut rng);
        for _ in 0..8 {
            black_box(
                plan.convert_with_scratch(&mut s, &die, &mut rng, &mut scratch)
                    .unwrap(),
            );
        }
    });
    if let Some(metrics) = scratch.take_metrics() {
        emit_metrics(&metrics.snapshot());
    }
}
