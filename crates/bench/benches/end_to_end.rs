//! End-to-end sensor operations (internal harness) — calibration and
//! conversion rate (simulated conversions per wall-clock second).

use ptsim_bench::harness::{bench, emit_meta};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::die_rng;
use ptsim_mc::model::VariationModel;
use std::hint::black_box;

fn main() {
    emit_meta();
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = die_rng(7, 0);
    let die = model.sample_die(&mut rng);

    bench("self_calibration", || {
        let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).unwrap();
        let mut rng = die_rng(7, 1);
        black_box(
            sensor
                .calibrate(
                    &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                    &mut rng,
                )
                .unwrap(),
        );
    });

    let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).unwrap();
    let mut rng = die_rng(7, 2);
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .unwrap();
    bench("conversion", || {
        black_box(
            sensor
                .read(
                    &SensorInputs::new(&die, DieSite::CENTER, Celsius(63.0)),
                    &mut rng,
                )
                .unwrap(),
        );
    });
}
