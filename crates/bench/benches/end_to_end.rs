//! Criterion: end-to-end sensor operations — calibration and conversion
//! rate (simulated conversions per wall-clock second).

use criterion::{criterion_group, criterion_main, Criterion};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::die_rng;
use ptsim_mc::model::VariationModel;
use std::hint::black_box;

fn bench_sensor(c: &mut Criterion) {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = die_rng(7, 0);
    let die = model.sample_die(&mut rng);

    c.bench_function("self_calibration", |b| {
        b.iter(|| {
            let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).unwrap();
            let mut rng = die_rng(7, 1);
            black_box(
                sensor
                    .calibrate(
                        &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                        &mut rng,
                    )
                    .unwrap(),
            )
        })
    });

    c.bench_function("conversion", |b| {
        let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).unwrap();
        let mut rng = die_rng(7, 2);
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                &mut rng,
            )
            .unwrap();
        b.iter(|| {
            black_box(
                sensor
                    .read(
                        &SensorInputs::new(&die, DieSite::CENTER, Celsius(63.0)),
                        &mut rng,
                    )
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_sensor
}
criterion_main!(benches);
