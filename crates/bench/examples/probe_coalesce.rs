//! Diagnostic: confirm the shard coalescing scheduler engages under
//! concurrent single-read load.
//!
//! Boots a loadgen-shaped fleet (16 dies, 4 shards, `coalesce_max` 64),
//! drives 8 concurrent v2 connections, then prints the derived
//! `svc.coalesced_*` health counters. A healthy run shows a substantial
//! fraction of `svc.served` arriving via grouped wakes; all-zero counters
//! mean per-shard queue depth never exceeded one and the scheduler had
//! nothing to group.
//!
//! ```text
//! cargo run --release -p ptsim-bench --example probe_coalesce
//! ```

use ptsim_service::protocol::{Request, Response};
use ptsim_service::{Client, Fleet, FleetConfig, Server, ServerConfig};

fn read(die: u64) -> Request {
    Request::Read {
        die,
        temp_c: 60.0,
        priority: 1,
        deadline_ms: 30_000,
    }
}

fn main() {
    let fleet = Fleet::start(FleetConfig {
        n_dies: 16,
        n_shards: 4,
        queue_depth: 256,
        base_seed: 0x10ad,
        coalesce_max: 64,
        ..FleetConfig::default()
    });
    let server =
        Server::bind(fleet, "127.0.0.1:0", ServerConfig::default()).expect("bind probe daemon");
    let addr = server.local_addr().to_string();

    // First touch pays calibration; keep it out of the contended phase.
    {
        let mut warm = Client::connect(&addr).expect("warmup connect");
        for die in 0..16 {
            warm.call(&read(die)).expect("warmup read");
        }
    }

    let handles: Vec<_> = (0..8u64)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_v2(&addr).expect("probe connect");
                for i in 0..600u64 {
                    let _ = client.call(&read((c * 600 + i) % 16));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("probe worker join");
    }

    let mut client = Client::connect(&addr).expect("health connect");
    if let Ok(Response::Health(h)) = client.call(&Request::Health) {
        for (k, v) in &h.counters {
            if k.contains("coalesc") || k == "svc.served" {
                println!("{k} = {v}");
            }
        }
    }
    server.stop();
    server.join();
}
