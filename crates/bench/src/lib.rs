//! # ptsim-bench
//!
//! Evaluation harness for the SOCC 2012 PT-sensor reproduction: one module
//! per reconstructed figure/table (see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for paper-vs-measured records). Each experiment is a
//! library function returning its rendered report, wrapped by a thin binary:
//!
//! ```text
//! cargo run --release -p ptsim-bench --bin fig_ro_vs_temp      # F1
//! cargo run --release -p ptsim-bench --bin fig_ro_vs_vt        # F2
//! cargo run --release -p ptsim-bench --bin fig_temp_error      # F3
//! cargo run --release -p ptsim-bench --bin fig_vt_error        # F4
//! cargo run --release -p ptsim-bench --bin fig_stack_tracking  # F5
//! cargo run --release -p ptsim-bench --bin fig_tsv_stress      # F6
//! cargo run --release -p ptsim-bench --bin tbl_energy          # T1
//! cargo run --release -p ptsim-bench --bin tbl_comparison      # T2
//! cargo run --release -p ptsim-bench --bin tbl_corners         # T3
//! cargo run --release -p ptsim-bench --bin tbl_ablation        # A1
//! cargo run --release -p ptsim-bench --bin fig_pvt2013         # X1
//! cargo run --release -p ptsim-bench --bin run_all             # everything
//! ```
//!
//! Micro-benchmarks live in `benches/` and run on the in-tree
//! [`harness`] (warmup + median-of-N, one JSON line per benchmark on
//! stdout) — `cargo bench -p ptsim-bench` needs no external crates.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod table;
