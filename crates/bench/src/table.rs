//! Minimal aligned-text table renderer for experiment reports.

/// Builds an aligned text table from a header row and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table with a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = width[i] - cell.chars().count();
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Formats a float with the given precision.
#[must_use]
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a signed float with the given precision.
#[must_use]
pub fn fs(v: f64, prec: usize) -> String {
    format!("{v:+.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.push(vec!["1", "2", "3"]);
        t.push(vec!["100", "2", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(fs(1.2345, 1), "+1.2");
        assert_eq!(fs(-0.5, 2), "-0.50");
    }
}
