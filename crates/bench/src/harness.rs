//! Minimal internal micro-benchmark harness — the workspace's zero-dependency
//! replacement for `criterion`.
//!
//! Protocol per benchmark: calibrate an iteration count so one sample takes
//! roughly [`Config::target_sample`], warm up for [`Config::warmup`], then
//! take [`Config::samples`] timed samples and report median / min / mean
//! nanoseconds-per-iteration. Results print as one JSON object per line so
//! `BENCH_*.json` trajectories can be scraped straight from stdout.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of timed samples (median is reported).
    pub samples: usize,
    /// Wall-clock target for one sample during calibration.
    pub target_sample: Duration,
    /// Warmup duration before sampling.
    pub warmup: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            samples: 15,
            target_sample: Duration::from_millis(40),
            warmup: Duration::from_millis(200),
        }
    }
}

impl Config {
    /// Default config with optional environment overrides, so CI can run the
    /// full bench suite as a fast smoke test without timing significance:
    /// `PTSIM_BENCH_SAMPLES`, `PTSIM_BENCH_TARGET_US`, `PTSIM_BENCH_WARMUP_US`.
    #[must_use]
    pub fn from_env() -> Self {
        fn env_u64(key: &str) -> Option<u64> {
            std::env::var(key).ok()?.parse().ok()
        }
        let mut cfg = Config::default();
        if let Some(n) = env_u64("PTSIM_BENCH_SAMPLES") {
            cfg.samples = (n as usize).max(1);
        }
        if let Some(us) = env_u64("PTSIM_BENCH_TARGET_US") {
            cfg.target_sample = Duration::from_micros(us.max(1));
        }
        if let Some(us) = env_u64("PTSIM_BENCH_WARMUP_US") {
            cfg.warmup = Duration::from_micros(us);
        }
        cfg
    }
}

/// Machine-readable metadata of one bench run, emitted as the first JSON
/// line so successive `BENCH_*.json` files are comparable. Rev and date are
/// provided by the caller (the harness reads no clock and runs no `git`):
/// either directly or via `PTSIM_BENCH_GIT_REV` / `PTSIM_BENCH_DATE`, which
/// `scripts/bench.sh` populates.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Git revision of the benched tree (caller-provided, "unknown" if unset).
    pub git_rev: String,
    /// Worker threads available on the machine.
    pub threads: usize,
    /// Run date, ISO 8601 (caller-provided, "unknown" if unset).
    pub date: String,
}

impl RunMeta {
    /// Builds metadata from explicit caller-supplied values.
    #[must_use]
    pub fn new(git_rev: &str, threads: usize, date: &str) -> Self {
        RunMeta {
            git_rev: git_rev.to_string(),
            threads,
            date: date.to_string(),
        }
    }

    /// Builds metadata from `PTSIM_BENCH_GIT_REV` / `PTSIM_BENCH_DATE`
    /// (falling back to `"unknown"`) and the machine's thread count.
    #[must_use]
    pub fn from_env() -> Self {
        let get = |key: &str| std::env::var(key).unwrap_or_else(|_| "unknown".to_string());
        RunMeta {
            git_rev: get("PTSIM_BENCH_GIT_REV"),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            date: get("PTSIM_BENCH_DATE"),
        }
    }

    /// One-line JSON header record (stable key order, no external
    /// serializer). Quotes and backslashes in caller strings are dropped so
    /// the line always stays parseable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let clean = |s: &str| {
            s.chars()
                .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
                .collect::<String>()
        };
        format!(
            "{{\"meta\":{{\"git_rev\":\"{}\",\"threads\":{},\"date\":\"{}\"}}}}",
            clean(&self.git_rev),
            self.threads,
            clean(&self.date),
        )
    }
}

/// Prints the env-derived [`RunMeta`] header line; call first in bench mains.
pub fn emit_meta() {
    println!("{}", RunMeta::from_env().to_json());
}

/// Prints an observability snapshot as one `{"metrics":{...}}` JSON line,
/// alongside the `{"meta":...}` and per-benchmark records — scrapers skip
/// or collect it by its distinct top-level key.
pub fn emit_metrics(snapshot: &ptsim_obs::Snapshot) {
    println!("{{\"metrics\":{}}}", snapshot.to_json());
}

/// Outcome of one benchmark: per-iteration timings in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Sorted per-iteration nanoseconds, one entry per sample.
    pub samples_ns: Vec<f64>,
}

impl BenchResult {
    /// Median nanoseconds per iteration.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        let n = self.samples_ns.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            self.samples_ns[n / 2]
        } else {
            (self.samples_ns[n / 2 - 1] + self.samples_ns[n / 2]) / 2.0
        }
    }

    /// Fastest observed sample (ns/iter).
    #[must_use]
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(f64::NAN)
    }

    /// Mean nanoseconds per iteration over all samples.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return f64::NAN;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// One-line JSON record (stable key order, no external serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.name,
            self.median_ns(),
            self.min_ns(),
            self.mean_ns(),
            self.samples_ns.len(),
            self.iters_per_sample,
        )
    }
}

/// Times `f` under [`Config::from_env`] (the default config plus CI smoke
/// overrides) and prints the JSON record.
pub fn bench(name: &str, f: impl FnMut()) -> BenchResult {
    bench_with(&Config::from_env(), name, f)
}

/// Times `f` under an explicit [`Config`] and prints the JSON record.
pub fn bench_with(cfg: &Config, name: &str, mut f: impl FnMut()) -> BenchResult {
    // Calibrate: double the iteration count until one batch crosses ~1/8 of
    // the target, then scale up linearly.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(&mut f)();
        }
        let elapsed = t.elapsed();
        if elapsed >= cfg.target_sample / 8 || iters >= 1 << 30 {
            let scale = cfg.target_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = ((iters as f64 * scale).ceil() as u64).max(1);
            break;
        }
        iters *= 2;
    }

    // Warmup.
    let warm_start = Instant::now();
    while warm_start.elapsed() < cfg.warmup {
        black_box(&mut f)();
    }

    // Timed samples.
    let mut samples_ns = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(&mut f)();
        }
        samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(f64::total_cmp);

    let result = BenchResult {
        name: name.to_string(),
        iters_per_sample: iters,
        samples_ns,
    };
    println!("{}", result.to_json());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> Config {
        Config {
            samples: 5,
            target_sample: Duration::from_micros(200),
            warmup: Duration::from_micros(100),
        }
    }

    #[test]
    fn measures_something_positive() {
        let r = bench_with(&quick_config(), "spin", || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(r.median_ns() > 0.0);
        assert!(r.min_ns() <= r.median_ns());
        assert_eq!(r.samples_ns.len(), 5);
    }

    #[test]
    fn json_shape_is_stable() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_sample: 10,
            samples_ns: vec![1.0, 2.0, 3.0],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"name\":\"x\","));
        assert!(j.contains("\"median_ns\":2.0"));
        assert!(j.contains("\"iters_per_sample\":10"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn median_of_even_sample_count() {
        let r = BenchResult {
            name: "e".into(),
            iters_per_sample: 1,
            samples_ns: vec![1.0, 2.0, 4.0, 8.0],
        };
        assert!((r.median_ns() - 3.0).abs() < 1e-12);
        assert!((r.mean_ns() - 3.75).abs() < 1e-12);
    }
}
