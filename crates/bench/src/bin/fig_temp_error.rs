//! Regenerates experiment `f3_temp_error` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f3_temp_error::run());
}
