//! Regenerates experiment `f2_ro_vs_vt` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f2_ro_vs_vt::run());
}
