//! Regenerates experiment `f1_ro_vs_temp` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f1_ro_vs_temp::run());
}
