//! Runs the R2 fleet-service chaos campaign and prints the graded report.
//!
//! Exits non-zero if any chaos gate fails, so scripts can use it directly
//! as a smoke check. `PTSIM_CHAOS_DIES` / `PTSIM_CHAOS_SHARDS` override
//! the fleet size.

use ptsim_bench::experiments::r2_chaos::{render_report, run_campaign, ChaosConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        n_dies: env_u64("PTSIM_CHAOS_DIES", defaults.n_dies),
        n_shards: env_u64("PTSIM_CHAOS_SHARDS", defaults.n_shards),
        ..defaults
    };
    let report = run_campaign(&cfg);
    println!("{}", render_report(&report));
    if !report.gate_failures().is_empty() {
        std::process::exit(1);
    }
}
