//! Regenerates experiment `x1_pvt2013` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::x1_pvt2013::run());
}
