//! Regenerates experiment `x3_placement` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::x3_placement::run());
}
