//! Regenerates experiment `f4_vt_error` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f4_vt_error::run());
}
