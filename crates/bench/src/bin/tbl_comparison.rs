//! Regenerates experiment `t2_comparison` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::t2_comparison::run());
}
