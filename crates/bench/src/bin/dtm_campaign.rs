//! Runs the R3 closed-loop DVFS/thermal-throttling campaign and prints
//! the graded report.
//!
//! Exits non-zero if any gate fails, so scripts can use it directly as a
//! smoke check. `PTSIM_BENCH_DIES` sizes the population (4 dies per
//! stack); `PTSIM_DTM_STEPS` overrides the control-loop horizon.

use ptsim_bench::experiments::r3_dtm::{render_report, run_campaign, R3Config};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let defaults = R3Config::default();
    let cfg = R3Config {
        steps: env_usize("PTSIM_DTM_STEPS", defaults.steps),
        ..defaults
    };
    let report = run_campaign(&cfg);
    println!("{}", render_report(&report));
    if !report.gate_failures().is_empty() {
        std::process::exit(1);
    }
}
