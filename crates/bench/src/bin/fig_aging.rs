//! Regenerates experiment `x2_aging` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::x2_aging::run());
}
