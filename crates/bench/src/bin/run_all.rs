//! Regenerates every figure and table in sequence (the full evaluation).
use ptsim_bench::experiments as exp;

fn main() {
    let sections: [(&str, fn() -> String); 15] = [
        ("F1", exp::f1_ro_vs_temp::run),
        ("F2", exp::f2_ro_vs_vt::run),
        ("F3", exp::f3_temp_error::run),
        ("F4", exp::f4_vt_error::run),
        ("F5", exp::f5_stack_tracking::run),
        ("F6", exp::f6_tsv_stress::run),
        ("T1", exp::t1_energy::run),
        ("T2", exp::t2_comparison::run),
        ("T3", exp::t3_corners::run),
        ("A1", exp::a1_ablation::run),
        ("X1", exp::x1_pvt2013::run),
        ("X2", exp::x2_aging::run),
        ("X3", exp::x3_placement::run),
        ("R1", exp::r1_faults::run),
        ("R3", exp::r3_dtm::run),
    ];
    for (id, f) in sections {
        println!("{}", "=".repeat(78));
        println!("experiment {id}");
        println!("{}", "=".repeat(78));
        println!("{}", f());
    }
}
