//! Regenerates experiment `f6_tsv_stress` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f6_tsv_stress::run());
}
