//! Regenerates experiment `a1_ablation` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::a1_ablation::run());
}
