//! Regenerates experiment `t3_corners` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::t3_corners::run());
}
