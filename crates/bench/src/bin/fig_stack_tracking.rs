//! Regenerates experiment `f5_stack_tracking` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::f5_stack_tracking::run());
}
