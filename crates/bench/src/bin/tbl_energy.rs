//! Regenerates experiment `t1_energy` (see DESIGN.md experiment index).
fn main() {
    print!("{}", ptsim_bench::experiments::t1_energy::run());
}
