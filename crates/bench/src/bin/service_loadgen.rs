//! Load generator for the fleet daemon — records the service latency/
//! throughput trajectory (`BENCH_SERVICE.json` via `scripts/bench_service.sh`).
//!
//! Boots the daemon in-process on an ephemeral loopback port, warms every
//! die (first touch pays calibration), then drives closed-loop request
//! streams and emits one JSON object per scenario:
//!
//! ```text
//! {"name":"service/read_seq","p50_us":…,"p99_us":…,"conversions_per_sec":…,"samples":…}
//! ```
//!
//! Knobs: `PTSIM_LOADGEN_REQUESTS` (per scenario, default 200),
//! `PTSIM_LOADGEN_CONNS` (concurrent connections, default 4),
//! `PTSIM_LOADGEN_DIES` (fleet size, default 16),
//! `PTSIM_LOADGEN_COALESCE_CONNS` (clients of the `read_coalesced`
//! scenario, default `2 × CONNS`, min 8 — past ~2× the core count the
//! extra client threads cost more than the deeper queues pay),
//! `PTSIM_LOADGEN_COALESCE_MAX` (the fleet's coalescing budget,
//! default 64; set 1 for an A/B with the scheduler off). A meta header
//! line with
//! the git rev/date is emitted first, exactly like the other bench
//! binaries, so the trajectory files share one schema.
//!
//! Scenario codecs: `read_seq`, `read_concurrent`, `batch_read`, and
//! `health` drive the JSON (v1) protocol; `read_seq_v2` and
//! `read_coalesced` negotiate the v2 binary codec.

use ptsim_mc::stats::quantile_in_place;
use ptsim_service::protocol::{BatchItem, Request, Response};
use ptsim_service::{Client, Fleet, FleetConfig, Server, ServerConfig};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn read_req(die: u64) -> Request {
    Request::Read {
        die,
        temp_c: 60.0 + (die % 7) as f64,
        priority: 1,
        deadline_ms: 30_000,
    }
}

fn batch_req(die0: u64, count: u64) -> Request {
    Request::BatchRead {
        die0,
        count,
        temp_c: 60.0 + (die0 % 7) as f64,
        priority: 1,
        deadline_ms: 30_000,
    }
}

struct Scenario {
    name: String,
    latencies_us: Vec<f64>,
    served: usize,
    elapsed_s: f64,
}

impl Scenario {
    fn emit(mut self) {
        let samples = self.latencies_us.len();
        let p50 = quantile_in_place(&mut self.latencies_us, 0.5).unwrap_or(f64::NAN);
        let p99 = quantile_in_place(&mut self.latencies_us, 0.99).unwrap_or(f64::NAN);
        let rate = if self.elapsed_s > 0.0 {
            self.served as f64 / self.elapsed_s
        } else {
            0.0
        };
        println!(
            "{{\"name\":\"{}\",\"p50_us\":{:.1},\"p99_us\":{:.1},\"conversions_per_sec\":{:.1},\"samples\":{}}}",
            self.name, p50, p99, rate, samples
        );
    }
}

fn drive(addr: &str, name: &str, conns: usize, requests: usize, n_dies: u64, v2: bool) -> Scenario {
    let started = Instant::now();
    let per_conn = requests.div_ceil(conns);
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = if v2 {
                    Client::connect_v2(&addr).expect("loadgen v2 connect")
                } else {
                    Client::connect(&addr).expect("loadgen connect")
                };
                // One untimed call absorbs connection setup (accept poll,
                // thread spawn, warm buffers): the scenario measures
                // steady-state service latency, not provisioning.
                let _ = client.call(&read_req((c as u64) % n_dies));
                let mut lat = Vec::with_capacity(per_conn);
                let mut served = 0usize;
                for i in 0..per_conn {
                    let die = ((c * per_conn + i) as u64) % n_dies;
                    let t0 = Instant::now();
                    let resp = client.call(&read_req(die));
                    let us = t0.elapsed().as_secs_f64() * 1e6;
                    if matches!(resp, Ok(Response::Reading { .. })) {
                        lat.push(us);
                        served += 1;
                    }
                }
                (lat, served)
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    let mut served = 0;
    for h in handles {
        let (lat, s) = h.join().expect("loadgen worker join");
        latencies_us.extend(lat);
        served += s;
    }
    Scenario {
        name: name.to_string(),
        latencies_us,
        served,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Closed-loop `batch_read` stream: each frame drains one whole shard
/// stripe through the lane kernel. `served` counts per-die items so
/// `conversions_per_sec` stays comparable with the single-read scenarios;
/// latencies are per frame.
fn drive_batch(addr: &str, name: &str, requests: usize, n_dies: u64, n_shards: u64) -> Scenario {
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("loadgen batch connect");
    let mut latencies_us = Vec::with_capacity(requests);
    let mut served = 0usize;
    for i in 0..requests {
        let die0 = (i as u64) % n_shards.min(n_dies);
        let count = n_dies / n_shards + u64::from(n_dies % n_shards > die0);
        let t0 = Instant::now();
        let resp = client.call(&batch_req(die0, count));
        let us = t0.elapsed().as_secs_f64() * 1e6;
        if let Ok(Response::Batch { items }) = resp {
            let ok = items
                .iter()
                .filter(|item| matches!(item, BatchItem::Reading { .. }))
                .count();
            if ok > 0 {
                latencies_us.push(us);
                served += ok;
            }
        }
    }
    Scenario {
        name: name.to_string(),
        latencies_us,
        served,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    let requests = env_usize("PTSIM_LOADGEN_REQUESTS", 200);
    let conns = env_usize("PTSIM_LOADGEN_CONNS", 4).max(1);
    let n_dies = env_usize("PTSIM_LOADGEN_DIES", 16).max(1) as u64;

    let coalesce_max = env_usize("PTSIM_LOADGEN_COALESCE_MAX", 64).max(1);
    let fleet = Fleet::start(FleetConfig {
        n_dies,
        n_shards: 4,
        queue_depth: 256,
        base_seed: 0x10ad,
        coalesce_max,
        ..FleetConfig::default()
    });
    let server =
        Server::bind(fleet, "127.0.0.1:0", ServerConfig::default()).expect("bind loadgen daemon");
    let addr = server.local_addr().to_string();

    // Warm every die: first touch pays boot-time calibration, which is a
    // provisioning cost, not steady-state service latency.
    {
        let mut warm = Client::connect(&addr).expect("warmup connect");
        for die in 0..n_dies {
            let r = warm.call(&read_req(die)).expect("warmup call");
            assert!(
                matches!(r, Response::Reading { .. }),
                "warmup read failed: {r:?}"
            );
        }
    }

    ptsim_bench::harness::emit_meta();
    drive(&addr, "service/read_seq", 1, requests, n_dies, false).emit();
    drive(&addr, "service/read_seq_v2", 1, requests, n_dies, true).emit();
    drive(
        &addr,
        "service/read_concurrent",
        conns,
        requests,
        n_dies,
        true,
    )
    .emit();
    // The coalescing showcase: enough concurrent single-read clients to
    // build per-shard queue depth, over the binary codec, so worker wakes
    // drain whole groups through the lane kernel.
    let coalesce_conns = env_usize("PTSIM_LOADGEN_COALESCE_CONNS", (conns * 2).max(8));
    drive(
        &addr,
        "service/read_coalesced",
        coalesce_conns,
        requests.max(coalesce_conns * 8),
        n_dies,
        true,
    )
    .emit();
    drive_batch(&addr, "service/batch_read", requests, n_dies, 4).emit();

    // Health is the operator's availability probe: it must stay cheap.
    {
        let mut client = Client::connect(&addr).expect("health connect");
        // Untimed warm-up: connection setup is not probe latency.
        let _ = client.call(&Request::Health);
        let started = Instant::now();
        let mut lat = Vec::with_capacity(64);
        let mut served = 0;
        for _ in 0..64 {
            let t0 = Instant::now();
            if matches!(client.call(&Request::Health), Ok(Response::Health(_))) {
                lat.push(t0.elapsed().as_secs_f64() * 1e6);
                served += 1;
            }
        }
        Scenario {
            name: "service/health".to_string(),
            latencies_us: lat,
            served,
            elapsed_s: started.elapsed().as_secs_f64(),
        }
        .emit();
    }

    server.stop();
    server.join();
}
