//! Regenerates the R1 fault-injection campaign report on its own.
//!
//! When `PTSIM_METRICS_JSON` names a file, the merged observability
//! snapshot of the campaign (pipeline counters, energy/span histograms,
//! MC worker gauges) is written there as one JSON object.

use ptsim_bench::experiments::r1_faults::{render_report, run_campaign_metered, R1_SEED};

fn main() {
    let n = ptsim_bench::experiments::population_size(100);
    let (result, snapshot) = run_campaign_metered(n, R1_SEED);
    println!("{}", render_report(&result));
    if let Ok(path) = std::env::var("PTSIM_METRICS_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, snapshot.to_json() + "\n").expect("write metrics snapshot");
        }
    }
}
