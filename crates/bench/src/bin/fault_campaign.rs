//! Regenerates the R1 fault-injection campaign report on its own.
fn main() {
    println!("{}", ptsim_bench::experiments::r1_faults::run());
}
