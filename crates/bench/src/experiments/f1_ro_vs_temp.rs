//! **F1 — Ring-oscillator frequency vs. temperature.**
//!
//! The characterization figure every RO-sensor paper opens with: the three
//! oscillator classes swept across the operating range at the TT corner.
//! The TSRO (near-threshold) must show a strong positive tempco while the
//! PSROs are comparatively flat — that separation is what makes decoupling
//! possible.

use crate::table::{f, fs, Table};
use ptsim_core::bank::{BankSpec, RoBank, RoClass};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;

/// Runs the sweep and renders the report.
///
/// # Panics
///
/// Panics only if the reference bank spec fails to build (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let bank = RoBank::new(&tech, BankSpec::default_65nm()).expect("reference bank");
    let spec = *bank.spec();

    let plan = [
        (RoClass::PsroN, spec.vdd_low),
        (RoClass::PsroP, spec.vdd_low),
        (RoClass::Tsro, spec.vdd_tsro),
    ];

    let f25: Vec<f64> = plan
        .iter()
        .map(|(c, v)| bank.frequency(&tech, *c, *v, &CmosEnv::at(Celsius(25.0))).0)
        .collect();

    let mut table = Table::new(vec![
        "T [°C]",
        "PSRO-N [MHz]",
        "PSRO-P [MHz]",
        "TSRO [MHz]",
        "PSRO-N f/f25",
        "PSRO-P f/f25",
        "TSRO f/f25",
    ]);
    for t in (-20..=100).step_by(10) {
        let env = CmosEnv::at(Celsius(f64::from(t)));
        let fr: Vec<f64> = plan
            .iter()
            .map(|(c, v)| bank.frequency(&tech, *c, *v, &env).0)
            .collect();
        table.push(vec![
            t.to_string(),
            f(fr[0] / 1e6, 2),
            f(fr[1] / 1e6, 2),
            f(fr[2] / 1e6, 2),
            f(fr[0] / f25[0], 4),
            f(fr[1] / f25[1], 4),
            f(fr[2] / f25[2], 4),
        ]);
    }

    // Average tempco over the range, %/°C.
    let tempco = |idx: usize| {
        let cold = bank
            .frequency(
                &tech,
                plan[idx].0,
                plan[idx].1,
                &CmosEnv::at(Celsius(-20.0)),
            )
            .0;
        let hot = bank
            .frequency(
                &tech,
                plan[idx].0,
                plan[idx].1,
                &CmosEnv::at(Celsius(100.0)),
            )
            .0;
        100.0 * (hot / cold).ln() / 120.0
    };

    format!(
        "F1: RO frequency vs temperature (TT corner)\n\
         PSRO-N/P at VDD = {:.2} V, TSRO at VDD = {:.2} V\n\n{}\n\
         mean tempco: PSRO-N {} %/°C, PSRO-P {} %/°C, TSRO {} %/°C\n\
         expectation: TSRO tempco strongly positive and several times the PSROs'\n",
        spec.vdd_low.0,
        spec.vdd_tsro.0,
        table.render(),
        fs(tempco(0), 3),
        fs(tempco(1), 3),
        fs(tempco(2), 3),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        let r = super::run();
        assert!(r.contains("F1"));
        assert!(r.contains("TSRO"));
        assert!(r.lines().count() > 15);
    }
}
