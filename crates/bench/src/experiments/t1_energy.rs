//! **T1 — Conversion-energy breakdown.**
//!
//! The abstract's 367.5 pJ/conversion figure, decomposed by component, plus
//! its temperature and supply dependence.

use crate::table::{f, Table};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::{DieSample, DieSite};

/// Runs the breakdown and renders the report.
///
/// # Panics
///
/// Panics if sensor construction/calibration fails (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let die = DieSample::nominal();
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(0x71);
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm()).expect("sensor");
    let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
    let outcome = sensor.calibrate(&boot, &mut rng).expect("calibration");

    let nominal = sensor.read(&boot, &mut rng).expect("conversion");

    // One batched sweep over the temperature schedule (bit-identical to the
    // per-point loop it replaces: `read_batch` runs the same conversions in
    // the same order on the same RNG stream).
    let sweep = [-20.0, 0.0, 25.0, 50.0, 75.0, 100.0];
    let probes: Vec<SensorInputs<'_>> = sweep
        .iter()
        .map(|&t| SensorInputs::new(&die, DieSite::CENTER, Celsius(t)))
        .collect();
    let mut vs_temp = Table::new(vec!["T [°C]", "E/conversion [pJ]"]);
    for (r, &t) in sensor
        .read_batch(&probes, &mut rng)
        .expect("conversion")
        .iter()
        .zip(&sweep)
    {
        vs_temp.push(vec![f(t, 0), f(r.energy_total().picojoules(), 1)]);
    }

    format!(
        "T1: conversion energy breakdown (nominal die, 25 °C)\n\n{}\n\
         total: {:.2} pJ — paper reports 367.5 pJ per conversion\n\n\
         one-time self-calibration cost: {:.1} pJ ({} Newton iterations)\n\n\
         energy vs temperature (leakage + faster oscillators when hot):\n{}",
        nominal.energy.render_table(),
        nominal.energy_total().picojoules(),
        outcome.energy.total().picojoules(),
        outcome.solver_iterations,
        vs_temp.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn total_matches_paper() {
        let r = super::run();
        assert!(r.contains("T1"));
        assert!(r.contains("367.5"));
        // The tuned total must appear in the 360-375 range.
        let line = r
            .lines()
            .find(|l| l.starts_with("total:"))
            .expect("total line");
        let pj: f64 = line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .expect("parse total");
        assert!((pj - 367.5).abs() < 8.0, "total {pj}");
    }
}
