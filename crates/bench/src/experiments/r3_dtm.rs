//! **R3 — Closed-loop DVFS / thermal-throttling campaign.**
//!
//! The paper's sensor exists to *drive* dynamic thermal management; this
//! campaign closes that loop and grades it. A fixed-seed population of
//! four-tier stacks each runs a deterministic synthetic workload trace
//! ([`ptsim_core::dtm::WorkloadTrace`]: ramp/burst/idle/periodic phases
//! feeding per-tier power maps). A [`ptsim_core::dtm::DtmController`]
//! observes only sensor [`ptsim_core::sensor::Reading`]s — never the true
//! temperature field — and throttles through a discrete six-point DVFS
//! ladder with hysteresis and actuation latency.
//!
//! Every stack runs twice on the *same* trace:
//!
//! * **nominal arm** — the 2012 PT sensor on its always-on rail
//!   ([`NominalSensing`]): 14 µs windows, essentially lag-free, full
//!   conversion energy at every operating point;
//! * **DVS arm** — the dual-mode stack ([`DvsDtmSensing`]): operating
//!   points at 0.25–0.5 V hand conversion to the 2013 sensor riding the
//!   throttled rail — cheaper per conversion but with exponentially longer
//!   windows (896 µs at 0.25 V), i.e. real sensing lag at the decision
//!   instant.
//!
//! Graded gates (asserted by `tests/dtm_gates.rs`, thresholds documented
//! in `EXPERIMENTS.md`):
//!
//! * **containment** — worst-case *true* peak overshoot beyond the 45 °C
//!   limit stays within the budget in both arms;
//! * **engagement** — every stack actually throttles (≥ 1 actuation,
//!   duty strictly inside `(0, 1)`) and the DVS arm genuinely enters
//!   DVS mode;
//! * **sensing lag** — the nominal arm's reported-vs-true error at
//!   decision instants stays within the sensor's accuracy band; the DVS
//!   arm is allowed a documented larger band (the price of the long
//!   windows) but must still contain temperature;
//! * **energy** — the DVS arm's total conversion energy undercuts the
//!   nominal arm's by at least the documented fraction;
//! * **determinism** — the whole campaign is bit-identical across worker
//!   thread counts (per-stack streams are derived, not shared).

use crate::table::Table;
use ptsim_baselines::dvs::DvsDtmSensing;
use ptsim_core::dtm::{
    hottest_site, run_dtm_loop, DtmConfig, DtmController, DtmOutcome, DtmSensing, DvfsTable,
    NominalSensing, WorkloadTrace,
};
use ptsim_core::monitor::StackMonitor;
use ptsim_core::sensor::SensorSpec;
use ptsim_device::process::Technology;
use ptsim_mc::driver::{run_parallel_with, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_rng::{Pcg64, Rng};
use ptsim_tsv::topology::StackTopology;

/// Fixed seed of the campaign population.
pub const R3_SEED: u64 = 0x0d7_2013;

/// Thermal limit the controller must defend, °C.
pub const T_LIMIT_C: f64 = 45.0;

/// Release threshold (lower edge of the hysteresis band), °C.
pub const T_RELEASE_C: f64 = 42.0;

/// Overshoot budget: worst-case true peak beyond the limit, °C. The
/// overshoot is dominated by the cold-start burst: at full power the
/// hotspot heats ≈ 5.5 °C per 2 ms sample, so detection itself can land
/// a full step past the trip threshold and one more pipeline step of
/// full power follows before the thermal trip bites — worst peak ≈
/// limit + emergency margin + 2 × step-heating. After the opening
/// transient the loop holds a tight limit cycle (re-entries peak ≈ 1 °C
/// over the limit). Measured worst case across the fixed 25-stack
/// population: 14.87 °C (nominal arm), 14.93 °C (DVS arm).
pub const OVERSHOOT_BUDGET_C: f64 = 18.0;

/// Worst decision-instant `|reported − true|` allowed in the nominal arm,
/// °C — the 2012 sensor's accuracy band (±1.5 °C spec plus stress
/// residual); its 14 µs window contributes < 1 % of a sample period of
/// lag. Measured worst case ≈ 0.64 °C.
pub const NOMINAL_LAG_LIMIT_C: f64 = 2.0;

/// Worst decision-instant error allowed in the DVS arm, °C. The 0.25 V
/// bin's 896 µs window drags ~45 % of a sample period of transient into
/// the conversion, on top of the 2013 sensor's own band — but DVS mode
/// only engages at deep operating points where the throttled plant moves
/// slowly, so the realized lag stays small. Measured worst case ≈ 0.59 °C
/// (vs 0.64 °C nominal).
pub const DVS_LAG_LIMIT_C: f64 = 3.0;

/// Minimum fraction of total conversion energy the DVS arm must save over
/// the nominal arm. DVS conversions cost 152–268 pJ against the 2012
/// sensor's 367.5 pJ, so the saving scales with time spent at 0.25–0.5 V;
/// measured ≈ 9.8 % at the fixed seed.
pub const MIN_ENERGY_SAVINGS: f64 = 0.05;

/// Minimum fraction of DVS-arm conversions actually taken in DVS mode.
/// Measured ≈ 38 % at the fixed seed.
pub const MIN_DVS_READ_FRACTION: f64 = 0.15;

/// Campaign sizing.
#[derive(Debug, Clone, Copy)]
pub struct R3Config {
    /// Stacks in the population (four dies each).
    pub n_stacks: usize,
    /// Control-loop steps per run.
    pub steps: usize,
    /// Worker threads (`0` = one per CPU).
    pub threads: usize,
}

impl Default for R3Config {
    fn default() -> Self {
        R3Config {
            // 25 four-tier stacks = the 100-die population.
            n_stacks: (super::population_size(100) / 4).max(1),
            steps: 150,
            threads: 0,
        }
    }
}

/// Both arms of one stack's closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct StackRun {
    /// Stack index in the population.
    pub stack: usize,
    /// Always-nominal sensing arm.
    pub nominal: DtmOutcome,
    /// Dual-mode (DVS-capable) sensing arm.
    pub dvs: DtmOutcome,
}

/// The graded campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct R3Report {
    /// Per-stack runs, in population order.
    pub runs: Vec<StackRun>,
}

/// Worst/mean summary of one arm across the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmSummary {
    /// Worst true-peak overshoot beyond the limit, °C.
    pub worst_overshoot: f64,
    /// Worst decision-instant `|reported − true|`, °C.
    pub worst_lag: f64,
    /// Mean decision-instant error, °C.
    pub mean_lag: f64,
    /// Mean throttle duty.
    pub mean_duty: f64,
    /// Total conversion energy across the population, joules.
    pub energy: f64,
    /// Mean fraction of conversions taken in DVS mode.
    pub dvs_fraction: f64,
    /// Deepest ladder level any stack reached.
    pub min_level: usize,
}

fn summarize<'a>(outcomes: impl Iterator<Item = &'a DtmOutcome>) -> ArmSummary {
    let mut s = ArmSummary {
        worst_overshoot: 0.0,
        worst_lag: 0.0,
        mean_lag: 0.0,
        mean_duty: 0.0,
        energy: 0.0,
        dvs_fraction: 0.0,
        min_level: usize::MAX,
    };
    let mut n = 0usize;
    for o in outcomes {
        s.worst_overshoot = s.worst_overshoot.max(o.overshoot);
        s.worst_lag = s.worst_lag.max(o.worst_lag_error);
        s.mean_lag += o.mean_lag_error;
        s.mean_duty += o.throttle_duty;
        s.energy += o.sensing_energy.0;
        s.dvs_fraction += o.dvs_read_fraction;
        s.min_level = s.min_level.min(o.min_level);
        n += 1;
    }
    if n > 0 {
        s.mean_lag /= n as f64;
        s.mean_duty /= n as f64;
        s.dvs_fraction /= n as f64;
    }
    s
}

impl R3Report {
    /// Population summary of the nominal arm.
    #[must_use]
    pub fn nominal(&self) -> ArmSummary {
        summarize(self.runs.iter().map(|r| &r.nominal))
    }

    /// Population summary of the DVS arm.
    #[must_use]
    pub fn dvs(&self) -> ArmSummary {
        summarize(self.runs.iter().map(|r| &r.dvs))
    }

    /// Fraction of conversion energy the DVS arm saved over the nominal
    /// arm.
    #[must_use]
    pub fn energy_savings(&self) -> f64 {
        let nom = self.nominal().energy;
        if nom <= 0.0 {
            return 0.0;
        }
        1.0 - self.dvs().energy / nom
    }

    /// Every violated gate, as human-readable findings; an empty list is a
    /// passing campaign. `tests/dtm_gates.rs` asserts on this.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        let mut gate = |ok: bool, msg: String| {
            if !ok {
                fails.push(msg);
            }
        };
        let nom = self.nominal();
        let dvs = self.dvs();
        gate(
            nom.worst_overshoot <= OVERSHOOT_BUDGET_C,
            format!(
                "nominal arm overshoot {:.2} °C exceeds budget {OVERSHOOT_BUDGET_C} °C",
                nom.worst_overshoot
            ),
        );
        gate(
            dvs.worst_overshoot <= OVERSHOOT_BUDGET_C,
            format!(
                "DVS arm overshoot {:.2} °C exceeds budget {OVERSHOOT_BUDGET_C} °C",
                dvs.worst_overshoot
            ),
        );
        gate(
            nom.worst_lag <= NOMINAL_LAG_LIMIT_C,
            format!(
                "nominal arm decision error {:.2} °C exceeds {NOMINAL_LAG_LIMIT_C} °C",
                nom.worst_lag
            ),
        );
        gate(
            dvs.worst_lag <= DVS_LAG_LIMIT_C,
            format!(
                "DVS arm decision error {:.2} °C exceeds {DVS_LAG_LIMIT_C} °C",
                dvs.worst_lag
            ),
        );
        gate(
            self.energy_savings() >= MIN_ENERGY_SAVINGS,
            format!(
                "DVS sensing-energy savings {:.1}% below the {:.0}% floor",
                100.0 * self.energy_savings(),
                100.0 * MIN_ENERGY_SAVINGS
            ),
        );
        gate(
            dvs.dvs_fraction >= MIN_DVS_READ_FRACTION,
            format!(
                "only {:.1}% of DVS-arm conversions ran in DVS mode (floor {:.0}%)",
                100.0 * dvs.dvs_fraction,
                100.0 * MIN_DVS_READ_FRACTION
            ),
        );
        for r in &self.runs {
            for (arm, o) in [("nominal", &r.nominal), ("dvs", &r.dvs)] {
                gate(
                    o.actuations >= 1,
                    format!("stack {} {arm} arm never actuated", r.stack),
                );
                gate(
                    o.throttle_duty > 0.0 && o.throttle_duty < 1.0,
                    format!(
                        "stack {} {arm} arm duty {:.3} outside (0, 1)",
                        r.stack, o.throttle_duty
                    ),
                );
            }
        }
        fails
    }
}

struct StackCtx {
    tech: Technology,
    model: VariationModel,
    spec: SensorSpec,
}

fn run_one_arm<S: DtmSensing>(
    monitor: &StackMonitor,
    sensing: &mut [S],
    trace: &WorkloadTrace,
    steps: usize,
    seed: u64,
) -> DtmOutcome {
    let mut thermal = monitor.build_thermal().expect("reference stack builds");
    let mut controller = DtmController::new(
        DvfsTable::default_six_point(),
        DtmConfig {
            t_limit: ptsim_device::units::Celsius(T_LIMIT_C),
            t_release: ptsim_device::units::Celsius(T_RELEASE_C),
            ..DtmConfig::default()
        },
    )
    .expect("valid controller config");
    let mut rng = Pcg64::seed_from_u64(seed);
    run_dtm_loop(
        monitor,
        &mut thermal,
        sensing,
        &mut controller,
        trace,
        0,
        steps,
        &mut rng,
    )
    .expect("closed loop runs")
}

/// Runs the campaign over the fixed-seed population.
///
/// # Panics
///
/// Panics only on harness failures (reference topology fails to build);
/// controller/sensor misbehavior is graded, not panicked.
#[must_use]
pub fn run_campaign(cfg: &R3Config) -> R3Report {
    let mc = McConfig {
        n_dies: cfg.n_stacks,
        base_seed: R3_SEED,
        threads: cfg.threads,
    };
    let steps = cfg.steps;
    let mut runs = run_parallel_with(
        &mc,
        || StackCtx {
            tech: Technology::n65(),
            model: VariationModel::new(&Technology::n65()),
            spec: SensorSpec::default_65nm(),
        },
        move |ctx, stack_idx, rng| {
            let topo = StackTopology::reference_four_tier();
            let tiers = topo.thermal_config().tiers;
            let dies: Vec<_> = (0..tiers as u64)
                .map(|t| ctx.model.sample_die_with_id(rng, stack_idx * 4 + t))
                .collect();
            let trace_seed: u64 = rng.gen();
            let nom_seed: u64 = rng.gen();
            let dvs_seed: u64 = rng.gen();
            let trace = WorkloadTrace::synth(trace_seed, steps);
            // Guard the floorplan's hottest cell (found by a steady solve
            // at peak demand) — standard DTM sensor placement.
            let mut scratch_stack = topo.build_thermal().expect("reference stack builds");
            let site =
                hottest_site(&mut scratch_stack, &trace, 0).expect("placement solve converges");
            let monitor =
                StackMonitor::new(topo, dies, site, &ctx.tech, ctx.spec).expect("monitor builds");

            let mut nominal_stacks: Vec<NominalSensing> = (0..tiers)
                .map(|_| NominalSensing::new(&ctx.tech, ctx.spec).expect("sensor builds"))
                .collect();
            let nominal = run_one_arm(&monitor, &mut nominal_stacks, &trace, steps, nom_seed);

            let mut dvs_stacks: Vec<DvsDtmSensing> = (0..tiers)
                .map(|_| DvsDtmSensing::new(&ctx.tech, ctx.spec).expect("sensor builds"))
                .collect();
            let dvs = run_one_arm(&monitor, &mut dvs_stacks, &trace, steps, dvs_seed);

            StackRun {
                stack: stack_idx as usize,
                nominal,
                dvs,
            }
        },
    );
    runs.sort_by_key(|r| r.stack);
    R3Report { runs }
}

/// Renders the human-readable campaign report.
#[must_use]
pub fn render_report(report: &R3Report) -> String {
    let mut table = Table::new(vec![
        "arm",
        "overshoot_C",
        "worst_lag_C",
        "mean_lag_C",
        "duty",
        "energy_nJ",
        "dvs_frac",
        "min_level",
    ]);
    for (name, s) in [("nominal", report.nominal()), ("dvs", report.dvs())] {
        table.push(vec![
            name.to_string(),
            format!("{:.2}", s.worst_overshoot),
            format!("{:.2}", s.worst_lag),
            format!("{:.3}", s.mean_lag),
            format!("{:.3}", s.mean_duty),
            format!("{:.2}", s.energy * 1e9),
            format!("{:.3}", s.dvs_fraction),
            s.min_level.to_string(),
        ]);
    }
    let fails = report.gate_failures();
    let mut out = String::from("R3 — closed-loop DVFS / thermal-throttling campaign\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nstacks: {} (x2 arms, {} dies)\nlimit band: {T_RELEASE_C}–{T_LIMIT_C} °C, overshoot budget {OVERSHOOT_BUDGET_C} °C\nDVS sensing-energy savings: {:.1}% (floor {:.0}%)\n",
        report.runs.len(),
        4 * report.runs.len(),
        100.0 * report.energy_savings(),
        100.0 * MIN_ENERGY_SAVINGS,
    ));
    out.push_str(&format!(
        "\ngates: {}\n",
        if fails.is_empty() {
            "all OK".to_string()
        } else {
            format!("{} FAILED", fails.len())
        }
    ));
    for failure in &fails {
        out.push_str(&format!("  FAIL: {failure}\n"));
    }
    out
}

/// Runs the campaign at default size and renders the report.
#[must_use]
pub fn run() -> String {
    render_report(&run_campaign(&R3Config::default()))
}
