//! **F2 — PSRO frequency vs. threshold shift (process sensitivity).**
//!
//! Sweeps ΔVtn (resp. ΔVtp) and reports each skewed oscillator's frequency
//! and its cross-sensitivity to the *other* polarity — the figure that
//! justifies calling them "process-sensitive" oscillators.

use crate::table::{f, Table};
use ptsim_core::bank::{BankSpec, RoBank, RoClass};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};

/// Runs the sweep and renders the report.
///
/// # Panics
///
/// Panics only if the reference bank spec fails to build (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let bank = RoBank::new(&tech, BankSpec::default_65nm()).expect("reference bank");
    let vdd = bank.spec().vdd_low;

    let mut out = String::from("F2: PSRO frequency vs threshold shift (25 °C / 75 °C)\n\n");
    for temp in [25.0, 75.0] {
        let mut table = Table::new(vec![
            "ΔVt [mV]",
            "PSRO-N(ΔVtn) [MHz]",
            "PSRO-N(ΔVtp) [MHz]",
            "PSRO-P(ΔVtp) [MHz]",
            "PSRO-P(ΔVtn) [MHz]",
        ]);
        for step in -6..=6 {
            let dv = Volt(f64::from(step) * 0.010);
            let env_n = CmosEnv {
                d_vtn: dv,
                ..CmosEnv::at(Celsius(temp))
            };
            let env_p = CmosEnv {
                d_vtp: dv,
                ..CmosEnv::at(Celsius(temp))
            };
            table.push(vec![
                format!("{:+}", step * 10),
                f(
                    bank.frequency(&tech, RoClass::PsroN, vdd, &env_n).0 / 1e6,
                    2,
                ),
                f(
                    bank.frequency(&tech, RoClass::PsroN, vdd, &env_p).0 / 1e6,
                    2,
                ),
                f(
                    bank.frequency(&tech, RoClass::PsroP, vdd, &env_p).0 / 1e6,
                    2,
                ),
                f(
                    bank.frequency(&tech, RoClass::PsroP, vdd, &env_n).0 / 1e6,
                    2,
                ),
            ]);
        }
        out.push_str(&format!("at {temp} °C:\n{}\n", table.render()));
    }

    // Sensitivity summary (%/mV) around nominal at 25 °C.
    let sens = |class: RoClass, n_side: bool| {
        let base = bank
            .frequency(&tech, class, vdd, &CmosEnv::at(Celsius(25.0)))
            .0;
        let mut env = CmosEnv::at(Celsius(25.0));
        if n_side {
            env.d_vtn = Volt(0.010);
        } else {
            env.d_vtp = Volt(0.010);
        }
        100.0 * ((bank.frequency(&tech, class, vdd, &env).0 / base).ln()).abs() / 10.0
    };
    out.push_str(&format!(
        "sensitivity at 25 °C: PSRO-N {:.3} %/mV(Vtn) vs {:.3} %/mV(Vtp); \
         PSRO-P {:.3} %/mV(Vtp) vs {:.3} %/mV(Vtn)\n\
         expectation: each PSRO several times more sensitive to its own polarity\n",
        sens(RoClass::PsroN, true),
        sens(RoClass::PsroN, false),
        sens(RoClass::PsroP, false),
        sens(RoClass::PsroP, true),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        let r = super::run();
        assert!(r.contains("F2"));
        assert!(r.contains("sensitivity"));
        assert!(r.lines().count() > 25);
    }
}
