//! One module per reconstructed figure/table. Each `run()` returns the
//! rendered report (and is exercised by smoke tests).

pub mod a1_ablation;
pub mod f1_ro_vs_temp;
pub mod f2_ro_vs_vt;
pub mod f3_temp_error;
pub mod f4_vt_error;
pub mod f5_stack_tracking;
pub mod f6_tsv_stress;
pub mod r1_faults;
pub mod r2_chaos;
pub mod r3_dtm;
pub mod t1_energy;
pub mod t2_comparison;
pub mod t3_corners;
pub mod x1_pvt2013;
pub mod x2_aging;
pub mod x3_placement;

/// Number of Monte-Carlo dies used by the population experiments; override
/// with the `PTSIM_BENCH_DIES` environment variable.
#[must_use]
pub fn population_size(default: usize) -> usize {
    std::env::var("PTSIM_BENCH_DIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
