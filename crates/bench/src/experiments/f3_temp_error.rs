//! **F3 — Temperature error before vs. after self-calibration.**
//!
//! The paper's headline accuracy figure: across a Monte-Carlo die
//! population and the −20…100 °C range, the uncalibrated RO thermometer
//! aliases process spread into tens of degrees of error; a single-point
//! correction leaves a V-shaped slope error; the full self-calibrated
//! sensor stays inside ±1.5 °C.

use crate::experiments::population_size;
use crate::table::{f, Table};
use ptsim_baselines::ro_thermometer::{RoCalibration, RoThermometer};
use ptsim_baselines::traits::Conversion;
use ptsim_core::pipeline::BatchPlan;
use ptsim_core::sensor::{SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{run_parallel_with, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::OnlineStats;

const TEMPS: [f64; 13] = [
    -20.0, -10.0, 0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
];

/// Runs the population sweep and renders the report.
///
/// All three sensors run the shared batched schedule (`convert_batch` for
/// the baselines, [`BatchPlan`] for the full sensor), so each sensor draws
/// its RNG stream contiguously instead of interleaved per temperature — a
/// deliberate, documented deviation from the pre-batching report (see
/// `EXPERIMENTS.md`); the statistics are unchanged in distribution.
///
/// # Panics
///
/// Panics if any die fails to calibrate/convert (indicates a model bug).
#[must_use]
pub fn run() -> String {
    let n = population_size(300);
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let plan = BatchPlan::new(tech.clone(), SensorSpec::default_65nm())
        .expect("sensor")
        .read_at(&TEMPS);

    // errs[variant][temp_index] per die.
    let per_die = run_parallel_with(
        &McConfig::new(n, 0xf3),
        || plan.sensor(),
        |full, i, rng| {
            let die = model.sample_die_with_id(rng, i);
            let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));

            let uncal = RoThermometer::new(tech.clone(), RoCalibration::None).expect("baseline");
            let mut onept =
                RoThermometer::new(tech.clone(), RoCalibration::OnePoint).expect("baseline");
            onept.prepare(&boot, rng).expect("1-pt prepare");

            let probes: Vec<SensorInputs<'_>> = TEMPS
                .iter()
                .map(|&t| SensorInputs::new(&die, DieSite::CENTER, Celsius(t)))
                .collect();

            let mut rows = [[0.0f64; TEMPS.len()]; 3];
            for (row, readings) in [
                uncal.convert_batch(&probes, rng).expect("uncal"),
                onept.convert_batch(&probes, rng).expect("1pt"),
                plan.convert_with(full, &die, rng)
                    .expect("self-calibration")
                    .readings,
            ]
            .iter()
            .enumerate()
            {
                for (ti, r) in readings.iter().enumerate() {
                    rows[row][ti] = r.temperature.0 - TEMPS[ti];
                }
            }
            rows
        },
    );

    let mut stats = vec![vec![OnlineStats::new(); TEMPS.len()]; 3];
    for rows in &per_die {
        for v in 0..3 {
            for ti in 0..TEMPS.len() {
                stats[v][ti].push(rows[v][ti]);
            }
        }
    }

    let mut table = Table::new(vec![
        "T [°C]",
        "uncal max|e|",
        "uncal σ",
        "1-pt max|e|",
        "1-pt σ",
        "this-work max|e|",
        "this-work σ",
    ]);
    for (ti, &t) in TEMPS.iter().enumerate() {
        table.push(vec![
            format!("{t}"),
            f(stats[0][ti].max_abs(), 2),
            f(stats[0][ti].std_dev(), 2),
            f(stats[1][ti].max_abs(), 2),
            f(stats[1][ti].std_dev(), 2),
            f(stats[2][ti].max_abs(), 3),
            f(stats[2][ti].std_dev(), 3),
        ]);
    }

    let overall = |v: usize| {
        stats[v]
            .iter()
            .map(OnlineStats::max_abs)
            .fold(0.0, f64::max)
    };
    format!(
        "F3: temperature error before/after self-calibration ({n} MC dies, errors in °C)\n\n{}\n\
         worst-case across range: uncalibrated ±{:.2} °C, 1-point ±{:.2} °C, \
         this work ±{:.3} °C (paper: ±1.5 °C)\n",
        table.render(),
        overall(0),
        overall(1),
        overall(2),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_orders_the_three_sensors() {
        std::env::set_var("PTSIM_BENCH_DIES", "12");
        let r = super::run();
        assert!(r.contains("F3"));
        assert!(r.contains("worst-case"));
    }
}
