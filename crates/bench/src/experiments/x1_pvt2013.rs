//! **X1 — Extension: the 2013 near-/sub-Vth PVT sensor with dynamic voltage
//! selection.**
//!
//! Sweeps the operating supply 0.25–0.50 V and reports the selected TSRO
//! bin, temperature error, and conversion power — reproducing the shape of
//! the follow-up paper's headline (operational across the whole range,
//! ~2.3 µW at 0.25 V).

use crate::table::{f, fs, Table};
use ptsim_baselines::pvt2013::{Pvt2013Sensor, VDD_BINS};
use ptsim_baselines::traits::{Conversion, Thermometer};
use ptsim_core::sensor::SensorInputs;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_mc::die::DieSite;
use ptsim_mc::model::VariationModel;

const TEMPS: [f64; 4] = [0.0, 25.0, 50.0, 75.0];

/// Runs the supply sweep and renders the report.
///
/// # Panics
///
/// Panics if the sensor fails to prepare/convert (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(0x2013);
    let die = model.sample_die(&mut rng);

    let mut table = Table::new(vec![
        "VDD [V]",
        "TSRO bin",
        "worst |T err| [°C]",
        "err @75 °C [°C]",
        "power [µW]",
        "E/conv [pJ]",
    ]);

    let mut sweep: Vec<f64> = VDD_BINS.to_vec();
    sweep.extend([0.275, 0.33, 0.42, 0.48]);
    sweep.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    for vdd in sweep {
        let mut sensor = Pvt2013Sensor::new(tech.clone(), Volt(vdd)).expect("pvt2013");
        sensor
            .prepare(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                &mut rng,
            )
            .expect("prepare");
        let mut worst: f64 = 0.0;
        let mut err75 = 0.0;
        let mut energy = 0.0;
        for &t in &TEMPS {
            let r = sensor
                .read_temperature(
                    &SensorInputs::new(&die, DieSite::CENTER, Celsius(t)),
                    &mut rng,
                )
                .expect("read");
            let e = r.temperature.0 - t;
            worst = worst.max(e.abs());
            if (t - 75.0).abs() < 1e-9 {
                err75 = e;
            }
            energy = r.energy.picojoules();
        }
        table.push(vec![
            f(vdd, 3),
            sensor.selected_bin().to_string(),
            f(worst, 3),
            fs(err75, 3),
            f(sensor.conversion_power().microwatts(), 2),
            f(energy, 1),
        ]);
    }

    let p25 = Pvt2013Sensor::new(tech, Volt(0.25))
        .expect("pvt2013")
        .conversion_power()
        .microwatts();
    format!(
        "X1: 2013 near-/sub-Vth PVT sensor with dynamic voltage selection\n\
         (one MC die, calibrated at 25 °C at each supply)\n\n{}\n\
         power at 0.25 V: {:.2} µW (2013 paper reports 2.3 µW at 0.25 V)\n",
        table.render(),
        p25,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_supply_range() {
        let r = super::run();
        assert!(r.contains("X1"));
        assert!(r.contains("0.250"));
        assert!(r.contains("0.500"));
    }
}
