//! **A1 — Design-choice ablations.**
//!
//! Sweeps the hardware knobs DESIGN.md calls out and grades each variant on
//! the same Monte-Carlo population:
//!
//! * Q-format register width (Q16.16 → Q8.8),
//! * counting-window length,
//! * counter width,
//! * boot-calibration temperature error,
//! * oscillator-bank site spacing (within-die gradient exposure).

use crate::experiments::population_size;
use crate::table::{f, Table};
use ptsim_circuit::fixed::QFormat;
use ptsim_core::bank::RoClass;
use ptsim_core::golden::CharacterizationSpace;
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{run_parallel, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::OnlineStats;

const TEMPS: [f64; 4] = [-20.0, 20.0, 60.0, 100.0];

struct Variant {
    label: &'static str,
    spec: SensorSpec,
    /// True boot temperature handed to calibration (assumed is 25 °C).
    boot_actual: f64,
    /// Run the on-chip math on the characterized polynomial (ROM) model.
    characterized: bool,
}

fn variants() -> Vec<Variant> {
    let base = SensorSpec::default_65nm();
    let mut v = vec![
        Variant {
            label: "reference (Q16.16, 14 µs window)",
            spec: base,
            boot_actual: 25.0,
            characterized: false,
        },
        Variant {
            label: "characterized (ROM) model math",
            spec: base,
            boot_actual: 25.0,
            characterized: true,
        },
        Variant {
            label: "Q8.8 registers",
            spec: SensorSpec {
                qformat: QFormat::Q8_8,
                ..base
            },
            boot_actual: 25.0,
            characterized: false,
        },
        Variant {
            label: "window ÷ 8 (1.75 µs)",
            spec: SensorSpec {
                window_cycles: 56,
                ..base
            },
            boot_actual: 25.0,
            characterized: false,
        },
        Variant {
            label: "window × 4 (56 µs)",
            spec: SensorSpec {
                window_cycles: 1792,
                ..base
            },
            boot_actual: 25.0,
            characterized: false,
        },
        Variant {
            label: "10-bit counters",
            spec: SensorSpec {
                counter_bits: 10,
                ..base
            },
            boot_actual: 25.0,
            characterized: false,
        },
        Variant {
            label: "boot 5 °C hotter than assumed",
            spec: base,
            boot_actual: 30.0,
            characterized: false,
        },
    ];
    let mut wide = base;
    wide.bank.site_spacing = 0.05;
    v.push(Variant {
        label: "bank spread 10× (WID exposure)",
        spec: wide,
        boot_actual: 25.0,
        characterized: false,
    });
    v
}

/// Runs every ablation variant and renders the table.
///
/// # Panics
///
/// Panics if a variant fails to build or converge (a bug).
#[must_use]
pub fn run() -> String {
    let n = population_size(80);
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);

    let mut table = Table::new(vec![
        "variant",
        "worst |T err| [°C]",
        "σ T err [°C]",
        "worst |ΔVtn err| [mV]",
        "E/conv [pJ]",
    ]);

    for var in variants() {
        let spec = var.spec;
        let boot_actual = var.boot_actual;
        let characterized = var.characterized;
        // Characterize once per variant (design-time cost, shared by dies).
        let rom_template = if characterized {
            let mut s = PtSensor::new(tech.clone(), spec).expect("sensor");
            s.use_characterized_model(CharacterizationSpace::default())
                .expect("characterization");
            Some(s)
        } else {
            None
        };
        let per_die = run_parallel(&McConfig::new(n, 0xa1), |i, rng| {
            let die = model.sample_die_with_id(rng, i);
            let mut sensor = match &rom_template {
                Some(t) => t.clone(),
                None => PtSensor::new(tech.clone(), spec).expect("sensor"),
            };
            sensor
                .calibrate(
                    &SensorInputs::new(&die, DieSite::CENTER, Celsius(boot_actual)),
                    rng,
                )
                .expect("calibration");
            let cal = *sensor.calibration().expect("calibrated");
            let site_n = sensor.bank().site_of(RoClass::PsroN, DieSite::CENTER);
            let vtn_err = (cal.d_vtn() - die.d_vtn_at(site_n)).millivolts();
            let mut t_errs = Vec::new();
            let mut energy = 0.0;
            for &t in &TEMPS {
                let r = sensor
                    .read(&SensorInputs::new(&die, DieSite::CENTER, Celsius(t)), rng)
                    .expect("conversion");
                t_errs.push(r.temperature.0 - t);
                energy = r.energy_total().picojoules();
            }
            (t_errs, vtn_err, energy)
        });

        let mut t_stats = OnlineStats::new();
        let mut vtn_stats = OnlineStats::new();
        let mut e_stats = OnlineStats::new();
        for (t_errs, vtn, e) in per_die {
            t_stats.extend(t_errs);
            vtn_stats.push(vtn);
            e_stats.push(e);
        }
        table.push(vec![
            var.label.to_owned(),
            f(t_stats.max_abs(), 3),
            f(t_stats.std_dev(), 3),
            f(vtn_stats.max_abs(), 3),
            f(e_stats.mean(), 1),
        ]);
    }

    format!(
        "A1: design-choice ablations ({n} MC dies, convert at {TEMPS:?} °C)\n\n{}\n\
         expectations: narrow registers and short windows cost accuracy; a longer\n\
         window buys accuracy with energy; boot-temperature error biases readings;\n\
         spreading the bank exposes within-die gradients\n",
        table.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_variants() {
        std::env::set_var("PTSIM_BENCH_DIES", "6");
        let r = super::run();
        assert!(r.contains("reference"));
        assert!(r.contains("Q8.8"));
        assert!(r.contains("boot 5"));
    }
}
