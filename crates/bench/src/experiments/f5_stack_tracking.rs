//! **F5 — 3D-stack case study: per-tier temperature tracking.**
//!
//! The application the title promises: one sensor per tier of a 4-tier
//! TSV stack, tracking a transient workload heat-up and the steady-state
//! inter-tier gradient against thermal-simulator ground truth.

use crate::table::{f, fs, Table};
use ptsim_core::monitor::StackMonitor;
use ptsim_core::sensor::SensorSpec;
use ptsim_device::process::Technology;
use ptsim_device::units::{Seconds, Watt};
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::model::VariationModel;
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, step_transient, SolveOptions};
use ptsim_tsv::topology::StackTopology;

/// Runs the stack case study and renders the report.
///
/// # Panics
///
/// Panics if the reference stack fails to build or solve (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(0xf5);
    let dies: Vec<DieSample> = (0..4)
        .map(|i| model.sample_die_with_id(&mut rng, i))
        .collect();
    let mut monitor = StackMonitor::new(
        StackTopology::reference_four_tier(),
        dies,
        DieSite::new(0.35, 0.35),
        &tech,
        SensorSpec::default_65nm(),
    )
    .expect("monitor");
    monitor.calibrate_all(&mut rng).expect("boot calibration");

    let mut thermal = monitor.build_thermal().expect("thermal");
    let mut p0 = PowerMap::zero(16, 16).expect("map");
    p0.add_hotspot(0.35, 0.35, 0.12, Watt(2.0));
    thermal.set_power(0, p0).expect("power");
    thermal
        .set_power(2, PowerMap::uniform(16, 16, Watt(0.5)).expect("map"))
        .expect("power");

    let mut table = Table::new(vec![
        "t [ms]", "T0 true", "T0 read", "T1 true", "T1 read", "T2 true", "T2 read", "T3 true",
        "T3 read",
    ]);
    let mut worst: f64 = 0.0;
    let mut elapsed = 0.0;
    for _ in 0..12 {
        step_transient(&mut thermal, Seconds(0.002));
        elapsed += 2.0;
        let readings = monitor.read_all(&thermal, &mut rng).expect("read");
        let mut row = vec![f(elapsed, 1)];
        for r in &readings {
            row.push(f(r.true_temp.0, 2));
            row.push(f(r.reading.temperature.0, 2));
            worst = worst.max(r.temp_error().abs());
        }
        table.push(row);
    }

    solve_steady_state(&mut thermal, &SolveOptions::default()).expect("steady state");
    let readings = monitor.read_all(&thermal, &mut rng).expect("read");
    let mut steady = Table::new(vec![
        "tier",
        "true [°C]",
        "read [°C]",
        "err [°C]",
        "ΔVtn drift [mV]",
        "E/conv [pJ]",
    ]);
    for r in &readings {
        worst = worst.max(r.temp_error().abs());
        steady.push(vec![
            r.tier.to_string(),
            f(r.true_temp.0, 2),
            f(r.reading.temperature.0, 2),
            fs(r.temp_error(), 3),
            fs(r.vt_drift.0.millivolts(), 3),
            f(r.reading.energy_total().picojoules(), 1),
        ]);
    }

    format!(
        "F5: 4-tier TSV stack tracking (2 W hotspot tier 0 + 0.5 W tier 2)\n\n\
         transient heat-up:\n{}\n\
         steady state:\n{}\n\
         worst per-tier error across the run: ±{:.3} °C (paper: ±1.5 °C)\n\
         gradient visibility: tier0−tier3 true {:.2} °C, read {:.2} °C\n",
        table.render(),
        steady.render(),
        worst,
        readings[0].true_temp.0 - readings[3].true_temp.0,
        readings[0].reading.temperature.0 - readings[3].reading.temperature.0,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        let r = super::run();
        assert!(r.contains("F5"));
        assert!(r.contains("steady state"));
        assert!(r.contains("gradient"));
    }
}
