//! **T3 — Corner robustness.**
//!
//! Self-calibration and conversion at every named global process corner:
//! the extracted shifts must match the corner definition and the
//! temperature error must stay inside the paper band at all five corners.

use crate::table::{f, fs, Table};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::{ProcessCorner, Technology};
use ptsim_device::units::Celsius;
use ptsim_mc::die::DieSite;
use ptsim_mc::model::VariationModel;

const TEMPS: [f64; 5] = [-20.0, 10.0, 40.0, 70.0, 100.0];

/// Runs the corner sweep and renders the table.
///
/// # Panics
///
/// Panics if a corner fails to calibrate or convert (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(0x73);

    let mut table = Table::new(vec![
        "corner",
        "true ΔVtn [mV]",
        "extracted [mV]",
        "true ΔVtp [mV]",
        "extracted [mV]",
        "worst |T err| [°C]",
        "E/conv [pJ]",
    ]);
    let mut worst_overall: f64 = 0.0;
    for corner in ProcessCorner::ALL {
        let die = model.corner_die(corner, &tech);
        let mut sensor = PtSensor::new(tech.clone(), SensorSpec::default_65nm()).expect("sensor");
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                &mut rng,
            )
            .expect("calibration");
        let cal = *sensor.calibration().expect("calibrated");
        let mut worst: f64 = 0.0;
        let mut energy = 0.0;
        for &t in &TEMPS {
            let r = sensor
                .read(
                    &SensorInputs::new(&die, DieSite::CENTER, Celsius(t)),
                    &mut rng,
                )
                .expect("conversion");
            worst = worst.max((r.temperature.0 - t).abs());
            energy = r.energy_total().picojoules();
        }
        worst_overall = worst_overall.max(worst);
        table.push(vec![
            corner.to_string(),
            fs(corner.vtn_shift(&tech).millivolts(), 1),
            fs(cal.d_vtn().millivolts(), 2),
            fs(corner.vtp_shift(&tech).millivolts(), 1),
            fs(cal.d_vtp().millivolts(), 2),
            f(worst, 3),
            f(energy, 1),
        ]);
    }

    format!(
        "T3: corner robustness (calibrate at 25 °C, convert at {TEMPS:?} °C)\n\n{}\n\
         worst error across all corners: ±{:.3} °C (paper: ±1.5 °C)\n",
        table.render(),
        worst_overall,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_five_corners() {
        let r = super::run();
        for c in ["TT", "FF", "SS", "FS", "SF"] {
            assert!(r.contains(c), "missing corner {c}");
        }
    }
}
