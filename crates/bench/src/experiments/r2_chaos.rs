//! **R2 — Robustness: fleet-service chaos campaign.**
//!
//! Boots the real daemon ([`ptsim_service::Server`] over loopback TCP) and
//! attacks it the way production does: injected conversion panics, worker
//! crashes, stalled workers against tight deadlines, overload bursts, a
//! shard driven past its restart budget, and a malformed-frame storm.
//! Grading is on the service's failure contract, not on luck:
//!
//! * **availability** — the unharmed baseline serves every request, and
//!   dies on healthy shards keep serving right through another shard's
//!   outage;
//! * **accounting** — every request the campaign sends is *answered*
//!   (a reading or a typed rejection); nothing is dropped silently;
//! * **recovery** — a crashed worker is restarted within the backoff
//!   budget and its dies rebuild bit-identical state from the
//!   deterministic seeds;
//! * **no silent corruption** — a reading flagged `nominal` must be
//!   within [`SDC_TEMP_LIMIT`] of the requested junction temperature
//!   (the R1 silent-data-corruption threshold, applied fleet-side);
//! * **typed death** — a shard that exhausts its restart budget answers
//!   `shard_down`, never hangs;
//! * **hardening** — garbage frames are answered with `bad_request` (or
//!   the connection closed at a strike/desync boundary) and the daemon
//!   serves clean requests immediately after the storm.

use crate::table::Table;
use ptsim_rng::{Pcg64, RngCore};
use ptsim_service::protocol::{InjectKind, Quality, Rejection, Request, Response};
use ptsim_service::{Client, ClientError, Fleet, FleetConfig, HealthWire, Server, ServerConfig};
use std::time::{Duration, Instant};

/// Fixed seed of the campaign fleet (and of the garbage generator).
pub const R2_SEED: u64 = 0x0c4a05;

/// Silent-corruption threshold, °C — mirrors `r1_faults::SDC_TEMP_LIMIT`:
/// a `nominal`-flagged reading further than this from the requested
/// junction temperature is counted as silent corruption.
pub const SDC_TEMP_LIMIT: f64 = 5.0;

/// Recovery budget for a supervised worker restart, ms.
pub const RECOVERY_BUDGET_MS: f64 = 5_000.0;

/// Campaign sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Fleet dies.
    pub n_dies: u64,
    /// Fleet shards.
    pub n_shards: u64,
    /// Bounded queue depth (small, so the burst phase genuinely overloads).
    pub queue_depth: usize,
    /// Restart budget of the shard-kill phase.
    pub max_restarts: u64,
    /// Reads per die in the baseline phase.
    pub baseline_reads_per_die: usize,
    /// Concurrent low-priority reads in the overload burst.
    pub burst: usize,
    /// Garbage frames per storm connection.
    pub storm_frames: usize,
    /// Storm connections.
    pub storm_conns: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            n_dies: 16,
            n_shards: 4,
            queue_depth: 4,
            max_restarts: 2,
            baseline_reads_per_die: 2,
            burst: 10,
            storm_frames: 3,
            storm_conns: 6,
        }
    }
}

/// Outcome tally of one campaign phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase name.
    pub name: &'static str,
    /// Requests sent.
    pub sent: usize,
    /// Answered with a served result.
    pub served: usize,
    /// Served readings flagged `degraded`.
    pub degraded: usize,
    /// Typed `timeout` rejections.
    pub rej_timeout: usize,
    /// Typed `overloaded` rejections.
    pub rej_overloaded: usize,
    /// Typed `shard_down` rejections.
    pub rej_shard_down: usize,
    /// Typed `worker_panicked` rejections.
    pub rej_worker_panicked: usize,
    /// Typed `bad_request` rejections.
    pub rej_bad_request: usize,
    /// Other typed rejections.
    pub rej_other: usize,
    /// Transport-level closes (only legitimate in the storm phase, where
    /// a strike budget or desync close is the documented answer).
    pub transport_closed: usize,
}

impl PhaseStats {
    fn new(name: &'static str) -> Self {
        PhaseStats {
            name,
            ..PhaseStats::default()
        }
    }

    /// Requests answered one way or another.
    #[must_use]
    pub fn accounted(&self) -> usize {
        self.served
            + self.rej_timeout
            + self.rej_overloaded
            + self.rej_shard_down
            + self.rej_worker_panicked
            + self.rej_bad_request
            + self.rej_other
            + self.transport_closed
    }
}

/// The graded campaign outcome.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-phase tallies, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Trigger-to-first-served latency of the worker-crash recovery, ms.
    pub recovery_ms: f64,
    /// `nominal` readings beyond [`SDC_TEMP_LIMIT`] of the requested
    /// junction temperature.
    pub silent_corruptions: usize,
    /// Whether health reported a `dead` shard after the kill phase.
    pub dead_shard_observed: bool,
    /// Whether healthy shards served during the dead shard's outage.
    pub survivors_served_during_outage: usize,
    /// Whether a clean request was served right after the frame storm.
    pub clean_read_after_storm: bool,
    /// Final fleet health (merged counters, shard states, restarts).
    pub health: HealthWire,
}

impl ChaosReport {
    /// Baseline availability in `[0, 1]`.
    #[must_use]
    pub fn baseline_availability(&self) -> f64 {
        let base = &self.phases[0];
        if base.sent == 0 {
            return 0.0;
        }
        base.served as f64 / base.sent as f64
    }

    /// Requests that vanished without any answer, campaign-wide.
    #[must_use]
    pub fn unaccounted(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.sent.saturating_sub(p.accounted()))
            .sum()
    }

    /// Supervisor restarts recorded by the fleet.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.health.shards.iter().map(|s| s.restarts).sum()
    }

    fn phase(&self, name: &str) -> &PhaseStats {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .expect("phase recorded")
    }

    /// Every violated gate, as human-readable findings; an empty list is a
    /// passing campaign. `tests/service_gates.rs` asserts on this.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        let mut gate = |ok: bool, msg: String| {
            if !ok {
                fails.push(msg);
            }
        };
        gate(
            (self.baseline_availability() - 1.0).abs() < f64::EPSILON,
            format!(
                "baseline availability {:.3} below 1.0",
                self.baseline_availability()
            ),
        );
        gate(
            self.unaccounted() == 0,
            format!("{} requests vanished unanswered", self.unaccounted()),
        );
        gate(
            self.silent_corruptions == 0,
            format!("{} silently corrupted readings", self.silent_corruptions),
        );
        gate(
            self.recovery_ms.is_finite() && self.recovery_ms <= RECOVERY_BUDGET_MS,
            format!(
                "worker recovery took {:.0} ms (budget {RECOVERY_BUDGET_MS:.0} ms)",
                self.recovery_ms
            ),
        );
        gate(
            self.restarts() >= 1,
            "no supervisor restart was recorded".to_string(),
        );
        let panics = self.phase("conversion-panic");
        gate(
            panics.rej_worker_panicked >= 1 && panics.served >= 1,
            format!(
                "conversion panics must be typed then recover (panicked {}, served {})",
                panics.rej_worker_panicked, panics.served
            ),
        );
        let degrade = self.phase("degrade");
        gate(
            degrade.degraded >= 2,
            format!(
                "degraded dies must keep serving flagged readings (got {})",
                degrade.degraded
            ),
        );
        let burst = self.phase("overload-burst");
        gate(
            burst.rej_overloaded >= 1,
            "the burst never produced a typed overload shed".to_string(),
        );
        gate(
            burst.served >= 1,
            "nothing was served during the overload burst".to_string(),
        );
        let deadline = self.phase("stall-deadline");
        gate(
            deadline.rej_timeout >= 1,
            "a stalled worker must surface as a typed timeout".to_string(),
        );
        gate(
            self.dead_shard_observed,
            "the kill phase never produced a dead shard".to_string(),
        );
        let kill = self.phase("kill-shard");
        gate(
            kill.rej_shard_down >= 1,
            "a dead shard must answer with typed shard_down".to_string(),
        );
        gate(
            self.survivors_served_during_outage >= 1,
            "healthy shards went quiet during the outage".to_string(),
        );
        let storm = self.phase("frame-storm");
        gate(
            storm.rej_bad_request >= 1,
            "the frame storm never got a typed bad_request".to_string(),
        );
        gate(
            self.clean_read_after_storm,
            "the daemon failed a clean request right after the storm".to_string(),
        );
        fails
    }
}

/// Classifies one client call into a phase tally, and checks the served
/// reading against the silent-corruption threshold.
fn record(
    phase: &mut PhaseStats,
    outcome: &Result<Response, ClientError>,
    expected_temp: Option<f64>,
    silent_corruptions: &mut usize,
) {
    phase.sent += 1;
    match outcome {
        Ok(Response::Reading {
            temp_c, quality, ..
        }) => {
            phase.served += 1;
            if *quality == Quality::Degraded {
                phase.degraded += 1;
            }
            if *quality == Quality::Nominal {
                if let Some(expected) = expected_temp {
                    if (temp_c - expected).abs() > SDC_TEMP_LIMIT {
                        *silent_corruptions += 1;
                    }
                }
            }
        }
        Ok(
            Response::Calibrated { .. }
            | Response::Batch { .. }
            | Response::Injected { .. }
            | Response::Pong { .. }
            | Response::Health(_)
            | Response::ShuttingDown,
        ) => phase.served += 1,
        Ok(Response::Rejected { rejection, .. }) => match rejection {
            Rejection::Timeout => phase.rej_timeout += 1,
            Rejection::Overloaded => phase.rej_overloaded += 1,
            Rejection::ShardDown => phase.rej_shard_down += 1,
            Rejection::WorkerPanicked => phase.rej_worker_panicked += 1,
            Rejection::BadRequest => phase.rej_bad_request += 1,
            Rejection::ConversionFailed => phase.rej_other += 1,
        },
        Err(_) => phase.transport_closed += 1,
    }
}

fn read_req(die: u64, temp: f64, priority: u8, deadline_ms: u64) -> Request {
    Request::Read {
        die,
        temp_c: temp,
        priority,
        deadline_ms,
    }
}

/// Runs the full campaign against a freshly booted daemon.
///
/// # Panics
///
/// Panics only on campaign-harness failures (cannot bind loopback, cannot
/// connect); every *service* misbehavior is recorded and graded instead.
#[must_use]
pub fn run_campaign(cfg: &ChaosConfig) -> ChaosReport {
    let fleet = Fleet::start(FleetConfig {
        n_dies: cfg.n_dies,
        n_shards: cfg.n_shards,
        queue_depth: cfg.queue_depth,
        base_seed: R2_SEED,
        coalesce_max: 64,
        max_restarts: cfg.max_restarts,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
    });
    let server = Server::bind(
        fleet,
        "127.0.0.1:0",
        ServerConfig {
            write_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind campaign daemon on loopback");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect campaign client");
    let mut silent = 0usize;
    let mut phases = Vec::new();

    // Phase A — baseline: the unharmed fleet serves everything.
    let mut base = PhaseStats::new("baseline");
    for round in 0..cfg.baseline_reads_per_die {
        for die in 0..cfg.n_dies {
            let temp = 40.0 + 10.0 * (round as f64) + (die % 5) as f64;
            let r = client.call(&read_req(die, temp, 1, 10_000));
            record(&mut base, &r, Some(temp), &mut silent);
        }
    }
    phases.push(base);

    // Phase B — conversion panics: typed rejection, then immediate
    // recovery, and sibling dies on the same shard are undisturbed.
    let mut conv = PhaseStats::new("conversion-panic");
    for die in [1u64, 2] {
        let r = client.call(&Request::Inject {
            die,
            kind: InjectKind::PanicConversion,
        });
        record(&mut conv, &r, None, &mut silent);
        let tripped = client.call(&read_req(die, 85.0, 1, 10_000));
        record(&mut conv, &tripped, Some(85.0), &mut silent);
        let recovered = client.call(&read_req(die, 85.0, 1, 10_000));
        record(&mut conv, &recovered, Some(85.0), &mut silent);
        let sibling = client.call(&read_req(die + cfg.n_shards, 85.0, 1, 10_000));
        record(&mut conv, &sibling, Some(85.0), &mut silent);
    }
    phases.push(conv);

    // Phase C — degraded serving: a die with a dead PSRO bank keeps
    // answering temperature with an explicit quality flag, then heals.
    let mut degrade = PhaseStats::new("degrade");
    for die in [3u64, 4] {
        let r = client.call(&Request::Inject {
            die,
            kind: InjectKind::DegradeDie,
        });
        record(&mut degrade, &r, None, &mut silent);
        let flagged = client.call(&read_req(die, 70.0, 1, 10_000));
        record(&mut degrade, &flagged, Some(70.0), &mut silent);
    }
    let healed_inject = client.call(&Request::Inject {
        die: 3,
        kind: InjectKind::HealDie,
    });
    record(&mut degrade, &healed_inject, None, &mut silent);
    let healed = client.call(&read_req(3, 70.0, 1, 10_000));
    record(&mut degrade, &healed, Some(70.0), &mut silent);
    phases.push(degrade);

    // Phase D — worker crash + supervised recovery, timed.
    let mut crash = PhaseStats::new("worker-crash");
    let r = client.call(&Request::Inject {
        die: 0,
        kind: InjectKind::PanicWorker,
    });
    record(&mut crash, &r, None, &mut silent);
    let tripped = client.call(&read_req(0, 60.0, 1, 400));
    record(&mut crash, &tripped, Some(60.0), &mut silent);
    let trigger_done = Instant::now();
    let mut recovery_ms = f64::INFINITY;
    while trigger_done.elapsed() < Duration::from_secs(10) {
        let probe = client.call(&read_req(0, 60.0, 1, 2_000));
        let served = matches!(probe, Ok(Response::Reading { .. }));
        record(&mut crash, &probe, Some(60.0), &mut silent);
        if served {
            recovery_ms = trigger_done.elapsed().as_secs_f64() * 1e3;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    phases.push(crash);

    // Phase E — stalled worker vs. deadline: the caller is released with a
    // typed timeout at its own budget.
    let mut stall = PhaseStats::new("stall-deadline");
    let r = client.call(&Request::Inject {
        die: 2,
        kind: InjectKind::StallMs(800),
    });
    record(&mut stall, &r, None, &mut silent);
    let timed_out = client.call(&read_req(2, 60.0, 1, 100));
    record(&mut stall, &timed_out, Some(60.0), &mut silent);
    // The stalled worker drains; the die serves again afterwards.
    let after = client.call(&read_req(2, 60.0, 1, 10_000));
    record(&mut stall, &after, Some(60.0), &mut silent);
    phases.push(stall);

    // Phase F — overload burst: stall one shard's worker, then flood its
    // queue with low-priority reads; sheds must be typed and a
    // high-priority read must still get through.
    let mut burst = PhaseStats::new("overload-burst");
    let r = client.call(&Request::Inject {
        die: 1,
        kind: InjectKind::StallMs(700),
    });
    record(&mut burst, &r, None, &mut silent);
    let burst_temp = 55.0;
    let occupier = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("burst occupier connect");
            c.call(&read_req(1, burst_temp, 3, 15_000))
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let flood: Vec<_> = (0..cfg.burst)
        .map(|i| {
            let addr = addr.clone();
            let die = 1 + cfg.n_shards * (i as u64 % 3); // all on die-1's shard
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("burst client connect");
                c.call(&read_req(die, burst_temp, 0, 15_000))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let vip = client.call(&read_req(1, burst_temp, 3, 15_000));
    record(&mut burst, &vip, Some(burst_temp), &mut silent);
    record(
        &mut burst,
        &occupier.join().expect("occupier join"),
        Some(burst_temp),
        &mut silent,
    );
    for h in flood {
        record(
            &mut burst,
            &h.join().expect("burst join"),
            Some(burst_temp),
            &mut silent,
        );
    }
    phases.push(burst);

    // Phase G — kill a shard past its restart budget; its dies answer
    // shard_down while the rest of the fleet keeps serving.
    let mut kill = PhaseStats::new("kill-shard");
    let victim_die = 5u64; // shard 1 in the default 4-shard layout
    let victim_shard = victim_die % cfg.n_shards;
    for _ in 0..=cfg.max_restarts {
        let inj = client.call(&Request::Inject {
            die: victim_die,
            kind: InjectKind::PanicWorker,
        });
        record(&mut kill, &inj, None, &mut silent);
        let tripped = client.call(&read_req(victim_die, 60.0, 1, 400));
        record(&mut kill, &tripped, Some(60.0), &mut silent);
        std::thread::sleep(Duration::from_millis(120));
    }
    let mut dead_shard_observed = false;
    let wait_dead = Instant::now();
    while wait_dead.elapsed() < Duration::from_secs(10) {
        if let Ok(Response::Health(h)) = client.call(&Request::Health) {
            if h.shards
                .iter()
                .any(|s| s.id == victim_shard && s.state == "dead")
            {
                dead_shard_observed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let down = client.call(&read_req(victim_die, 60.0, 1, 2_000));
    record(&mut kill, &down, Some(60.0), &mut silent);
    let mut survivors_served_during_outage = 0usize;
    for die in 0..cfg.n_dies {
        if die % cfg.n_shards == victim_shard {
            continue;
        }
        let r = client.call(&read_req(die, 60.0, 1, 10_000));
        if matches!(r, Ok(Response::Reading { .. })) {
            survivors_served_during_outage += 1;
        }
        record(&mut kill, &r, Some(60.0), &mut silent);
    }
    phases.push(kill);

    // Phase H — malformed-frame storm, then a clean request.
    let mut storm = PhaseStats::new("frame-storm");
    let mut garbage_rng = Pcg64::seed_from_u64(R2_SEED);
    for conn_i in 0..cfg.storm_conns {
        let Ok(mut attacker) = Client::connect(&addr) else {
            continue;
        };
        let _ = attacker.set_reply_timeout(Duration::from_secs(5));
        for _ in 0..cfg.storm_frames {
            let mut payload = vec![0u8; 24];
            for b in &mut payload {
                *b = (garbage_rng.next_u64() & 0xff) as u8;
            }
            let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(&payload);
            if attacker.send_raw(&framed).is_err() {
                storm.sent += 1;
                storm.transport_closed += 1;
                continue;
            }
            let resp = attacker.read_response();
            record(&mut storm, &resp, None, &mut silent);
        }
        // Odd connections also fire an oversize prefix (answered, then
        // closed) or a truncated frame (closed at the desync boundary).
        if conn_i % 2 == 1 {
            storm.sent += 1;
            if attacker.send_raw(&u32::MAX.to_be_bytes()).is_ok() {
                match attacker.read_response() {
                    Ok(Response::Rejected { .. }) => storm.rej_bad_request += 1,
                    _ => storm.transport_closed += 1,
                }
            } else {
                storm.transport_closed += 1;
            }
        }
    }
    let clean = client.call(&read_req(2, 60.0, 1, 10_000));
    let clean_read_after_storm = matches!(clean, Ok(Response::Reading { .. }));
    record(&mut storm, &clean, Some(60.0), &mut silent);
    phases.push(storm);

    let health = match client.call(&Request::Health) {
        Ok(Response::Health(h)) => h,
        other => panic!("final health fetch failed: {other:?}"),
    };
    server.stop();
    server.join();

    ChaosReport {
        phases,
        recovery_ms,
        silent_corruptions: silent,
        dead_shard_observed,
        survivors_served_during_outage,
        clean_read_after_storm,
        health,
    }
}

/// Renders the human-readable campaign report.
#[must_use]
pub fn render_report(report: &ChaosReport) -> String {
    let mut table = Table::new(vec![
        "phase",
        "sent",
        "served",
        "degraded",
        "timeout",
        "overload",
        "shard_down",
        "panicked",
        "bad_req",
        "closed",
    ]);
    for p in &report.phases {
        table.push(vec![
            p.name.to_string(),
            p.sent.to_string(),
            p.served.to_string(),
            p.degraded.to_string(),
            p.rej_timeout.to_string(),
            p.rej_overloaded.to_string(),
            p.rej_shard_down.to_string(),
            p.rej_worker_panicked.to_string(),
            p.rej_bad_request.to_string(),
            p.transport_closed.to_string(),
        ]);
    }
    let fails = report.gate_failures();
    let mut out = String::from("R2 — fleet-service chaos campaign\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nbaseline availability: {:.3}\nunaccounted requests: {}\nsilent corruptions: {}\nworker recovery: {:.0} ms (budget {:.0} ms)\nsupervisor restarts: {}\ndead shard observed: {}\nsurvivors serving during outage: {}\nclean read after storm: {}\n",
        report.baseline_availability(),
        report.unaccounted(),
        report.silent_corruptions,
        report.recovery_ms,
        RECOVERY_BUDGET_MS,
        report.restarts(),
        report.dead_shard_observed,
        report.survivors_served_during_outage,
        report.clean_read_after_storm,
    ));
    out.push_str(&format!(
        "\ngates: {}\n",
        if fails.is_empty() {
            "all OK".to_string()
        } else {
            format!("{} FAILED", fails.len())
        }
    ));
    for failure in &fails {
        out.push_str(&format!("  FAIL: {failure}\n"));
    }
    out
}

/// Runs the campaign at default size and renders the report.
#[must_use]
pub fn run() -> String {
    render_report(&run_campaign(&ChaosConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity_holds() {
        let mut p = PhaseStats::new("x");
        p.sent = 3;
        p.served = 1;
        p.rej_timeout = 1;
        p.transport_closed = 1;
        assert_eq!(p.accounted(), 3);
    }
}
