//! **R1 — Robustness: fault-injection campaign.**
//!
//! Sweeps the [`ptsim_faults`] catalog (fault type × severity) over a
//! fixed-seed Monte-Carlo population of hardened sensors (triple modular
//! redundancy, tight drift guard) and grades the detection/recovery
//! machinery:
//!
//! * **detection rate** — fraction of injected readings that were flagged
//!   (non-nominal health) or refused (typed error); catastrophic faults
//!   must essentially never slip through;
//! * **SDC rate** — *silent data corruption*: un-flagged readings whose
//!   temperature is off by more than 5 °C or whose tracked thresholds are
//!   off by more than 10 mV against the healthy reference (excluding
//!   faults, like an open thermal via, that change the true local
//!   temperature — the sensor faithfully reports what it sits at);
//! * **retry / energy overhead** — widened-window retries and the energy
//!   ratio against the healthy conversion;
//! * **degraded accuracy** — temperature error of temperature-only output
//!   while a PSRO bank is dead;
//! * **scrub recovery** — calibration-SEU strikes must be caught by parity
//!   and fully recovered by [`ptsim_core::PtSensor::parity_scrub`].

use crate::experiments::population_size;
use crate::table::{f, Table};
use ptsim_core::health::HealthEvent;
use ptsim_core::pipeline::{run_conversion_with, BatchPlan, Scratch};
use ptsim_core::sensor::{HardeningSpec, SensorInputs, SensorSpec};
use ptsim_core::{PipelineMetrics, SensorError};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_faults::catalog;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{run_parallel_metered, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_obs::Snapshot;

/// Fixed base seed of the campaign population.
pub const R1_SEED: u64 = 0x0f41;
/// Severity knob settings swept per catalog entry.
pub const SEVERITIES: [f64; 3] = [0.25, 0.5, 1.0];
/// Junction temperature every faulted conversion happens at.
pub const READ_TEMP: f64 = 85.0;
/// Silent-data-corruption thresholds: an un-flagged reading beyond either
/// is counted as SDC.
pub const SDC_TEMP_LIMIT: f64 = 5.0;
/// See [`SDC_TEMP_LIMIT`].
pub const SDC_VT_LIMIT_MV: f64 = 10.0;

/// The hardened sensor configuration the campaign flies: triple modular
/// redundancy on every channel and a drift guard tight enough to flag
/// solver-visible corruption (the campaign injects no genuine aging, so
/// any apparent drift beyond quantization noise is a fault symptom).
#[must_use]
pub fn hardened_spec() -> SensorSpec {
    let mut spec = SensorSpec::default_65nm();
    spec.hardening = HardeningSpec::redundant();
    spec.hardening.max_drift = Volt(0.005);
    spec
}

/// Raw outcome of one (die, catalog cell) injection.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellOutcome {
    detected: bool,
    errored: bool,
    temp_err: f64,
    vt_err_mv: f64,
    degraded_temp_err: Option<f64>,
    retries: u32,
    energy_rel: f64,
    scrub_recovered: Option<bool>,
}

/// Aggregated campaign statistics of one catalog cell (fault × severity).
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Catalog entry id.
    pub id: &'static str,
    /// Severity the entry was instantiated at.
    pub severity: f64,
    /// Whether the entry is graded against the catastrophic detection floor.
    pub catastrophic: bool,
    /// Whether junction-referenced error comparisons are meaningful.
    pub junction_comparable: bool,
    /// Dies injected.
    pub dies: usize,
    /// Readings flagged or refused.
    pub detected: usize,
    /// Readings refused with a typed error.
    pub errored: usize,
    /// Un-flagged `Ok` readings.
    pub silent: usize,
    /// Silent readings beyond the SDC thresholds (junction-comparable only).
    pub sdc: usize,
    /// Worst `|temperature − junction|` among silent readings [°C].
    pub worst_silent_temp_err: f64,
    /// Worst tracked-threshold deviation from the healthy reference among
    /// silent readings \[mV\].
    pub worst_silent_vt_err_mv: f64,
    /// Worst `|temperature − junction|` among temperature-only degraded
    /// readings [°C] (0 when the cell never degrades).
    pub worst_degraded_temp_err: f64,
    /// Mean widened-window retries per die.
    pub mean_retries: f64,
    /// Mean energy ratio against the healthy conversion (over `Ok`
    /// readings; 0 when every reading errored).
    pub mean_energy_rel: f64,
}

impl CellStats {
    /// Detection rate in `[0, 1]`.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.dies == 0 {
            return 1.0;
        }
        self.detected as f64 / self.dies as f64
    }
}

/// Full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Population size.
    pub n_dies: usize,
    /// Base seed.
    pub seed: u64,
    /// Healthy (pre-injection) calibrations or readings that were falsely
    /// flagged — must be zero for the hardening to be usable.
    pub healthy_flagged: usize,
    /// Per-cell statistics, severity-major in catalog order.
    pub cells: Vec<CellStats>,
    /// Calibration-SEU scrub attempts.
    pub seu_scrub_attempts: usize,
    /// Scrubs that restored an accurate, nominal sensor.
    pub seu_scrub_recovered: usize,
}

impl CampaignResult {
    /// Detection rate pooled over every catastrophic cell.
    #[must_use]
    pub fn catastrophic_detection_rate(&self) -> f64 {
        let (mut det, mut tot) = (0usize, 0usize);
        for c in self.cells.iter().filter(|c| c.catastrophic) {
            det += c.detected;
            tot += c.dies;
        }
        if tot == 0 {
            return 1.0;
        }
        det as f64 / tot as f64
    }

    /// Total silent-data-corruption count across all comparable cells.
    #[must_use]
    pub fn total_sdc(&self) -> usize {
        self.cells.iter().map(|c| c.sdc).sum()
    }

    /// Worst degraded temperature-only error across all cells [°C].
    #[must_use]
    pub fn worst_degraded_temp_err(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.worst_degraded_temp_err)
            .fold(0.0, f64::max)
    }
}

fn count_retries(events: &[HealthEvent]) -> u32 {
    events
        .iter()
        .filter(|e| matches!(e, HealthEvent::RetriedWindow { .. }))
        .count() as u32
}

/// Runs the campaign over `n_dies` fixed-seed dies.
///
/// # Panics
///
/// Panics if a *healthy* sensor fails to calibrate or convert (a bug —
/// fault handling must never make the healthy path fragile).
#[must_use]
pub fn run_campaign(n_dies: usize, seed: u64) -> CampaignResult {
    run_campaign_metered(n_dies, seed).0
}

/// [`run_campaign`] plus the merged observability [`Snapshot`] of every
/// worker's pipeline metrics — counters, the energy histogram, per-stage
/// span timings, and the MC driver's worker gauges (`mc.workers`,
/// `mc.worker_throughput_dies_per_s`, `mc.busy_seconds_total`, `mc.dies`).
///
/// The campaign result is bit-identical to [`run_campaign`]; the counter
/// and histogram subset of the snapshot is deterministic under a fixed
/// seed (merge order cannot matter: counters and histogram bins add), the
/// span histograms and worker gauges are wall-clock/scheduling dependent.
///
/// # Panics
///
/// See [`run_campaign`].
#[must_use]
pub fn run_campaign_metered(n_dies: usize, seed: u64) -> (CampaignResult, Snapshot) {
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let n_cells = SEVERITIES.len() * catalog(1.0).len();
    // The healthy reference of every die runs through the shared batched
    // schedule: calibrate at boot, one conversion at the campaign's read
    // temperature. The hardened prototype (TMR bands and all) is built once
    // and cloned per worker instead of per die, as is the metrics-enabled
    // pipeline scratch the worker's conversions record into.
    let plan = BatchPlan::new(tech.clone(), hardened_spec())
        .expect("sensor")
        .read_at(&[READ_TEMP]);

    // Per die: was the healthy path flagged, plus one outcome per cell.
    let (per_die, reports) = run_parallel_metered(
        &McConfig::new(n_dies, seed),
        || (plan.sensor(), Scratch::with_metrics()),
        |(sensor, scratch), i, rng| {
            let die = model.sample_die_with_id(rng, i);
            let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
            sensor.clear_faults();
            let conv = plan
                .convert_with_scratch(sensor, &die, rng, scratch)
                .expect("healthy calibration + conversion");
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(READ_TEMP));
            let (outcome, baseline) = (conv.calibration, &conv.readings[0]);
            let healthy_flagged = outcome.health.flagged() || baseline.health.flagged();
            let base_energy = baseline.energy_total().0;

            let mut outcomes = Vec::with_capacity(n_cells);
            for severity in SEVERITIES {
                for entry in catalog(severity) {
                    let mut faulty = sensor.clone();
                    faulty.inject_faults(entry.plan.clone());
                    let mut out = CellOutcome {
                        detected: false,
                        errored: false,
                        temp_err: 0.0,
                        vt_err_mv: 0.0,
                        degraded_temp_err: None,
                        retries: 0,
                        energy_rel: 0.0,
                        scrub_recovered: None,
                    };
                    match run_conversion_with(&faulty, &inputs, rng, scratch) {
                        Ok(r) => {
                            out.detected = r.health.flagged();
                            out.temp_err = r.temperature.0 - READ_TEMP;
                            out.vt_err_mv = (r.d_vtn - baseline.d_vtn)
                                .millivolts()
                                .abs()
                                .max((r.d_vtp - baseline.d_vtp).millivolts().abs());
                            if r.health
                                .any(|e| matches!(e, HealthEvent::DegradedTemperatureOnly))
                            {
                                out.degraded_temp_err = Some(out.temp_err.abs());
                            }
                            out.retries = count_retries(r.health.events());
                            out.energy_rel = r.energy_total().0 / base_energy;
                        }
                        Err(e) => {
                            out.detected = true;
                            out.errored = true;
                            // A parity trip must be recoverable in place: scrub,
                            // then convert again on the same die.
                            if matches!(e, SensorError::CalibrationCorrupted { .. }) {
                                let scrubbed =
                                    faulty.parity_scrub(&boot, rng).ok().flatten().is_some();
                                let recovered = scrubbed
                                    && matches!(
                                        run_conversion_with(&faulty, &inputs, rng, scratch),
                                        Ok(r2) if (r2.temperature.0 - READ_TEMP).abs() < 3.0
                                    );
                                out.scrub_recovered = Some(recovered);
                            }
                        }
                    }
                    outcomes.push(out);
                }
            }
            (healthy_flagged, outcomes)
        },
    );

    // Aggregate cell-major.
    let mut cells = Vec::with_capacity(n_cells);
    let mut cell_index = 0usize;
    for severity in SEVERITIES {
        for entry in catalog(severity) {
            let mut stats = CellStats {
                id: entry.id,
                severity,
                catastrophic: entry.catastrophic,
                junction_comparable: entry.junction_comparable,
                dies: per_die.len(),
                detected: 0,
                errored: 0,
                silent: 0,
                sdc: 0,
                worst_silent_temp_err: 0.0,
                worst_silent_vt_err_mv: 0.0,
                worst_degraded_temp_err: 0.0,
                mean_retries: 0.0,
                mean_energy_rel: 0.0,
            };
            let (mut retries, mut energy_sum, mut energy_n) = (0u64, 0.0f64, 0usize);
            for (_, outcomes) in &per_die {
                let o = &outcomes[cell_index];
                if o.detected {
                    stats.detected += 1;
                }
                if o.errored {
                    stats.errored += 1;
                } else {
                    energy_sum += o.energy_rel;
                    energy_n += 1;
                    if !o.detected {
                        stats.silent += 1;
                        stats.worst_silent_temp_err =
                            stats.worst_silent_temp_err.max(o.temp_err.abs());
                        stats.worst_silent_vt_err_mv =
                            stats.worst_silent_vt_err_mv.max(o.vt_err_mv);
                        if entry.junction_comparable
                            && (o.temp_err.abs() > SDC_TEMP_LIMIT || o.vt_err_mv > SDC_VT_LIMIT_MV)
                        {
                            stats.sdc += 1;
                        }
                    }
                }
                if let Some(d) = o.degraded_temp_err {
                    stats.worst_degraded_temp_err = stats.worst_degraded_temp_err.max(d);
                }
                retries += u64::from(o.retries);
            }
            stats.mean_retries = retries as f64 / per_die.len().max(1) as f64;
            stats.mean_energy_rel = if energy_n == 0 {
                0.0
            } else {
                energy_sum / energy_n as f64
            };
            cells.push(stats);
            cell_index += 1;
        }
    }

    let healthy_flagged = per_die.iter().filter(|(flagged, _)| *flagged).count();
    let (mut attempts, mut recovered) = (0usize, 0usize);
    for (_, outcomes) in &per_die {
        for o in outcomes {
            if let Some(ok) = o.scrub_recovered {
                attempts += 1;
                if ok {
                    recovered += 1;
                }
            }
        }
    }

    // Fold every worker's pipeline metrics into one registry (counters and
    // histogram bins add, so the merge order cannot matter), then attach
    // the driver-level gauges the pipeline cannot see.
    let mut metrics = PipelineMetrics::new();
    let n_workers = reports.len();
    let mut busy_total = 0.0f64;
    let mut dies_total = 0u64;
    for mut report in reports {
        if let Some(worker) = report.ctx.1.take_metrics() {
            metrics.merge(&worker);
        }
        let busy = report.busy.as_secs_f64();
        if busy > 0.0 {
            let throughput = metrics
                .registry_mut()
                .gauge("mc.worker_throughput_dies_per_s");
            metrics
                .registry_mut()
                .set_max(throughput, report.dies as f64 / busy);
        }
        busy_total += busy;
        dies_total += report.dies;
    }
    let reg = metrics.registry_mut();
    let workers = reg.gauge("mc.workers");
    reg.set(workers, n_workers as f64);
    let busy = reg.gauge("mc.busy_seconds_total");
    reg.set(busy, busy_total);
    let dies = reg.counter("mc.dies");
    reg.add(dies, dies_total);
    let snapshot = metrics.snapshot();

    (
        CampaignResult {
            n_dies: per_die.len(),
            seed,
            healthy_flagged,
            cells,
            seu_scrub_attempts: attempts,
            seu_scrub_recovered: recovered,
        },
        snapshot,
    )
}

/// Runs the campaign and renders the report.
///
/// # Panics
///
/// See [`run_campaign`].
#[must_use]
pub fn run() -> String {
    let n = population_size(100);
    render_report(&run_campaign(n, R1_SEED))
}

/// Renders the human-readable campaign report (the body of [`run`], split
/// out so callers holding a [`CampaignResult`] — e.g. the metered binary —
/// can render without re-running).
#[must_use]
pub fn render_report(result: &CampaignResult) -> String {
    let mut table = Table::new(vec![
        "fault",
        "sev",
        "detect [%]",
        "refused [%]",
        "silent",
        "SDC",
        "worst silent T err [°C]",
        "degraded T err [°C]",
        "retries/die",
        "energy ×",
    ]);
    for c in &result.cells {
        table.push(vec![
            c.id.to_string(),
            f(c.severity, 2),
            f(100.0 * c.detection_rate(), 1),
            f(100.0 * c.errored as f64 / c.dies.max(1) as f64, 1),
            format!("{}", c.silent),
            format!("{}", c.sdc),
            f(c.worst_silent_temp_err, 2),
            f(c.worst_degraded_temp_err, 2),
            f(c.mean_retries, 2),
            f(c.mean_energy_rel, 2),
        ]);
    }

    format!(
        "R1: fault-injection campaign ({n} MC dies, seed {seed:#06x}, TMR hardening, read at {READ_TEMP} °C)\n\n{table}\n\
         catastrophic detection rate: {det:.2} % (floor 99 %)\n\
         silent data corruption (> {SDC_TEMP_LIMIT} °C or > {SDC_VT_LIMIT_MV} mV, un-flagged): {sdc} (must be 0)\n\
         healthy population falsely flagged: {flagged} (must be 0)\n\
         worst degraded temperature-only error: {deg:.2} °C (budget ±3 °C)\n\
         calibration-SEU parity scrubs: {rec}/{att} recovered\n",
        n = result.n_dies,
        seed = result.seed,
        table = table.render(),
        det = 100.0 * result.catastrophic_detection_rate(),
        sdc = result.total_sdc(),
        flagged = result.healthy_flagged,
        deg = result.worst_degraded_temp_err(),
        rec = result.seu_scrub_recovered,
        att = result.seu_scrub_attempts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_report_renders() {
        let r = run_campaign(4, R1_SEED);
        assert_eq!(r.n_dies, 4);
        assert_eq!(
            r.cells.len(),
            SEVERITIES.len() * ptsim_faults::catalog(1.0).len()
        );
        assert!(r.catastrophic_detection_rate() > 0.0);
        // Rendering goes through the same path.
        std::env::set_var("PTSIM_BENCH_DIES", "4");
        let report = run();
        assert!(report.contains("R1"));
        assert!(report.contains("dead-tsro"));
    }
}
