//! **X2 — Extension: lifetime drift tracking (BTI/HCI aging).**
//!
//! The abstract positions the sensor as a monitor for "thermal stress and
//! Vt scatter" in stacked dies; the same capability covers *temporal* Vt
//! drift. A Monte-Carlo population ages for ten years under a hot logic
//! stress profile; every die's tracked drift is graded against the injected
//! aging truth.

use crate::experiments::population_size;
use crate::table::{f, fs, Table};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::aging::{AgingModel, StressCondition, TEN_YEARS};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Seconds};
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{run_parallel, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::OnlineStats;

const CHECKPOINT_YEARS: [f64; 5] = [0.5, 1.0, 2.0, 5.0, 10.0];

/// Runs the lifetime-tracking experiment and renders the report.
///
/// # Panics
///
/// Panics if any die fails to calibrate/convert (a bug).
#[must_use]
pub fn run() -> String {
    let n = population_size(100);
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    let spec = SensorSpec::default_65nm();
    let nbti = AgingModel::nbti_65nm();
    let pbti = AgingModel::pbti_65nm();
    let stress = StressCondition {
        temp: Celsius(85.0),
        ..StressCondition::nominal_logic()
    };

    // Per checkpoint: (true ΔVtn drift, tracked error n, tracked error p, T err)
    let per_die = run_parallel(&McConfig::new(n, 0x0a9e), |i, rng| {
        let die = model.sample_die_with_id(rng, i);
        let mut sensor = PtSensor::new(tech.clone(), spec).expect("sensor");
        sensor
            .calibrate(
                &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
                rng,
            )
            .expect("calibration");
        let cal = *sensor.calibration().expect("calibrated");
        let mut rows = Vec::with_capacity(CHECKPOINT_YEARS.len());
        for years in CHECKPOINT_YEARS {
            let age = Seconds(TEN_YEARS.0 * years / 10.0);
            let aged_n = pbti.delta_vt(&stress, age);
            let aged_p = nbti.delta_vt(&stress, age);
            let op = Celsius(85.0);
            let inputs = SensorInputs::new(&die, DieSite::CENTER, op).with_stress(aged_n, aged_p);
            let r = sensor.read(&inputs, rng).expect("conversion");
            let drift_n = (r.d_vtn - cal.d_vtn()).millivolts();
            let drift_p = (r.d_vtp - cal.d_vtp()).millivolts();
            rows.push((
                aged_n.millivolts(),
                drift_n - aged_n.millivolts(),
                drift_p - aged_p.millivolts(),
                r.temperature.0 - op.0,
            ));
        }
        rows
    });

    let mut table = Table::new(vec![
        "age [years]",
        "true ΔVtn drift [mV]",
        "track err σ [mV]",
        "track err worst [mV]",
        "ΔVtp worst [mV]",
        "T err worst [°C]",
    ]);
    for (k, years) in CHECKPOINT_YEARS.iter().enumerate() {
        let mut truth = OnlineStats::new();
        let mut en = OnlineStats::new();
        let mut ep = OnlineStats::new();
        let mut et = OnlineStats::new();
        for rows in &per_die {
            truth.push(rows[k].0);
            en.push(rows[k].1);
            ep.push(rows[k].2);
            et.push(rows[k].3);
        }
        table.push(vec![
            f(*years, 1),
            fs(truth.mean(), 2),
            f(en.std_dev(), 3),
            f(en.max_abs(), 3),
            f(ep.max_abs(), 3),
            f(et.max_abs(), 3),
        ]);
    }

    format!(
        "X2: lifetime drift tracking ({n} MC dies, 85 °C logic stress, read at 85 °C)\n\n{}\n\
         expectation: tracked drift follows the t^n aging law within the paper's\n\
         ±1.6 mV band across the full ten-year life, with no temperature penalty\n",
        table.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_covers_lifetime() {
        std::env::set_var("PTSIM_BENCH_DIES", "6");
        let r = super::run();
        assert!(r.contains("X2"));
        assert!(r.contains("10.0"));
    }
}
