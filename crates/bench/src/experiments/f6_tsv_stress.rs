//! **F6 — TSV stress-induced threshold shift vs. distance, as seen by the
//! sensor.**
//!
//! Sweeps the sensor's distance from a standard 10 µm TSV and compares the
//! tracked threshold drift against the Lamé/piezoresistive ground truth,
//! marking the conventional 1 % keep-out-zone radius.

use crate::table::{f, fs, Table};
use ptsim_core::sensor::{PtSensor, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Micron};
use ptsim_mc::die::DieSite;
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::OnlineStats;
use ptsim_tsv::geometry::TsvGeometry;
use ptsim_tsv::stress::StressModel;

const DISTANCES: [f64; 9] = [6.0, 7.0, 8.0, 10.0, 12.0, 15.0, 20.0, 35.0, 60.0];

/// Runs the survey and renders the report.
///
/// # Panics
///
/// Panics if sensor construction/calibration fails (a bug).
#[must_use]
pub fn run() -> String {
    let tech = Technology::n65();
    let stress = StressModel::default_65nm();
    let geom = TsvGeometry::standard_10um();
    let temp = Celsius(60.0);
    let koz = stress.keep_out_radius(&geom, 0.01, Celsius(25.0));

    let model = VariationModel::new(&tech);
    let mut rng = ptsim_rng::Pcg64::seed_from_u64(0xf6);
    let die = model.sample_die(&mut rng);
    let mut sensor = PtSensor::new(tech, SensorSpec::default_65nm()).expect("sensor");
    sensor
        .calibrate(
            &SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0)),
            &mut rng,
        )
        .expect("calibration");
    let clean = sensor
        .read(&SensorInputs::new(&die, DieSite::CENTER, temp), &mut rng)
        .expect("clean read");

    let mut table = Table::new(vec![
        "dist [µm]",
        "in KOZ?",
        "true ΔVtn [mV]",
        "tracked [mV]",
        "track err [mV]",
        "true ΔVtp [mV]",
        "T err [°C]",
    ]);
    let mut track_err = OnlineStats::new();
    for d in DISTANCES {
        let dist = Micron(d);
        let s_vtn = stress.delta_vtn(&geom, dist, temp);
        let s_vtp = stress.delta_vtp(&geom, dist, temp);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, temp).with_stress(s_vtn, s_vtp);
        let r = sensor.read(&inputs, &mut rng).expect("stressed read");
        let tracked = (r.d_vtn - clean.d_vtn).millivolts();
        let err = tracked - s_vtn.millivolts();
        track_err.push(err);
        table.push(vec![
            f(d, 1),
            if d <= koz.0 { "yes" } else { "" }.to_owned(),
            fs(s_vtn.millivolts(), 3),
            fs(tracked, 3),
            fs(err, 3),
            fs(s_vtp.millivolts(), 3),
            fs(r.temperature.0 - temp.0, 3),
        ]);
    }

    format!(
        "F6: sensed TSV stress vs distance (10 µm via, {:.0} MPa wall stress, 60 °C)\n\
         1% mobility keep-out radius: {:.1} µm\n\n{}\n\
         tracking error: σ {:.3} mV, worst {:.3} mV (paper Vtn sensitivity: ±1.6 mV)\n",
        stress.sigma_edge(Celsius(25.0)).0 / 1e6,
        koz.0,
        table.render(),
        track_err.std_dev(),
        track_err.max_abs(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        let r = super::run();
        assert!(r.contains("F6"));
        assert!(r.contains("KOZ"));
        assert!(r.contains("tracking error"));
    }
}
