//! **T2 — Comparison with baselines.**
//!
//! The comparison table every sensor paper closes with: worst-case
//! temperature error across process and temperature, conversion energy,
//! whether external test equipment is needed, process readout capability,
//! and a transistor-count area proxy.

use crate::experiments::population_size;
use crate::table::{f, Table};
use ptsim_baselines::adapter::PtSensorThermometer;
use ptsim_baselines::bjt::BjtSensor;
use ptsim_baselines::pvt2013::Pvt2013Sensor;
use ptsim_baselines::ro_thermometer::{RoCalibration, RoThermometer};
use ptsim_baselines::traits::Thermometer;
use ptsim_core::sensor::{SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Volt};
use ptsim_mc::driver::{run_parallel, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::OnlineStats;
use ptsim_mc::DieSite;

const TEMPS: [f64; 5] = [-20.0, 10.0, 40.0, 70.0, 100.0];

struct Row {
    name: &'static str,
    err: OnlineStats,
    energy: OnlineStats,
    external: bool,
    devices: usize,
    process_readout: bool,
}

fn grade<F>(build: F, n_dies: usize, seed: u64, external: bool, process_readout: bool) -> Row
where
    F: Fn() -> Box<dyn Thermometer> + Sync,
{
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    // Name/area metadata is per-design, not per-die; probe one instance.
    let proto = build();
    let name = proto.name();
    let devices = proto.device_count();

    // Per die: prepare, then the whole schedule through the shared batched
    // conversion path (sequentially per die, so the RNG stream matches the
    // per-reading loop this replaces bit for bit).
    let per_die = run_parallel(&McConfig::new(n_dies, seed), |i, rng| {
        let die = model.sample_die_with_id(rng, i);
        let mut th = build();
        let boot = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        th.prepare(&boot, rng).expect("prepare");
        let probes: Vec<SensorInputs<'_>> = TEMPS
            .iter()
            .map(|&t| SensorInputs::new(&die, DieSite::CENTER, Celsius(t)))
            .collect();
        th.convert_batch(&probes, rng)
            .expect("read")
            .iter()
            .zip(&TEMPS)
            .map(|(r, &t)| (r.temperature.0 - t, r.energy_total().picojoules()))
            .collect::<Vec<_>>()
    });

    let mut err = OnlineStats::new();
    let mut energy = OnlineStats::new();
    for die in &per_die {
        for &(e, pj) in die {
            err.push(e);
            energy.push(pj);
        }
    }
    Row {
        name,
        err,
        energy,
        external,
        devices,
        process_readout,
    }
}

/// Runs the comparison and renders the table.
///
/// # Panics
///
/// Panics if any sensor fails to prepare/convert (a bug).
#[must_use]
pub fn run() -> String {
    let n = population_size(60);
    let tech = Technology::n65();

    let mut rows = Vec::new();
    rows.push(grade(
        || {
            Box::new(RoThermometer::new(tech.clone(), RoCalibration::None).expect("baseline"))
                as Box<dyn Thermometer>
        },
        n,
        1,
        false,
        false,
    ));
    rows.push(grade(
        || {
            Box::new(RoThermometer::new(tech.clone(), RoCalibration::OnePoint).expect("baseline"))
                as Box<dyn Thermometer>
        },
        n,
        2,
        false,
        false,
    ));
    rows.push(grade(
        || Box::new(BjtSensor::typical()) as Box<dyn Thermometer>,
        n,
        3,
        true,
        false,
    ));
    rows.push(grade(
        || {
            Box::new(Pvt2013Sensor::new(tech.clone(), Volt(0.5)).expect("pvt2013"))
                as Box<dyn Thermometer>
        },
        n,
        4,
        false,
        true,
    ));
    rows.push(grade(
        || {
            Box::new(
                PtSensorThermometer::new(tech.clone(), SensorSpec::default_65nm())
                    .expect("this work"),
            ) as Box<dyn Thermometer>
        },
        n,
        5,
        false,
        true,
    ));

    let mut table = Table::new(vec![
        "sensor",
        "worst |err| [°C]",
        "σ err [°C]",
        "mean E/conv [pJ]",
        "ext. test?",
        "P readout?",
        "~devices",
    ]);
    for r in &rows {
        table.push(vec![
            r.name.to_owned(),
            f(r.err.max_abs(), 2),
            f(r.err.std_dev(), 2),
            f(r.energy.mean(), 1),
            if r.external { "yes" } else { "no" }.to_owned(),
            if r.process_readout { "yes" } else { "no" }.to_owned(),
            r.devices.to_string(),
        ]);
    }

    format!(
        "T2: comparison across {n} MC dies × {:?} °C\n\
         (BJT device count under-represents its analog area)\n\n{}\n\
         expectation: this work is the only row with no external test, \
         process readout, sub-nJ energy, and ≤1.5 °C worst error\n",
        TEMPS,
        table.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_sensors() {
        std::env::set_var("PTSIM_BENCH_DIES", "6");
        let r = super::run();
        for name in ["uncalibrated RO", "1-point RO", "BJT", "2013", "this work"] {
            assert!(r.contains(name), "missing {name} in report");
        }
    }
}
