//! **F4 — Vtn/Vtp extraction-error histograms.**
//!
//! The abstract's ±1.6 mV / ±0.8 mV sensitivity claim, reproduced as
//! Monte-Carlo histograms of `(extracted − true)` threshold shift at the
//! oscillator's own site, both at the calibration point (25 °C) and while
//! tracking at 75 °C.

use crate::experiments::population_size;
use crate::table::f;
use ptsim_core::bank::RoClass;
use ptsim_core::pipeline::BatchPlan;
use ptsim_core::sensor::SensorSpec;
use ptsim_device::process::Technology;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{run_parallel_with, McConfig};
use ptsim_mc::model::VariationModel;
use ptsim_mc::stats::{Histogram, OnlineStats};

/// Runs the population extraction experiment and renders the report.
///
/// # Panics
///
/// Panics if any die fails to calibrate/convert (indicates a model bug).
#[must_use]
pub fn run() -> String {
    let n = population_size(1000);
    let tech = Technology::n65();
    let model = VariationModel::new(&tech);
    // Calibrate at the boot point, then track at 75 °C — one batched
    // schedule, with per-die sensor setup amortized into the plan prototype.
    let plan = BatchPlan::new(tech.clone(), SensorSpec::default_65nm())
        .expect("sensor")
        .read_at(&[75.0]);

    let per_die = run_parallel_with(
        &McConfig::new(n, 0xf4),
        || plan.sensor(),
        |sensor, i, rng| {
            let die = model.sample_die_with_id(rng, i);
            let conv = plan
                .convert_with(sensor, &die, rng)
                .expect("self-calibration + conversion");
            let cal = conv.calibration.calibration;
            let site_n = sensor.bank().site_of(RoClass::PsroN, DieSite::CENTER);
            let site_p = sensor.bank().site_of(RoClass::PsroP, DieSite::CENTER);
            let cal_n = (cal.d_vtn() - die.d_vtn_at(site_n)).millivolts();
            let cal_p = (cal.d_vtp() - die.d_vtp_at(site_p)).millivolts();

            // Tracking at 75 °C.
            let r = &conv.readings[0];
            let trk_n = (r.d_vtn - die.d_vtn_at(site_n)).millivolts();
            let trk_p = (r.d_vtp - die.d_vtp_at(site_p)).millivolts();
            (cal_n, cal_p, trk_n, trk_p)
        },
    );

    let mut out = format!("F4: threshold extraction error histograms ({n} MC dies)\n\n");
    let labels = [
        "ΔVtn at 25 °C (calibration)",
        "ΔVtp at 25 °C (calibration)",
        "ΔVtn at 75 °C (tracking)",
        "ΔVtp at 75 °C (tracking)",
    ];
    let paper_band = [1.6, 0.8, 1.6, 0.8];
    for (k, label) in labels.iter().enumerate() {
        let vals: Vec<f64> = per_die
            .iter()
            .map(|d| match k {
                0 => d.0,
                1 => d.1,
                2 => d.2,
                _ => d.3,
            })
            .collect();
        let stats: OnlineStats = vals.iter().copied().collect();
        let span = (3.0 * stats.std_dev()).max(0.5);
        let mut hist = Histogram::new(-span, span, 15);
        for v in &vals {
            hist.push(*v);
        }
        let inside =
            vals.iter().filter(|v| v.abs() <= paper_band[k]).count() as f64 / vals.len() as f64;
        out.push_str(&format!(
            "{label} [mV]: mean {} σ {} worst {} — {:.1}% inside paper's ±{} mV band\n{}\n",
            f(stats.mean(), 3),
            f(stats.std_dev(), 3),
            f(stats.max_abs(), 3),
            100.0 * inside,
            paper_band[k],
            hist.render(36),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        std::env::set_var("PTSIM_BENCH_DIES", "30");
        let r = super::run();
        assert!(r.contains("F4"));
        assert!(r.contains("ΔVtp at 75"));
    }
}
