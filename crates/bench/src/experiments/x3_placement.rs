//! **X3 — Extension: sensor placement and whole-tier field reconstruction.**
//!
//! How many sensors does a tier need, and where? Greedy placement over a
//! training set of workload thermal fields versus a naive uniform grid,
//! graded by worst-case field-reconstruction error on held-out workloads.

use crate::table::{f, Table};
use ptsim_core::fieldest::{place_sensors_greedy, refine_placement_swaps, FieldEstimator};
use ptsim_device::units::{Celsius, Watt};
use ptsim_mc::die::DieSite;
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, SolveOptions};
use ptsim_thermal::stack::{StackConfig, ThermalStack};

fn workload(cx: f64, cy: f64, w: f64) -> ThermalStack {
    let mut s = ThermalStack::new(StackConfig::single_die_5mm()).expect("stack");
    let mut p = PowerMap::zero(16, 16).expect("map");
    p.add_hotspot(cx, cy, 0.18, Watt(w));
    p.add_block(0.6, 0.6, 0.95, 0.95, Watt(0.5));
    s.set_power(0, p).expect("power");
    solve_steady_state(&mut s, &SolveOptions::default()).expect("solve");
    s
}

fn recon_error(stack: &ThermalStack, sites: &[DieSite]) -> (f64, f64) {
    let readings: Vec<Celsius> = sites
        .iter()
        .map(|s| stack.temperature_at(0, s.x, s.y).expect("tier 0"))
        .collect();
    FieldEstimator::new(sites.to_vec(), readings)
        .expect("non-empty")
        .error_against(stack, 0)
        .expect("tier 0")
}

/// Runs the placement study and renders the report.
///
/// # Panics
///
/// Panics if the thermal solves fail (a bug).
#[must_use]
pub fn run() -> String {
    // Training workloads: hotspots at three typical sites.
    let training = [
        workload(0.25, 0.25, 2.0),
        workload(0.25, 0.75, 2.0),
        workload(0.5, 0.5, 2.5),
    ];
    let train_refs: Vec<&ThermalStack> = training.iter().collect();
    // Held-out workloads.
    let held_out = [workload(0.35, 0.4, 2.2), workload(0.7, 0.3, 1.8)];

    // Candidate sites: 5×5 grid.
    let candidates: Vec<DieSite> = (0..5)
        .flat_map(|i| (0..5).map(move |j| DieSite::new(0.1 + 0.2 * i as f64, 0.1 + 0.2 * j as f64)))
        .collect();

    let mut table = Table::new(vec![
        "sensors",
        "placement",
        "train worst [°C]",
        "held-out worst [°C]",
        "held-out rms [°C]",
    ]);
    for k in [2usize, 4, 6] {
        // Naive baseline: an evenly-spread fixed pattern, snapped to the
        // candidate grid (indices into the 5×5 row-major candidate list:
        // index = 5·i + j for site (0.1+0.2i, 0.1+0.2j)).
        let naive_idx: Vec<usize> = match k {
            2 => vec![12, 22], // (0.5,0.5), (0.9,0.5)… keep symmetric: use (0.3,0.5),(0.7,0.5)
            4 => vec![6, 16, 8, 18], // (0.3,0.3),(0.7,0.3),(0.3,0.7),(0.7,0.7)
            _ => vec![1, 11, 21, 3, 13, 23], // two rows of three
        };
        let naive_idx = if k == 2 { vec![7, 17] } else { naive_idx };
        let naive: Vec<DieSite> = naive_idx.iter().map(|&i| candidates[i]).collect();

        // Multi-start local search: refine from both the greedy seed and the
        // uniform seed, keep the better — a standard guard against a poor
        // local optimum.
        let greedy_seed = place_sensors_greedy(&train_refs, 0, &candidates, k).expect("placement");
        let worst_of = |idx: &[usize]| {
            let sites: Vec<DieSite> = idx.iter().map(|&i| candidates[i]).collect();
            train_refs
                .iter()
                .map(|s| recon_error(s, &sites).0)
                .fold(0.0f64, f64::max)
        };
        let mut best_idx =
            refine_placement_swaps(&train_refs, 0, &candidates, &greedy_seed, 8).expect("refine");
        let from_uniform =
            refine_placement_swaps(&train_refs, 0, &candidates, &naive_idx, 8).expect("refine");
        if worst_of(&from_uniform) < worst_of(&best_idx) {
            best_idx = from_uniform;
        }
        let optimized: Vec<DieSite> = best_idx.iter().map(|&i| candidates[i]).collect();

        for (label, sites) in [("optimized", &optimized), ("uniform", &naive)] {
            let train_worst = train_refs
                .iter()
                .map(|s| recon_error(s, sites).0)
                .fold(0.0f64, f64::max);
            let (mut ho_worst, mut ho_rms_acc) = (0.0f64, 0.0);
            for s in &held_out {
                let (w, rms) = recon_error(s, sites);
                ho_worst = ho_worst.max(w);
                ho_rms_acc += rms;
            }
            table.push(vec![
                k.to_string(),
                label.to_owned(),
                f(train_worst, 2),
                f(ho_worst, 2),
                f(ho_rms_acc / held_out.len() as f64, 2),
            ]);
        }
    }

    format!(
        "X3: sensor placement & field reconstruction (single tier, 16×16 truth grid)\n\n{}\n\
         expectation: optimized placement matches or beats the uniform pattern on\n\
         the training workloads, and errors fall as sensors are added\n",
        table.render(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_well_formed() {
        let r = super::run();
        assert!(r.contains("X3"));
        assert!(r.contains("optimized"));
        assert!(r.contains("uniform"));
    }
}
