//! TSV electrical parasitics (closed-form R and C).

use crate::geometry::TsvGeometry;
use ptsim_device::units::{Farad, Ohm};

/// Resistivity of electroplated copper, Ω·m (slightly above bulk).
pub const RHO_COPPER: f64 = 2.2e-8;

/// Vacuum permittivity, F/m.
pub const EPSILON_0: f64 = 8.854e-12;

/// Relative permittivity of the SiO₂ liner.
pub const EPSILON_R_OXIDE: f64 = 3.9;

/// DC resistance of the copper body: `R = ρ·h / (π·r²)`.
///
/// ```
/// use ptsim_tsv::electrical::resistance;
/// use ptsim_tsv::geometry::TsvGeometry;
/// let r = resistance(&TsvGeometry::standard_10um());
/// assert!(r.0 > 1e-3 && r.0 < 1.0, "tens of mΩ expected, got {r}");
/// ```
#[must_use]
pub fn resistance(geom: &TsvGeometry) -> Ohm {
    Ohm(RHO_COPPER * geom.height_m() / geom.copper_area_m2())
}

/// Oxide (liner) capacitance of the coaxial MOS structure:
/// `C = 2π·ε·h / ln(r_outer / r)`.
///
/// This is the dominant parasitic a TSV presents to circuits and the
/// quantity the 2012 GHz-characterization companion paper reports
/// (tens of femtofarads for a mid via).
#[must_use]
pub fn liner_capacitance(geom: &TsvGeometry) -> Farad {
    let r_in = geom.radius.0;
    let r_out = geom.outer_radius().0;
    Farad(
        2.0 * std::f64::consts::PI * EPSILON_R_OXIDE * EPSILON_0 * geom.height_m()
            / (r_out / r_in).ln(),
    )
}

/// RC time constant of one via (a first-order bandwidth proxy).
#[must_use]
pub fn rc_time_constant(geom: &TsvGeometry) -> f64 {
    resistance(geom).0 * liner_capacitance(geom).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_milliohm_scale() {
        let r = resistance(&TsvGeometry::standard_10um());
        // ρh/A = 2.2e-8 · 1e-4 / (π·25e-12) ≈ 28 mΩ.
        assert!((r.0 - 0.028).abs() < 0.005, "got {r}");
    }

    #[test]
    fn capacitance_tens_of_femtofarads() {
        let c = liner_capacitance(&TsvGeometry::standard_10um());
        assert!(c.0 > 50e-15 && c.0 < 500e-15, "got {c}");
    }

    #[test]
    fn smaller_via_higher_resistance_lower_cap() {
        let big = TsvGeometry::standard_10um();
        let small = TsvGeometry::fine_5um();
        assert!(resistance(&small).0 > resistance(&big).0 * 0.9);
        assert!(liner_capacitance(&small).0 < liner_capacitance(&big).0);
    }

    #[test]
    fn rc_far_below_nanosecond() {
        // TSVs are not the bandwidth bottleneck below tens of GHz.
        assert!(rc_time_constant(&TsvGeometry::standard_10um()) < 1e-13);
    }

    #[test]
    fn thinner_liner_more_capacitance() {
        let mut thin = TsvGeometry::standard_10um();
        thin.liner_thickness = ptsim_device::units::Micron(0.2);
        assert!(liner_capacitance(&thin).0 > liner_capacitance(&TsvGeometry::standard_10um()).0);
    }
}
