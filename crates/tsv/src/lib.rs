//! # ptsim-tsv
//!
//! Through-silicon-via models for the SOCC 2012 PT-sensor reproduction:
//! via [`geometry`], closed-form [`electrical`] parasitics (R, C),
//! [`thermal_via`] conductance, the thermo-mechanical [`stress`] field with
//! its piezoresistive Vt/mobility shifts and keep-out zone, and a full 3D
//! [`topology::StackTopology`] that places TSV arrays at tier interfaces and
//! exposes the combined thermal + stress environment any die site sees.
//!
//! The TSV-induced "thermal stress and Vt scatter" is exactly the stimulus
//! the paper's sensor exists to observe; this crate generates it.
//!
//! ## Example
//!
//! ```
//! use ptsim_device::units::{Celsius, Micron};
//! use ptsim_tsv::stress::StressModel;
//! use ptsim_tsv::geometry::TsvGeometry;
//!
//! let stress = StressModel::default_65nm();
//! let geom = TsvGeometry::standard_10um();
//! let koz = stress.keep_out_radius(&geom, 0.01, Celsius(25.0));
//! assert!(koz.0 > geom.radius.0, "1% KOZ extends beyond the via wall");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod electrical;
pub mod error;
pub mod geometry;
pub mod stress;
pub mod thermal_via;
pub mod topology;

pub use error::TsvError;
pub use geometry::TsvGeometry;
pub use stress::StressModel;
pub use topology::{StackTopology, TsvArray};
