//! TSV thermo-mechanical stress and its effect on nearby devices.
//!
//! Copper's CTE exceeds silicon's by ~14 ppm/K; after the post-plating
//! anneal the via is frozen in compression and imposes a radially-decaying
//! stress field on the surrounding silicon (Lamé thick-wall solution,
//! `σ(r) = σ_edge · (R/r)²`). Through the piezoresistive effect this shifts
//! carrier mobility and, more weakly, threshold voltage — the "Vt scatter"
//! near TSVs that motivates the SOCC 2012 sensor. The *keep-out zone* (KOZ)
//! is the radius inside which the mobility shift exceeds a design threshold.

use crate::geometry::TsvGeometry;
use ptsim_device::units::{Celsius, Micron, Pascal, Volt};

/// Stress model parameters for one technology/process flavour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressModel {
    /// Radial stress magnitude at the via wall at the reference (25 °C)
    /// operating temperature.
    pub sigma_edge_ref: Pascal,
    /// Anneal temperature at which the via is stress-free.
    pub anneal_temp: Celsius,
    /// Fractional NMOS mobility change per pascal of radial stress
    /// (negative: compression degrades electron mobility along the channel).
    pub piezo_mu_n: f64,
    /// Fractional PMOS mobility change per pascal (positive: compression
    /// helps holes).
    pub piezo_mu_p: f64,
    /// NMOS threshold-magnitude shift per pascal, V/Pa.
    pub dvtn_per_pa: f64,
    /// PMOS threshold-magnitude shift per pascal, V/Pa.
    pub dvtp_per_pa: f64,
}

impl StressModel {
    /// Published 65 nm-class values: ~150 MPa wall stress after a 250 °C
    /// anneal, |π| ≈ 0.3/GPa mobility sensitivity, a few mV of Vt shift per
    /// 100 MPa.
    #[must_use]
    pub fn default_65nm() -> Self {
        StressModel {
            sigma_edge_ref: Pascal(150.0e6),
            anneal_temp: Celsius(250.0),
            piezo_mu_n: -0.30e-9,
            piezo_mu_p: 0.20e-9,
            dvtn_per_pa: 2.0e-11,
            dvtp_per_pa: -1.2e-11,
        }
    }

    /// Wall stress at an operating temperature: stress is frozen in at the
    /// anneal and relaxes linearly toward zero as the die heats back up
    /// toward the anneal temperature.
    #[must_use]
    pub fn sigma_edge(&self, temp: Celsius) -> Pascal {
        let span = self.anneal_temp.0 - 25.0;
        if span <= 0.0 {
            return self.sigma_edge_ref;
        }
        let scale = ((self.anneal_temp.0 - temp.0) / span).max(0.0);
        Pascal(self.sigma_edge_ref.0 * scale)
    }

    /// Radial stress magnitude at distance `r` from the via *centre*
    /// (clamped to the wall value inside the via).
    #[must_use]
    pub fn radial_stress(&self, geom: &TsvGeometry, r: Micron, temp: Celsius) -> Pascal {
        let edge = self.sigma_edge(temp);
        let rr = r.0.max(geom.radius.0);
        Pascal(edge.0 * (geom.radius.0 / rr).powi(2))
    }

    /// NMOS threshold shift at distance `r` (positive = slower device).
    #[must_use]
    pub fn delta_vtn(&self, geom: &TsvGeometry, r: Micron, temp: Celsius) -> Volt {
        Volt(self.dvtn_per_pa * self.radial_stress(geom, r, temp).0)
    }

    /// PMOS threshold shift at distance `r`.
    #[must_use]
    pub fn delta_vtp(&self, geom: &TsvGeometry, r: Micron, temp: Celsius) -> Volt {
        Volt(self.dvtp_per_pa * self.radial_stress(geom, r, temp).0)
    }

    /// Fractional NMOS mobility change at distance `r`.
    #[must_use]
    pub fn mu_shift_n(&self, geom: &TsvGeometry, r: Micron, temp: Celsius) -> f64 {
        self.piezo_mu_n * self.radial_stress(geom, r, temp).0
    }

    /// Fractional PMOS mobility change at distance `r`.
    #[must_use]
    pub fn mu_shift_p(&self, geom: &TsvGeometry, r: Micron, temp: Celsius) -> f64 {
        self.piezo_mu_p * self.radial_stress(geom, r, temp).0
    }

    /// Keep-out radius: distance from the via centre beyond which the worst
    /// polarity's |mobility shift| stays below `threshold` (e.g. 0.01 for
    /// the conventional 1 % KOZ).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive.
    #[must_use]
    pub fn keep_out_radius(&self, geom: &TsvGeometry, threshold: f64, temp: Celsius) -> Micron {
        assert!(threshold > 0.0, "KOZ threshold must be positive");
        let worst = self
            .mu_shift_n(geom, geom.radius, temp)
            .abs()
            .max(self.mu_shift_p(geom, geom.radius, temp).abs());
        if worst <= threshold {
            return geom.radius;
        }
        Micron(geom.radius.0 * (worst / threshold).sqrt())
    }
}

impl Default for StressModel {
    fn default() -> Self {
        StressModel::default_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> StressModel {
        StressModel::default_65nm()
    }

    fn geom() -> TsvGeometry {
        TsvGeometry::standard_10um()
    }

    #[test]
    fn stress_decays_as_inverse_square() {
        let m = model();
        let g = geom();
        let t = Celsius(25.0);
        let s1 = m.radial_stress(&g, Micron(10.0), t).0;
        let s2 = m.radial_stress(&g, Micron(20.0), t).0;
        assert!((s1 / s2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stress_clamped_inside_via() {
        let m = model();
        let g = geom();
        let t = Celsius(25.0);
        assert_eq!(
            m.radial_stress(&g, Micron(1.0), t),
            m.radial_stress(&g, g.radius, t)
        );
    }

    #[test]
    fn wall_stress_matches_reference_at_25c() {
        let m = model();
        assert!((m.sigma_edge(Celsius(25.0)).0 - 150.0e6).abs() < 1.0);
    }

    #[test]
    fn stress_relaxes_toward_anneal_temperature() {
        let m = model();
        let hot = m.sigma_edge(Celsius(100.0)).0;
        let cold = m.sigma_edge(Celsius(0.0)).0;
        assert!(hot < 150.0e6);
        assert!(cold > 150.0e6);
        assert_eq!(m.sigma_edge(Celsius(250.0)).0, 0.0);
        // Never negative above the anneal point.
        assert_eq!(m.sigma_edge(Celsius(300.0)).0, 0.0);
    }

    #[test]
    fn vt_shifts_millivolt_scale_at_wall() {
        let m = model();
        let g = geom();
        let dvtn = m.delta_vtn(&g, g.radius, Celsius(25.0));
        assert!(
            dvtn.millivolts() > 1.0 && dvtn.millivolts() < 10.0,
            "{dvtn}"
        );
        let dvtp = m.delta_vtp(&g, g.radius, Celsius(25.0));
        assert!(dvtp.0 < 0.0);
    }

    #[test]
    fn mobility_shift_a_few_percent_at_wall() {
        let m = model();
        let g = geom();
        let sn = m.mu_shift_n(&g, g.radius, Celsius(25.0));
        assert!(sn < -0.01 && sn > -0.10, "{sn}");
        assert!(m.mu_shift_p(&g, g.radius, Celsius(25.0)) > 0.0);
    }

    #[test]
    fn koz_larger_than_via_and_shrinks_with_looser_threshold() {
        let m = model();
        let g = geom();
        let koz1 = m.keep_out_radius(&g, 0.01, Celsius(25.0));
        let koz5 = m.keep_out_radius(&g, 0.05, Celsius(25.0));
        assert!(koz1.0 > g.radius.0);
        assert!(koz5.0 < koz1.0);
    }

    #[test]
    fn koz_defaults_to_radius_when_threshold_loose() {
        let m = model();
        let g = geom();
        assert_eq!(m.keep_out_radius(&g, 0.9, Celsius(25.0)), g.radius);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn koz_rejects_zero_threshold() {
        let _ = model().keep_out_radius(&geom(), 0.0, Celsius(25.0));
    }
}
