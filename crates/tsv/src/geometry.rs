//! TSV physical geometry.

use crate::error::TsvError;
use ptsim_device::units::Micron;

/// Geometry of one through-silicon via.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvGeometry {
    /// Copper-body radius.
    pub radius: Micron,
    /// Via height (thinned-die thickness it crosses).
    pub height: Micron,
    /// Oxide liner thickness.
    pub liner_thickness: Micron,
}

impl TsvGeometry {
    /// 10 µm-diameter, 100 µm-deep via with a 0.5 µm liner — the mid-via
    /// flavour of the group's companion TSV process papers.
    #[must_use]
    pub fn standard_10um() -> Self {
        TsvGeometry {
            radius: Micron(5.0),
            height: Micron(100.0),
            liner_thickness: Micron(0.5),
        }
    }

    /// 5 µm-diameter fine-pitch via for dense digital interconnect.
    #[must_use]
    pub fn fine_5um() -> Self {
        TsvGeometry {
            radius: Micron(2.5),
            height: Micron(50.0),
            liner_thickness: Micron(0.2),
        }
    }

    /// Validates that all dimensions are positive and the liner is thinner
    /// than the radius.
    ///
    /// # Errors
    ///
    /// Returns [`TsvError::InvalidGeometry`] describing the violation.
    pub fn validate(&self) -> Result<(), TsvError> {
        for (name, v) in [
            ("radius", self.radius.0),
            ("height", self.height.0),
            ("liner_thickness", self.liner_thickness.0),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(TsvError::InvalidGeometry { name, value: v });
            }
        }
        if self.liner_thickness.0 >= self.radius.0 {
            return Err(TsvError::InvalidGeometry {
                name: "liner_thickness (must be < radius)",
                value: self.liner_thickness.0,
            });
        }
        Ok(())
    }

    /// Copper cross-section area, m².
    #[must_use]
    pub fn copper_area_m2(&self) -> f64 {
        let r = self.radius.0 * 1e-6;
        std::f64::consts::PI * r * r
    }

    /// Via height, m.
    #[must_use]
    pub fn height_m(&self) -> f64 {
        self.height.0 * 1e-6
    }

    /// Outer radius including the liner.
    #[must_use]
    pub fn outer_radius(&self) -> Micron {
        Micron(self.radius.0 + self.liner_thickness.0)
    }
}

impl Default for TsvGeometry {
    fn default() -> Self {
        TsvGeometry::standard_10um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometry_validates() {
        assert!(TsvGeometry::standard_10um().validate().is_ok());
        assert!(TsvGeometry::fine_5um().validate().is_ok());
    }

    #[test]
    fn rejects_nonpositive_dimensions() {
        let mut g = TsvGeometry::standard_10um();
        g.radius = Micron(0.0);
        assert!(g.validate().is_err());
        let mut g = TsvGeometry::standard_10um();
        g.height = Micron(f64::NAN);
        assert!(g.validate().is_err());
    }

    #[test]
    fn rejects_liner_thicker_than_radius() {
        let mut g = TsvGeometry::standard_10um();
        g.liner_thickness = Micron(6.0);
        assert!(g.validate().is_err());
    }

    #[test]
    fn derived_quantities() {
        let g = TsvGeometry::standard_10um();
        assert!((g.copper_area_m2() - std::f64::consts::PI * 25e-12).abs() < 1e-18);
        assert!((g.height_m() - 100e-6).abs() < 1e-12);
        assert_eq!(g.outer_radius().0, 5.5);
    }
}
