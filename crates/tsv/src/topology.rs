//! 3D stack topology: which TSV arrays sit at which tier interface, and the
//! combined thermal/stress view a sensor placed on a tier experiences.

use crate::error::TsvError;
use crate::geometry::TsvGeometry;
use crate::stress::StressModel;
use crate::thermal_via::vertical_conductance;
use ptsim_device::units::{Celsius, Micron, Volt};
use ptsim_thermal::stack::{StackConfig, ThermalStack};

/// A regular grid of identical TSVs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvArray {
    /// Geometry of each via.
    pub geometry: TsvGeometry,
    /// Centre of the via at (column 0, row 0), in µm die coordinates.
    pub origin: (Micron, Micron),
    /// Centre-to-centre pitch.
    pub pitch: Micron,
    /// Vias per row.
    pub cols: usize,
    /// Rows.
    pub rows: usize,
}

impl TsvArray {
    /// A `cols × rows` array centred on the die.
    #[must_use]
    pub fn centered(
        geometry: TsvGeometry,
        die_width: Micron,
        die_height: Micron,
        cols: usize,
        rows: usize,
        pitch: Micron,
    ) -> Self {
        let span_x = (cols.saturating_sub(1)) as f64 * pitch.0;
        let span_y = (rows.saturating_sub(1)) as f64 * pitch.0;
        TsvArray {
            geometry,
            origin: (
                Micron((die_width.0 - span_x) / 2.0),
                Micron((die_height.0 - span_y) / 2.0),
            ),
            pitch,
            cols,
            rows,
        }
    }

    /// Number of vias.
    #[must_use]
    pub fn count(&self) -> usize {
        self.cols * self.rows
    }

    /// Via centre positions in µm die coordinates.
    #[must_use]
    pub fn positions(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.count());
        for row in 0..self.rows {
            for col in 0..self.cols {
                out.push((
                    self.origin.0 .0 + col as f64 * self.pitch.0,
                    self.origin.1 .0 + row as f64 * self.pitch.0,
                ));
            }
        }
        out
    }

    /// Validates geometry and pitch.
    ///
    /// # Errors
    ///
    /// Returns [`TsvError`] if the via geometry is invalid, the array is
    /// empty, or vias would overlap (`pitch < 2·outer radius`).
    pub fn validate(&self) -> Result<(), TsvError> {
        self.geometry.validate()?;
        if self.count() == 0 {
            return Err(TsvError::InvalidTopology {
                what: "empty TSV array",
            });
        }
        if self.count() > 1 && self.pitch.0 < 2.0 * self.geometry.outer_radius().0 {
            return Err(TsvError::InvalidTopology {
                what: "TSV pitch smaller than via diameter (vias overlap)",
            });
        }
        Ok(())
    }
}

/// A full 3D-stack description: thermal configuration plus TSV arrays at
/// tier interfaces and a stress model.
#[derive(Debug, Clone, PartialEq)]
pub struct StackTopology {
    thermal_cfg: StackConfig,
    /// `(interface, array)` pairs; interface `i` couples tiers `i` and `i+1`.
    arrays: Vec<(usize, TsvArray)>,
    stress: StressModel,
}

impl StackTopology {
    /// Topology with no TSVs.
    #[must_use]
    pub fn new(thermal_cfg: StackConfig) -> Self {
        StackTopology {
            thermal_cfg,
            arrays: Vec::new(),
            stress: StressModel::default_65nm(),
        }
    }

    /// The 4-tier 5 × 5 mm reference stack with an 8 × 8 signal-TSV array at
    /// every interface (the F5 case-study configuration).
    ///
    /// # Panics
    ///
    /// Does not panic: the built-in configuration always validates.
    #[must_use]
    pub fn reference_four_tier() -> Self {
        let cfg = StackConfig::four_tier_5mm();
        let array = TsvArray::centered(
            TsvGeometry::standard_10um(),
            cfg.die_width,
            cfg.die_height,
            8,
            8,
            Micron(100.0),
        );
        let mut topo = StackTopology::new(cfg);
        for iface in 0..3 {
            topo = topo.with_array(iface, array).expect("reference topology");
        }
        topo
    }

    /// Thermal configuration.
    #[must_use]
    pub fn thermal_config(&self) -> &StackConfig {
        &self.thermal_cfg
    }

    /// Stress model in use.
    #[must_use]
    pub fn stress_model(&self) -> &StressModel {
        &self.stress
    }

    /// Replaces the stress model.
    #[must_use]
    pub fn with_stress_model(mut self, stress: StressModel) -> Self {
        self.stress = stress;
        self
    }

    /// Adds a TSV array at a tier interface.
    ///
    /// # Errors
    ///
    /// Returns [`TsvError::InvalidTopology`] if the interface does not exist
    /// or any via centre falls outside the die, and propagates array
    /// validation errors.
    pub fn with_array(mut self, interface: usize, array: TsvArray) -> Result<Self, TsvError> {
        array.validate()?;
        if interface + 1 >= self.thermal_cfg.tiers {
            return Err(TsvError::InvalidTopology {
                what: "interface index beyond stack",
            });
        }
        for (x, y) in array.positions() {
            if x < 0.0
                || y < 0.0
                || x > self.thermal_cfg.die_width.0
                || y > self.thermal_cfg.die_height.0
            {
                return Err(TsvError::InvalidTopology {
                    what: "TSV position outside die",
                });
            }
        }
        self.arrays.push((interface, array));
        Ok(self)
    }

    /// Registered `(interface, array)` pairs.
    #[must_use]
    pub fn arrays(&self) -> &[(usize, TsvArray)] {
        &self.arrays
    }

    /// Builds the thermal RC network with every TSV contributing vertical
    /// conductance at its grid cell.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model construction errors.
    pub fn build_thermal(&self) -> Result<ThermalStack, TsvError> {
        let mut stack = ThermalStack::new(self.thermal_cfg.clone())?;
        let (nx, ny) = (self.thermal_cfg.nx, self.thermal_cfg.ny);
        for (iface, array) in &self.arrays {
            let g = vertical_conductance(&array.geometry);
            for (x, y) in array.positions() {
                let ix = ((x / self.thermal_cfg.die_width.0) * nx as f64)
                    .floor()
                    .clamp(0.0, (nx - 1) as f64) as usize;
                let iy = ((y / self.thermal_cfg.die_height.0) * ny as f64)
                    .floor()
                    .clamp(0.0, (ny - 1) as f64) as usize;
                stack.add_vertical_conductance(*iface, ix, iy, g)?;
            }
        }
        Ok(stack)
    }

    /// Combined stress-induced threshold shifts `(ΔVtn, ΔVtp)` at a point on
    /// `tier`, superposing every via of every array touching that tier
    /// (arrays at interfaces `tier-1` and `tier`).
    ///
    /// Coordinates are µm on the die.
    #[must_use]
    pub fn stress_vt_shift_at(
        &self,
        tier: usize,
        x: Micron,
        y: Micron,
        temp: Celsius,
    ) -> (Volt, Volt) {
        let mut total = 0.0;
        let mut geom_for_scale: Option<TsvGeometry> = None;
        for (iface, array) in &self.arrays {
            let touches = *iface == tier || iface + 1 == tier;
            if !touches {
                continue;
            }
            geom_for_scale.get_or_insert(array.geometry);
            for (vx, vy) in array.positions() {
                let r = ((x.0 - vx).powi(2) + (y.0 - vy).powi(2)).sqrt();
                total += self
                    .stress
                    .radial_stress(&array.geometry, Micron(r), temp)
                    .0;
            }
        }
        (
            Volt(self.stress.dvtn_per_pa * total),
            Volt(self.stress.dvtp_per_pa * total),
        )
    }

    /// Combined fractional mobility shifts `(Δµn/µ, Δµp/µ)` at a point.
    #[must_use]
    pub fn stress_mu_shift_at(
        &self,
        tier: usize,
        x: Micron,
        y: Micron,
        temp: Celsius,
    ) -> (f64, f64) {
        let mut total = 0.0;
        for (iface, array) in &self.arrays {
            if !(*iface == tier || iface + 1 == tier) {
                continue;
            }
            for (vx, vy) in array.positions() {
                let r = ((x.0 - vx).powi(2) + (y.0 - vy).powi(2)).sqrt();
                total += self
                    .stress
                    .radial_stress(&array.geometry, Micron(r), temp)
                    .0;
            }
        }
        (
            self.stress.piezo_mu_n * total,
            self.stress.piezo_mu_p * total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_array_is_centred() {
        let a = TsvArray::centered(
            TsvGeometry::standard_10um(),
            Micron(5000.0),
            Micron(5000.0),
            8,
            8,
            Micron(100.0),
        );
        let pos = a.positions();
        assert_eq!(pos.len(), 64);
        let cx = pos.iter().map(|p| p.0).sum::<f64>() / 64.0;
        let cy = pos.iter().map(|p| p.1).sum::<f64>() / 64.0;
        assert!((cx - 2500.0).abs() < 1e-9);
        assert!((cy - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn array_validation_catches_overlap() {
        let mut a = TsvArray::centered(
            TsvGeometry::standard_10um(),
            Micron(5000.0),
            Micron(5000.0),
            4,
            4,
            Micron(100.0),
        );
        assert!(a.validate().is_ok());
        a.pitch = Micron(5.0); // < 2 × 5.5 µm outer radius
        assert!(a.validate().is_err());
    }

    #[test]
    fn topology_rejects_bad_interface_and_offdie_vias() {
        let cfg = StackConfig::four_tier_5mm();
        let array = TsvArray::centered(
            TsvGeometry::standard_10um(),
            cfg.die_width,
            cfg.die_height,
            2,
            2,
            Micron(100.0),
        );
        let topo = StackTopology::new(cfg.clone());
        assert!(topo.clone().with_array(3, array).is_err());
        let mut off = array;
        off.origin = (Micron(-50.0), Micron(0.0));
        assert!(StackTopology::new(cfg).with_array(0, off).is_err());
    }

    #[test]
    fn reference_topology_builds_thermal_stack() {
        let topo = StackTopology::reference_four_tier();
        assert_eq!(topo.arrays().len(), 3);
        let stack = topo.build_thermal().unwrap();
        assert_eq!(stack.tiers(), 4);
    }

    #[test]
    fn stress_shift_strongest_next_to_a_via() {
        let topo = StackTopology::reference_four_tier();
        let pos = topo.arrays()[0].1.positions()[0];
        let near = topo.stress_vt_shift_at(0, Micron(pos.0 + 8.0), Micron(pos.1), Celsius(25.0));
        let far = topo.stress_vt_shift_at(0, Micron(10.0), Micron(10.0), Celsius(25.0));
        assert!(near.0 .0 > far.0 .0, "near {} vs far {}", near.0, far.0);
        assert!(near.0 .0 > 0.0);
        assert!(near.1 .0 < 0.0, "PMOS shift has opposite sign");
    }

    #[test]
    fn tier_without_adjacent_array_sees_no_stress() {
        // Array only at interface 0 (tiers 0 and 1); tier 3 is unaffected.
        let cfg = StackConfig::four_tier_5mm();
        let array = TsvArray::centered(
            TsvGeometry::standard_10um(),
            cfg.die_width,
            cfg.die_height,
            4,
            4,
            Micron(200.0),
        );
        let topo = StackTopology::new(cfg).with_array(0, array).unwrap();
        let s = topo.stress_vt_shift_at(3, Micron(2500.0), Micron(2500.0), Celsius(25.0));
        assert_eq!(s.0, Volt::ZERO);
        let s1 = topo.stress_vt_shift_at(1, Micron(2500.0), Micron(2500.0), Celsius(25.0));
        assert!(s1.0 .0 > 0.0);
    }

    #[test]
    fn mu_shift_signs_oppose() {
        let topo = StackTopology::reference_four_tier();
        let pos = topo.arrays()[0].1.positions()[0];
        let (mn, mp) =
            topo.stress_mu_shift_at(0, Micron(pos.0 + 7.0), Micron(pos.1), Celsius(25.0));
        assert!(mn < 0.0);
        assert!(mp > 0.0);
    }

    #[test]
    fn tsvs_increase_vertical_conduction() {
        // Compare mean tier-0 temperature with and without TSVs.
        use ptsim_device::units::Watt;
        use ptsim_thermal::power::PowerMap;
        use ptsim_thermal::solve::{solve_steady_state, SolveOptions};

        let cfg = StackConfig::four_tier_5mm();
        let solve_mean = |topo: &StackTopology| {
            let mut s = topo.build_thermal().unwrap();
            s.set_power(0, PowerMap::uniform(16, 16, Watt(2.0)).unwrap())
                .unwrap();
            solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
            s.mean_temperature(0).unwrap().0
        };
        let bare = solve_mean(&StackTopology::new(cfg));
        let with_tsv = solve_mean(&StackTopology::reference_four_tier());
        assert!(
            with_tsv < bare,
            "TSVs should cool tier 0: {with_tsv:.3} vs {bare:.3}"
        );
    }
}
