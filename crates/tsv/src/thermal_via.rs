//! TSV thermal-via conductance.

use crate::geometry::TsvGeometry;
use ptsim_device::units::WattPerKelvin;
use ptsim_thermal::material::Material;

/// Vertical thermal conductance of one via's copper body:
/// `G = k_cu · π·r² / h`.
#[must_use]
pub fn vertical_conductance(geom: &TsvGeometry) -> WattPerKelvin {
    WattPerKelvin(Material::COPPER.conductivity * geom.copper_area_m2() / geom.height_m())
}

/// Conductance of a bundle of `count` identical vias in parallel.
#[must_use]
pub fn bundle_conductance(geom: &TsvGeometry, count: usize) -> WattPerKelvin {
    WattPerKelvin(vertical_conductance(geom).0 * count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_via_conductance_scale() {
        // 400 · π·25e-12 / 1e-4 ≈ 3.1e-4 W/K.
        let g = vertical_conductance(&TsvGeometry::standard_10um());
        assert!((g.0 - 3.14e-4).abs() < 0.5e-4, "got {g}");
    }

    #[test]
    fn bundle_scales_linearly() {
        let geom = TsvGeometry::standard_10um();
        let one = vertical_conductance(&geom).0;
        let many = bundle_conductance(&geom, 42).0;
        assert!((many / one - 42.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_via_conducts_better() {
        let tall = TsvGeometry::standard_10um();
        let mut short = tall;
        short.height = ptsim_device::units::Micron(50.0);
        assert!(vertical_conductance(&short).0 > vertical_conductance(&tall).0);
    }
}
