//! Error type for the TSV crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing TSV models or stack topologies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TsvError {
    /// A geometry parameter was out of range.
    InvalidGeometry {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An array/topology parameter was out of range.
    InvalidTopology {
        /// Description of the violation.
        what: &'static str,
    },
    /// An underlying thermal-model construction failed.
    Thermal(ptsim_thermal::error::ThermalError),
}

impl fmt::Display for TsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsvError::InvalidGeometry { name, value } => {
                write!(f, "invalid TSV geometry: {name} = {value}")
            }
            TsvError::InvalidTopology { what } => write!(f, "invalid stack topology: {what}"),
            TsvError::Thermal(e) => write!(f, "thermal model construction failed: {e}"),
        }
    }
}

impl Error for TsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TsvError::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ptsim_thermal::error::ThermalError> for TsvError {
    fn from(e: ptsim_thermal::error::ThermalError) -> Self {
        TsvError::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_thermal_errors() {
        let e: TsvError = ptsim_thermal::error::ThermalError::InvalidGrid { nx: 0, ny: 1 }.into();
        assert!(e.to_string().contains("thermal"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TsvError>();
    }
}
