//! Property-based tests of the TSV-model invariants.

use ptsim_device::units::{Celsius, Micron};
use ptsim_rng::check::Strategy;
use ptsim_rng::forall;
use ptsim_tsv::electrical::{liner_capacitance, rc_time_constant, resistance};
use ptsim_tsv::geometry::TsvGeometry;
use ptsim_tsv::stress::StressModel;
use ptsim_tsv::thermal_via::{bundle_conductance, vertical_conductance};
use ptsim_tsv::topology::TsvArray;

fn geom_strategy() -> impl Strategy<Value = TsvGeometry> {
    (1.0f64..10.0, 20.0f64..300.0, 0.05f64..0.9).map(|(r, h, l)| TsvGeometry {
        radius: Micron(r),
        height: Micron(h),
        liner_thickness: Micron(l.min(r * 0.8)),
    })
}

forall! {
    #[test]
    fn parasitics_positive_and_finite(g in geom_strategy()) {
        assert!(g.validate().is_ok());
        let r = resistance(&g);
        let c = liner_capacitance(&g);
        assert!(r.0 > 0.0 && r.0.is_finite());
        assert!(c.0 > 0.0 && c.0.is_finite());
        assert!(rc_time_constant(&g) > 0.0);
    }

    #[test]
    fn resistance_proportional_to_height(g in geom_strategy()) {
        let mut tall = g;
        tall.height = Micron(g.height.0 * 2.0);
        let ratio = resistance(&tall).0 / resistance(&g).0;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_conductance_inverse_to_height(g in geom_strategy()) {
        let mut tall = g;
        tall.height = Micron(g.height.0 * 2.0);
        let ratio = vertical_conductance(&tall).0 / vertical_conductance(&g).0;
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bundle_is_linear(g in geom_strategy(), n in 1usize..500) {
        let one = vertical_conductance(&g).0;
        assert!((bundle_conductance(&g, n).0 - n as f64 * one).abs() < 1e-12 * n as f64);
    }

    #[test]
    fn stress_bounded_by_wall_value(
        g in geom_strategy(),
        r in 0.0f64..500.0,
        t in -20.0f64..120.0,
    ) {
        let m = StressModel::default_65nm();
        let wall = m.radial_stress(&g, g.radius, Celsius(t)).0;
        let here = m.radial_stress(&g, Micron(r), Celsius(t)).0;
        assert!(here <= wall + 1e-9);
        assert!(here >= 0.0);
    }

    #[test]
    fn stress_superposition_scales_vt_shift(
        g in geom_strategy(),
        r in 6.0f64..100.0,
        t in -20.0f64..120.0,
    ) {
        // delta_vtn is linear in stress, so doubling stress (two coincident
        // vias) doubles the shift — checked through the model's linearity.
        let m = StressModel::default_65nm();
        let s = m.radial_stress(&g, Micron(r), Celsius(t)).0;
        let v = m.delta_vtn(&g, Micron(r), Celsius(t)).0;
        assert!((v - m.dvtn_per_pa * s).abs() < 1e-15);
    }

    #[test]
    fn array_positions_count_and_pitch(
        cols in 1usize..10,
        rows in 1usize..10,
        pitch in 30.0f64..200.0,
    ) {
        let a = TsvArray::centered(
            TsvGeometry::standard_10um(),
            Micron(5000.0),
            Micron(5000.0),
            cols,
            rows,
            Micron(pitch),
        );
        let pos = a.positions();
        assert_eq!(pos.len(), cols * rows);
        if cols >= 2 {
            assert!((pos[1].0 - pos[0].0 - pitch).abs() < 1e-9);
        }
    }

    #[test]
    fn koz_at_least_via_radius(g in geom_strategy(), thr in 0.001f64..0.5) {
        let m = StressModel::default_65nm();
        let koz = m.keep_out_radius(&g, thr, Celsius(25.0));
        assert!(koz.0 >= g.radius.0 - 1e-12);
    }
}
