//! Property tests for the registry: record/merge semantics hold for
//! arbitrary inputs, and a merged split matches the sequential run.

use ptsim_mc::stats::Histogram;
use ptsim_obs::Registry;
use ptsim_rng::check::vec_in;

ptsim_rng::forall! {
    #[test]
    fn counter_accumulates_the_exact_sum(incs in vec_in(0u64..1_000_000, 1..32)) {
        let mut r = Registry::new();
        let id = r.counter("c");
        for &n in &incs {
            r.add(id, n);
        }
        assert_eq!(r.counter_value("c"), Some(incs.iter().sum::<u64>()));
    }

    #[test]
    fn observe_matches_direct_histogram_push(xs in vec_in(-2.0f64..12.0, 1..64)) {
        let mut r = Registry::new();
        let id = r.histogram("h", 0.0, 10.0, 8);
        let mut direct = Histogram::new(0.0, 10.0, 8);
        for &x in &xs {
            r.observe(id, x);
            direct.push(x);
        }
        let reg = r.histogram_data("h").unwrap();
        assert_eq!(reg.counts(), direct.counts());
        assert_eq!(reg.total(), direct.total());
        assert_eq!(reg.clamped(), direct.clamped());
    }

    #[test]
    fn merged_split_equals_sequential(
        xs in vec_in(-2.0f64..12.0, 2..64),
        split_frac in 0.0f64..1.0,
    ) {
        // One registry fed everything vs. two registries fed a split of the
        // same stream, merged into a third: snapshots must be identical.
        let build = |stream: &[f64]| {
            let mut r = Registry::new();
            let c = r.counter("events");
            let h = r.histogram("values", 0.0, 10.0, 8);
            for &x in stream {
                r.inc(c);
                r.observe(h, x);
            }
            r
        };
        let split = (split_frac * xs.len() as f64) as usize;
        let sequential = build(&xs);
        let mut merged = Registry::new();
        merged.merge(&build(&xs[..split]));
        merged.merge(&build(&xs[split..]));
        assert_eq!(merged.snapshot(), sequential.snapshot());
        assert_eq!(merged.snapshot().to_json(), sequential.snapshot().to_json());
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark(vs in vec_in(-5.0f64..5.0, 1..32)) {
        let mut r = Registry::new();
        let id = r.gauge("g");
        for &v in &vs {
            r.set_max(id, v);
        }
        let expect = vs.iter().copied().fold(0.0f64, f64::max);
        assert_eq!(r.gauge_value("g"), Some(expect));
    }
}
