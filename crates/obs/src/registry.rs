//! The metric registry: named counters, gauges, and histograms behind
//! copyable ids, with merge and JSON snapshot support.

use ptsim_mc::stats::Histogram;
use std::fmt::Write as _;

/// Handle to a monotonic counter in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge (last-or-max value) in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bin histogram in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A small, flat metric registry.
///
/// All metrics are registered up front (typically at sensor or worker
/// construction); the record path — [`Registry::inc`], [`Registry::add`],
/// [`Registry::set`], [`Registry::observe`] — is an indexed update that
/// never allocates. Names are `&'static str` by design: the registry is an
/// in-process diagnostic surface, not a dynamic metrics database.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a monotonic counter (starting at 0) and returns its id.
    /// Registering the same name twice returns the existing counter.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (starting at 0.0) and returns its id. Registering
    /// the same name twice returns the existing gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram with `bins` equal-width bins over `[lo, hi)`
    /// and returns its id. Registering the same name twice returns the
    /// existing histogram (its configuration wins).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` (see [`Histogram::new`]).
    pub fn histogram(&mut self, name: &'static str, lo: f64, hi: f64, bins: usize) -> HistogramId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistogramId(i);
        }
        self.hists.push((name, Histogram::new(lo, hi, bins)));
        HistogramId(self.hists.len() - 1)
    }

    /// Increments a counter by one. Allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Increments a counter by `n`. Allocation-free.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge. Allocation-free.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Raises a gauge to `v` if `v` is larger (high-water mark).
    /// Allocation-free.
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, v: f64) {
        let g = &mut self.gauges[id.0].1;
        *g = g.max(v);
    }

    /// Records one histogram observation (out-of-range samples clamp into
    /// the edge bins, see [`Histogram::push`]). Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.hists[id.0].1.push(x);
    }

    /// Current value of the counter named `name`, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Current value of the gauge named `name`, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram named `name`, if registered.
    #[must_use]
    pub fn histogram_data(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Folds another registry into this one, matching metrics by name:
    /// counters sum, gauges keep the maximum, histograms add bin-wise
    /// ([`Histogram::merge`]). Metrics only present in `other` are appended,
    /// so merging worker registries into a fresh one loses nothing.
    ///
    /// # Panics
    ///
    /// Panics if two histograms share a name but differ in range or bin
    /// count.
    pub fn merge(&mut self, other: &Registry) {
        for &(name, v) in &other.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += v;
        }
        for &(name, v) in &other.gauges {
            let id = self.gauge(name);
            self.set_max(id, v);
        }
        for (name, h) in &other.hists {
            if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
                self.hists[i].1.merge(h);
            } else {
                self.hists.push((name, h.clone()));
            }
        }
    }

    /// A plain-data copy of every metric, in registration order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .hists
                .iter()
                .map(|&(name, ref h)| {
                    let (under, over) = h.clamped();
                    let (lo, hi) = h.range();
                    (
                        name,
                        HistogramSnapshot {
                            lo,
                            hi,
                            under,
                            over,
                            total: h.total(),
                            counts: h.counts().to_vec(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Plain-data histogram state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Lower edge of the range.
    pub lo: f64,
    /// Upper edge of the range (exclusive).
    pub hi: f64,
    /// Observations clamped up into the first bin.
    pub under: u64,
    /// Observations clamped down into the last bin.
    pub over: u64,
    /// Total observations; always equals the sum of `counts`.
    pub total: u64,
    /// Per-bin counts (clamped observations included in the edge bins).
    pub counts: Vec<u64>,
}

/// A point-in-time copy of a [`Registry`], exportable as a single JSON line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter name/value pairs in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name/value pairs in registration order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram name/state pairs in registration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// A copy keeping only the metrics whose name satisfies `keep`. Useful
    /// for comparing the deterministic subset of two runs (e.g. dropping
    /// wall-clock `span.*` histograms).
    #[must_use]
    pub fn filtered(&self, keep: impl Fn(&str) -> bool) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| keep(n))
                .copied()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(n, _)| keep(n))
                .copied()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| keep(n))
                .cloned()
                .collect(),
        }
    }

    /// Serializes the snapshot as one line of JSON:
    ///
    /// ```json
    /// {"counters":{"name":1},"gauges":{"name":2.5},
    ///  "histograms":{"name":{"lo":0.0,"hi":1.0,"under":0,"over":0,
    ///                        "total":3,"counts":[1,2]}}}
    /// ```
    ///
    /// Hand-rolled on purpose (the workspace is dependency-free); metric
    /// names are static identifiers (`[A-Za-z0-9._-]`), so no string
    /// escaping is needed. Non-finite gauge values serialize as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, &(name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            push_f64(&mut out, v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{{\"lo\":");
            push_f64(&mut out, h.lo);
            out.push_str(",\"hi\":");
            push_f64(&mut out, h.hi);
            let _ = write!(
                out,
                ",\"under\":{},\"over\":{},\"total\":{},\"counts\":[",
                h.under, h.over, h.total
            );
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Writes `v` as a JSON number (`Debug` formatting of finite f64 is valid
/// JSON: `2.5`, `0.0`, `1e-12`), or `null` when non-finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistering_returns_the_same_id() {
        let mut r = Registry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert_ne!(a, b);
        assert_eq!(r.counter("a"), a);
        let g = r.gauge("g");
        assert_eq!(r.gauge("g"), g);
        let h = r.histogram("h", 0.0, 1.0, 4);
        assert_eq!(r.histogram("h", 0.0, 1.0, 4), h);
    }

    #[test]
    fn record_paths_update_the_named_metric() {
        let mut r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h", 0.0, 10.0, 10);
        r.inc(c);
        r.add(c, 4);
        r.set(g, 2.5);
        r.set_max(g, 1.0); // lower: ignored
        r.set_max(g, 9.0); // higher: taken
        r.observe(h, 3.3);
        assert_eq!(r.counter_value("c"), Some(5));
        assert_eq!(r.gauge_value("g"), Some(9.0));
        assert_eq!(r.histogram_data("h").unwrap().total(), 1);
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_adds_bins() {
        let mut a = Registry::new();
        let ca = a.counter("shared");
        a.add(ca, 3);
        let ga = a.gauge("peak");
        a.set(ga, 2.0);
        let ha = a.histogram("h", 0.0, 4.0, 4);
        a.observe(ha, 0.5);

        let mut b = Registry::new();
        let cb = b.counter("shared");
        b.add(cb, 7);
        let only = b.counter("only_in_b");
        b.inc(only);
        let gb = b.gauge("peak");
        b.set(gb, 5.0);
        let hb = b.histogram("h", 0.0, 4.0, 4);
        b.observe(hb, 0.6);
        b.observe(hb, 3.9);

        a.merge(&b);
        assert_eq!(a.counter_value("shared"), Some(10));
        assert_eq!(a.counter_value("only_in_b"), Some(1));
        assert_eq!(a.gauge_value("peak"), Some(5.0));
        let h = a.histogram_data("h").unwrap();
        assert_eq!(h.counts(), &[2, 0, 0, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut r = Registry::new();
        let c = r.counter("pipeline.conversions");
        r.add(c, 2);
        let g = r.gauge("mc.workers");
        r.set(g, 4.0);
        let h = r.histogram("energy.pj", 0.0, 2.0, 2);
        r.observe(h, 0.5);
        r.observe(h, 1.5);
        r.observe(h, -1.0);
        let s = r.snapshot();
        assert_eq!(s.counter("pipeline.conversions"), Some(2));
        assert_eq!(s.gauge("mc.workers"), Some(4.0));
        let hs = s.histogram("energy.pj").unwrap();
        assert_eq!(hs.counts, vec![2, 1]);
        assert_eq!((hs.under, hs.over, hs.total), (1, 0, 3));
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"pipeline.conversions\":2},\
             \"gauges\":{\"mc.workers\":4.0},\
             \"histograms\":{\"energy.pj\":{\"lo\":0.0,\"hi\":2.0,\
             \"under\":1,\"over\":0,\"total\":3,\"counts\":[2,1]}}}"
        );
    }

    #[test]
    fn filtered_drops_unmatched_names() {
        let mut r = Registry::new();
        r.counter("keep.me");
        r.counter("span.drop");
        r.histogram("span.t", 0.0, 1.0, 2);
        let s = r.snapshot().filtered(|n| !n.starts_with("span."));
        assert_eq!(s.counters.len(), 1);
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let mut r = Registry::new();
        let g = r.gauge("g");
        r.set(g, f64::INFINITY);
        assert!(r.snapshot().to_json().contains("\"g\":null"));
    }
}
