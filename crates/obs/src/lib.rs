//! Zero-dependency observability primitives for the sensor simulator.
//!
//! The crate provides exactly three things, all built on `std` and the
//! in-workspace [`ptsim_mc::stats::Histogram`]:
//!
//! * a [`Registry`] of pre-registered monotonic counters, gauges, and
//!   fixed-bin histograms, addressed by copyable integer ids so the record
//!   path is an indexed add with **zero heap allocations**;
//! * a [`Snapshot`] of a registry — plain public data plus a hand-rolled
//!   single-line [`Snapshot::to_json`] exporter (no serializer dependency);
//! * a [`span::emit`] stderr span emitter gated on the `PTSIM_TRACE`
//!   environment variable (checked once, cached).
//!
//! Registries are plain values: each Monte-Carlo worker owns one and the
//! driver folds them together with [`Registry::merge`] (counters sum, gauges
//! keep the maximum, histograms add bin-wise), so a parallel run's merged
//! snapshot matches the sequential run wherever the underlying quantities
//! are deterministic. Instrumentation reads, never perturbs: nothing in this
//! crate consumes randomness or feeds back into simulation state.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod registry;
pub mod span;

pub use registry::{CounterId, GaugeId, HistogramId, HistogramSnapshot, Registry, Snapshot};
pub use span::{emit, trace_enabled};
