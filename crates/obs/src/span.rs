//! `PTSIM_TRACE`-gated stderr span emitter.
//!
//! Spans are deliberately minimal: the pipeline times a stage with
//! [`std::time::Instant`] and calls [`emit`] with the elapsed duration. When
//! the `PTSIM_TRACE` environment variable is unset (or set to `""`/`"0"`)
//! the emitter is a cached boolean check and nothing is written — the
//! environment is consulted exactly once per process.

use std::sync::OnceLock;
use std::time::Duration;

/// True when `PTSIM_TRACE` is set to a non-empty value other than `"0"`.
/// The environment is read once and cached for the life of the process.
#[must_use]
pub fn trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("PTSIM_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Writes one `[ptsim-trace] <name> <nanoseconds> ns` line to stderr when
/// tracing is enabled; otherwise a no-op. The formatted write goes straight
/// to the locked stderr handle — no heap allocation on either path (after
/// the first [`trace_enabled`] lookup).
pub fn emit(name: &str, elapsed: Duration) {
    if trace_enabled() {
        eprintln!("[ptsim-trace] {name} {} ns", elapsed.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_safe_without_the_env_var() {
        // The test harness does not set PTSIM_TRACE; this must be a no-op
        // (and must not panic) regardless of the cached gate state.
        emit("test.span", Duration::from_nanos(42));
    }
}
