//! Property-based tests of the Monte-Carlo engine invariants.

use ptsim_device::process::Technology;
use ptsim_mc::die::DieSite;
use ptsim_mc::driver::{die_rng, run_parallel, McConfig};
use ptsim_mc::lhs::{inverse_normal_cdf, unit_hypercube};
use ptsim_mc::model::VariationModel;
use ptsim_mc::spatial::{SpatialConfig, SpatialField};
use ptsim_mc::stats::{quantile_in_place, Histogram, OnlineStats};
use ptsim_rng::forall;
use ptsim_rng::Pcg64;
use ptsim_rng::Rng;

forall! {
    #[test]
    fn spatial_field_deterministic_per_seed(seed in 0u64..1000) {
        let cfg = SpatialConfig::vt_default(0.005);
        let a = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(seed));
        let b = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(seed));
        assert_eq!(a, b);
    }

    #[test]
    fn die_env_fields_finite(seed in 0u64..500, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(seed);
        let die = model.sample_die(&mut rng);
        let env = die.env_at(DieSite::new(x, y), ptsim_device::units::Celsius(42.0));
        assert!(env.d_vtn.is_finite());
        assert!(env.d_vtp.is_finite());
        assert!(env.mu_n.is_finite() && env.mu_n > 0.0);
        assert!(env.mu_p.is_finite() && env.mu_p > 0.0);
    }

    #[test]
    fn parallel_driver_is_pure(seed in 0u64..200, n in 1usize..40) {
        let cfg = McConfig::new(n, seed);
        let f = |i: u64, rng: &mut Pcg64| (i, rng.gen::<u64>());
        assert_eq!(run_parallel(&cfg, f), run_parallel(&cfg, f));
    }

    #[test]
    fn die_rng_streams_differ(base in 0u64..1000, i in 0u64..100, j in 101u64..200) {
        let a: u64 = die_rng(base, i).gen();
        let b: u64 = die_rng(base, j).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn histogram_total_counts_all_pushes(xs in ptsim_rng::check::vec_in(-10.0f64..10.0, 1..100)) {
        let mut h = Histogram::new(-5.0, 5.0, 7);
        for x in &xs {
            h.push(*x);
        }
        assert_eq!(h.total(), xs.len() as u64);
        assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone(mut xs in ptsim_rng::check::vec_in(-100.0f64..100.0, 3..60)) {
        let q25 = quantile_in_place(&mut xs, 0.25).unwrap();
        let q50 = quantile_in_place(&mut xs, 0.50).unwrap();
        let q75 = quantile_in_place(&mut xs, 0.75).unwrap();
        assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn quantile_never_panics_with_a_nan_sample(
        mut xs in ptsim_rng::check::vec_in(-100.0f64..100.0, 1..40),
        at in 0usize..40,
        q in 0.0f64..1.0,
    ) {
        // One bad sample mid-campaign must surface as a typed error (with
        // the position of the first NaN), never a panic.
        let at = at % xs.len();
        xs[at] = f64::NAN;
        let first_nan = xs.iter().position(|x| x.is_nan()).unwrap();
        assert_eq!(
            quantile_in_place(&mut xs, q),
            Err(ptsim_mc::stats::StatsError::NanSample { index: first_nan })
        );
        // Removing the NaN makes the same batch computable again.
        xs.remove(first_nan);
        if !xs.is_empty() {
            assert!(quantile_in_place(&mut xs, q).unwrap().is_finite());
        }
    }

    #[test]
    fn inverse_cdf_antisymmetric(p in 0.001f64..0.499) {
        let a = inverse_normal_cdf(p);
        let b = inverse_normal_cdf(1.0 - p);
        assert!((a + b).abs() < 1e-6);
    }

    #[test]
    fn hypercube_points_in_unit_box(seed in 0u64..200, n in 1usize..50, d in 1usize..6) {
        let mut rng = Pcg64::seed_from_u64(seed);
        for point in unit_hypercube(&mut rng, n, d) {
            assert_eq!(point.len(), d);
            for c in point {
                assert!((0.0..1.0).contains(&c));
            }
        }
    }

    #[test]
    fn online_stats_bounds_hold(xs in ptsim_rng::check::vec_in(-1e6f64..1e6, 1..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        assert!(s.min() <= s.mean() + 1e-9);
        assert!(s.mean() <= s.max() + 1e-9);
        assert!(s.variance() >= 0.0);
        assert_eq!(s.count(), xs.len() as u64);
    }
}
