//! Parallel Monte-Carlo driver.
//!
//! Runs a per-die closure across a pool of scoped `std::thread` workers with
//! *deterministic* per-die seeding: die `i` always sees the same RNG stream
//! regardless of thread count or scheduling, so experiment results are
//! reproducible and bisectable. Zero external dependencies — work
//! distribution is a lock-free atomic cursor and result collection a
//! `std::sync::Mutex`.

use ptsim_rng::{Pcg64, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of dies to simulate.
    pub n_dies: usize,
    /// Base seed; die `i` derives its stream from `(base_seed, i)`.
    pub base_seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub threads: usize,
}

impl McConfig {
    /// `n_dies` dies with a fixed seed and automatic thread count.
    #[must_use]
    pub fn new(n_dies: usize, base_seed: u64) -> Self {
        McConfig {
            n_dies,
            base_seed,
            threads: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig::new(1000, 0x5eed_cafe)
    }
}

/// SplitMix64 finalizer — decorrelates per-die seeds derived from
/// `(base_seed, index)`.
fn mix_seed(base: u64, index: u64) -> u64 {
    SplitMix64::finalize(base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Deterministic RNG for die `index` of a run seeded with `base`.
#[must_use]
pub fn die_rng(base: u64, index: u64) -> Pcg64 {
    Pcg64::seed_from_u64(mix_seed(base, index))
}

/// Runs `f(die_index, rng)` for every die, in parallel, and returns results
/// in die order.
///
/// The closure must be `Sync` because it is shared across workers; results
/// must be `Send`. Each invocation receives a deterministic, independent RNG,
/// so the output is bit-identical for any `threads` setting (see
/// `tests/determinism.rs` at the workspace root).
///
/// ```
/// use ptsim_mc::driver::{run_parallel, McConfig};
/// use ptsim_rng::Rng;
///
/// let out = run_parallel(&McConfig::new(8, 42), |i, rng| {
///     (i, rng.gen::<u32>())
/// });
/// assert_eq!(out.len(), 8);
/// assert!(out.iter().enumerate().all(|(i, (j, _))| i as u64 == *j));
/// ```
pub fn run_parallel<T, F>(cfg: &McConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut Pcg64) -> T + Sync,
{
    run_parallel_with(cfg, || (), |(), i, rng| f(i, rng))
}

/// [`run_parallel`] with a per-worker context: `init()` runs once on each
/// worker thread and its result is threaded through every die that worker
/// processes.
///
/// This is how per-run setup (a cloned sensor prototype with its design
/// bands and characterized model already built, scratch buffers, …) is
/// amortized across dies without requiring the context to be `Send`:
/// the context never crosses a thread boundary. Determinism is unchanged —
/// die `i` still sees exactly `die_rng(base_seed, i)` and the context must
/// not leak state between dies in any result-visible way.
pub fn run_parallel_with<C, T, FI, F>(cfg: &McConfig, init: FI, f: F) -> Vec<T>
where
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut Pcg64) -> T + Sync,
{
    let threads = cfg.effective_threads().max(1).min(cfg.n_dies.max(1));
    if cfg.n_dies == 0 {
        return Vec::new();
    }
    // Hoist the per-die loop invariants (seed base, die count) out of the
    // dispatch loops — `die_rng` then only pays the per-index mix.
    let n = cfg.n_dies as u64;
    let base = cfg.base_seed;
    if threads == 1 {
        let mut ctx = init();
        let mut out = Vec::with_capacity(cfg.n_dies);
        for i in 0..n {
            let mut rng = die_rng(base, i);
            out.push(f(&mut ctx, i, &mut rng));
        }
        return out;
    }

    // Work distribution: a shared atomic cursor hands out die indices one at
    // a time, so fast workers naturally steal load from slow ones. Workers
    // buffer results locally (pre-sized for an even share; stealing beyond
    // it grows the buffer, never the critical section) and merge under the
    // mutex once, at exit.
    let per_worker = cfg.n_dies / threads + 1;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(cfg.n_dies));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut ctx = init();
                let mut local: Vec<(u64, T)> = Vec::with_capacity(per_worker);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut rng = die_rng(base, i);
                    local.push((i, f(&mut ctx, i, &mut rng)));
                }
                results
                    .lock()
                    .expect("monte-carlo result mutex poisoned")
                    .extend(local);
            });
        }
    });

    let mut out = results
        .into_inner()
        .expect("monte-carlo result mutex poisoned");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, t)| t).collect()
}

/// Per-worker execution report returned by [`run_parallel_metered`]: the
/// worker's context handed back after the run (e.g. a scratch workspace
/// carrying a metrics registry), how many dies it processed, and the
/// wall-clock time it spent in its processing loop.
///
/// Die results are deterministic; the *partition* of dies across workers and
/// the `busy` durations are scheduling-dependent, so reports are diagnostic
/// data — fold anything you aggregate from them with order-insensitive
/// operations (integer sums, maxima).
#[derive(Debug)]
pub struct WorkerReport<C> {
    /// The worker's context, returned after its last die.
    pub ctx: C,
    /// Number of dies this worker processed.
    pub dies: u64,
    /// Wall-clock time the worker spent in its processing loop.
    pub busy: Duration,
}

/// [`run_parallel_with`] plus per-worker execution reports, for observability.
///
/// Die results are **bit-identical** to [`run_parallel_with`] — the same
/// cursor-based work distribution and the same `die_rng(base_seed, i)`
/// per-die streams; the metering only reads a monotonic clock around each
/// worker's loop. Unlike [`run_parallel_with`], the context must be `Send`
/// so it can be handed back to the caller after the run. Reports come back
/// in no particular order, one per worker that ran (at most `threads`).
pub fn run_parallel_metered<C, T, FI, F>(
    cfg: &McConfig,
    init: FI,
    f: F,
) -> (Vec<T>, Vec<WorkerReport<C>>)
where
    C: Send,
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut Pcg64) -> T + Sync,
{
    let threads = cfg.effective_threads().max(1).min(cfg.n_dies.max(1));
    if cfg.n_dies == 0 {
        return (Vec::new(), Vec::new());
    }
    let n = cfg.n_dies as u64;
    let base = cfg.base_seed;
    if threads == 1 {
        let start = Instant::now();
        let mut ctx = init();
        let mut out = Vec::with_capacity(cfg.n_dies);
        for i in 0..n {
            let mut rng = die_rng(base, i);
            out.push(f(&mut ctx, i, &mut rng));
        }
        let report = WorkerReport {
            ctx,
            dies: n,
            busy: start.elapsed(),
        };
        return (out, vec![report]);
    }

    let per_worker = cfg.n_dies / threads + 1;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(cfg.n_dies));
    let reports: Mutex<Vec<WorkerReport<C>>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let start = Instant::now();
                let mut ctx = init();
                let mut dies = 0u64;
                let mut local: Vec<(u64, T)> = Vec::with_capacity(per_worker);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut rng = die_rng(base, i);
                    local.push((i, f(&mut ctx, i, &mut rng)));
                    dies += 1;
                }
                let busy = start.elapsed();
                results
                    .lock()
                    .expect("monte-carlo result mutex poisoned")
                    .extend(local);
                reports
                    .lock()
                    .expect("monte-carlo report mutex poisoned")
                    .push(WorkerReport { ctx, dies, busy });
            });
        }
    });

    let mut out = results
        .into_inner()
        .expect("monte-carlo result mutex poisoned");
    out.sort_by_key(|(i, _)| *i);
    let reports = reports
        .into_inner()
        .expect("monte-carlo report mutex poisoned");
    (out.into_iter().map(|(_, t)| t).collect(), reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_rng::Rng;

    #[test]
    fn results_in_die_order() {
        let out = run_parallel(&McConfig::new(100, 7), |i, _| i * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut one = McConfig::new(64, 99);
        one.threads = 1;
        let mut four = McConfig::new(64, 99);
        four.threads = 4;
        let f = |_i: u64, rng: &mut Pcg64| rng.gen::<u64>();
        assert_eq!(run_parallel(&one, f), run_parallel(&four, f));
    }

    #[test]
    fn different_dies_get_different_streams() {
        let out = run_parallel(&McConfig::new(32, 5), |_, rng| rng.gen::<u64>());
        let unique: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(unique.len(), out.len());
    }

    #[test]
    fn different_base_seeds_differ() {
        let a = run_parallel(&McConfig::new(8, 1), |_, rng| rng.gen::<u64>());
        let b = run_parallel(&McConfig::new(8, 2), |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn zero_dies_is_empty() {
        let out = run_parallel(&McConfig::new(0, 1), |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_dies_is_fine() {
        let mut cfg = McConfig::new(3, 11);
        cfg.threads = 16;
        let out = run_parallel(&cfg, |i, _| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn per_worker_context_matches_plain_run() {
        // A context that is genuinely reused across dies must not perturb
        // results or ordering.
        let mut one = McConfig::new(40, 3);
        one.threads = 1;
        let mut four = McConfig::new(40, 3);
        four.threads = 4;
        let plain = run_parallel(&four, |i, rng| (i, rng.gen::<u64>()));
        let with_ctx = run_parallel_with(
            &one,
            || 0u64,
            |calls, i, rng| {
                *calls += 1;
                (i, rng.gen::<u64>())
            },
        );
        assert_eq!(plain, with_ctx);
    }

    #[test]
    fn metered_results_match_unmetered_bit_for_bit() {
        let mut cfg = McConfig::new(48, 21);
        cfg.threads = 4;
        let plain = run_parallel_with(&cfg, || 0u64, |_, i, rng| (i, rng.gen::<u64>()));
        let (metered, reports) =
            run_parallel_metered(&cfg, || 0u64, |_, i, rng| (i, rng.gen::<u64>()));
        assert_eq!(plain, metered);
        assert!(!reports.is_empty() && reports.len() <= 4);
        assert_eq!(reports.iter().map(|r| r.dies).sum::<u64>(), 48);
    }

    #[test]
    fn metered_single_thread_returns_one_report_with_context() {
        let mut cfg = McConfig::new(5, 9);
        cfg.threads = 1;
        let (out, reports) = run_parallel_metered(
            &cfg,
            || 0u64,
            |calls, i, _| {
                *calls += 1;
                i
            },
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].dies, 5);
        assert_eq!(reports[0].ctx, 5);
    }

    #[test]
    fn metered_zero_dies_is_empty() {
        let (out, reports) = run_parallel_metered(&McConfig::new(0, 1), || (), |(), i, _| i);
        assert!(out.is_empty());
        assert!(reports.is_empty());
    }

    #[test]
    fn mix_seed_spreads_consecutive_indices() {
        let a = mix_seed(0, 0);
        let b = mix_seed(0, 1);
        assert_ne!(a, b);
        // Hamming distance should be substantial for an avalanche mixer.
        assert!((a ^ b).count_ones() > 10);
    }
}
