//! Parallel Monte-Carlo driver.
//!
//! Runs a per-die closure across a pool of scoped `std::thread` workers with
//! *deterministic* per-die seeding: die `i` always sees the same RNG stream
//! regardless of thread count or scheduling, so experiment results are
//! reproducible and bisectable. Zero external dependencies — work
//! distribution is a lock-free atomic cursor and result collection a
//! `std::sync::Mutex`.

use ptsim_rng::{Pcg64, SplitMix64};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Recovers the guarded data from a possibly-poisoned mutex.
///
/// The per-die closures run *outside* every lock, and the merge-side
/// critical sections only move already-computed data, so a poisoned lock
/// carries no torn state — recovering it reports the panic that poisoned it
/// through the panicking worker itself (via [`std::thread::scope`] or
/// [`run_parallel_caught`]) instead of cascading a second panic into every
/// surviving worker, which is how one bad die used to take the whole
/// campaign down.
fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of dies to simulate.
    pub n_dies: usize,
    /// Base seed; die `i` derives its stream from `(base_seed, i)`.
    pub base_seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub threads: usize,
}

impl McConfig {
    /// `n_dies` dies with a fixed seed and automatic thread count.
    #[must_use]
    pub fn new(n_dies: usize, base_seed: u64) -> Self {
        McConfig {
            n_dies,
            base_seed,
            threads: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig::new(1000, 0x5eed_cafe)
    }
}

/// SplitMix64 finalizer — decorrelates per-die seeds derived from
/// `(base_seed, index)`.
fn mix_seed(base: u64, index: u64) -> u64 {
    SplitMix64::finalize(base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Deterministic RNG for die `index` of a run seeded with `base`.
#[must_use]
pub fn die_rng(base: u64, index: u64) -> Pcg64 {
    Pcg64::seed_from_u64(mix_seed(base, index))
}

/// Deterministic root seed of die `index`'s counter-based within-die field
/// draws (the sparse batch-sampling discipline; see
/// `ptsim_mc::model::DieSampler::sample_die_sparse`). Salted so it is
/// decorrelated from the same die's [`die_rng`] stream.
#[must_use]
pub fn die_field_seed(base: u64, index: u64) -> u64 {
    mix_seed(base ^ 0xa02f_7c57_115e_6f1d, index)
}

/// Runs `f(die_index, rng)` for every die, in parallel, and returns results
/// in die order.
///
/// The closure must be `Sync` because it is shared across workers; results
/// must be `Send`. Each invocation receives a deterministic, independent RNG,
/// so the output is bit-identical for any `threads` setting (see
/// `tests/determinism.rs` at the workspace root).
///
/// ```
/// use ptsim_mc::driver::{run_parallel, McConfig};
/// use ptsim_rng::Rng;
///
/// let out = run_parallel(&McConfig::new(8, 42), |i, rng| {
///     (i, rng.gen::<u32>())
/// });
/// assert_eq!(out.len(), 8);
/// assert!(out.iter().enumerate().all(|(i, (j, _))| i as u64 == *j));
/// ```
pub fn run_parallel<T, F>(cfg: &McConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut Pcg64) -> T + Sync,
{
    run_parallel_with(cfg, || (), |(), i, rng| f(i, rng))
}

/// [`run_parallel`] with a per-worker context: `init()` runs once on each
/// worker thread and its result is threaded through every die that worker
/// processes.
///
/// This is how per-run setup (a cloned sensor prototype with its design
/// bands and characterized model already built, scratch buffers, …) is
/// amortized across dies without requiring the context to be `Send`:
/// the context never crosses a thread boundary. Determinism is unchanged —
/// die `i` still sees exactly `die_rng(base_seed, i)` and the context must
/// not leak state between dies in any result-visible way.
pub fn run_parallel_with<C, T, FI, F>(cfg: &McConfig, init: FI, f: F) -> Vec<T>
where
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut Pcg64) -> T + Sync,
{
    let threads = cfg.effective_threads().max(1).min(cfg.n_dies.max(1));
    if cfg.n_dies == 0 {
        return Vec::new();
    }
    // Hoist the per-die loop invariants (seed base, die count) out of the
    // dispatch loops — `die_rng` then only pays the per-index mix.
    let n = cfg.n_dies as u64;
    let base = cfg.base_seed;
    if threads == 1 {
        let mut ctx = init();
        let mut out = Vec::with_capacity(cfg.n_dies);
        for i in 0..n {
            let mut rng = die_rng(base, i);
            out.push(f(&mut ctx, i, &mut rng));
        }
        return out;
    }

    // Work distribution: a shared atomic cursor hands out die indices one at
    // a time, so fast workers naturally steal load from slow ones. Workers
    // buffer results locally (pre-sized for an even share; stealing beyond
    // it grows the buffer, never the critical section) and merge under the
    // mutex once, at exit.
    let per_worker = cfg.n_dies / threads + 1;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(cfg.n_dies));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut ctx = init();
                let mut local: Vec<(u64, T)> = Vec::with_capacity(per_worker);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut rng = die_rng(base, i);
                    local.push((i, f(&mut ctx, i, &mut rng)));
                }
                recover(results.lock()).extend(local);
            });
        }
    });

    let mut out = recover(results.into_inner());
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, t)| t).collect()
}

/// [`run_parallel_with`] over fixed-size *chunks* of consecutive dies: the
/// closure receives `(ctx, start_die, len, out)` and must push exactly
/// `len` results for dies `start_die .. start_die + len`, in die order,
/// deriving each die's stream itself via [`die_rng`]`(cfg.base_seed, i)`.
///
/// Work is distributed by *chunk index*, so the partition of dies into
/// chunks — and therefore anything chunk-shaped the closure computes, like
/// a lane-parallel solve across the chunk — is **identical for every
/// `threads` setting**: determinism holds chunk-wise, not just die-wise.
/// The final chunk is short when `n_dies` is not a multiple of `chunk`.
///
/// # Panics
///
/// Panics if `chunk` is zero or the closure pushes a wrong result count.
pub fn run_parallel_chunked_with<C, T, FI, F>(
    cfg: &McConfig,
    chunk: usize,
    init: FI,
    f: F,
) -> Vec<T>
where
    C: Send,
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, usize, &mut Vec<T>) + Sync,
{
    run_parallel_chunked_metered(cfg, chunk, init, f).0
}

/// [`run_parallel_chunked_with`] plus per-worker execution reports (see
/// [`run_parallel_metered`]) — `dies` counts dies, not chunks.
///
/// # Panics
///
/// Panics if `chunk` is zero or the closure pushes a wrong result count.
pub fn run_parallel_chunked_metered<C, T, FI, F>(
    cfg: &McConfig,
    chunk: usize,
    init: FI,
    f: F,
) -> (Vec<T>, Vec<WorkerReport<C>>)
where
    C: Send,
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, usize, &mut Vec<T>) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if cfg.n_dies == 0 {
        return (Vec::new(), Vec::new());
    }
    let n = cfg.n_dies as u64;
    let chunk_u = chunk as u64;
    let n_chunks = cfg.n_dies.div_ceil(chunk);
    let threads = cfg.effective_threads().max(1).min(n_chunks);
    // Runs the chunks handed out by `take` on one worker, pushing
    // `(start_die, results)` pairs into `local`.
    let run_chunks =
        |ctx: &mut C, local: &mut Vec<(u64, Vec<T>)>, take: &dyn Fn() -> u64, dies: &mut u64| {
            let mut buf: Vec<T> = Vec::with_capacity(chunk);
            loop {
                let c = take();
                if c >= n_chunks as u64 {
                    break;
                }
                let start = c * chunk_u;
                let len = chunk_u.min(n - start) as usize;
                buf.clear();
                f(ctx, start, len, &mut buf);
                assert_eq!(buf.len(), len, "chunk closure must push one result per die");
                *dies += len as u64;
                local.push((
                    start,
                    std::mem::replace(&mut buf, Vec::with_capacity(chunk)),
                ));
            }
        };

    if threads == 1 {
        let start_t = Instant::now();
        let mut ctx = init();
        let mut local: Vec<(u64, Vec<T>)> = Vec::with_capacity(n_chunks);
        let mut dies = 0u64;
        let cursor = std::cell::Cell::new(0u64);
        run_chunks(
            &mut ctx,
            &mut local,
            &|| {
                let c = cursor.get();
                cursor.set(c + 1);
                c
            },
            &mut dies,
        );
        let report = WorkerReport {
            ctx,
            dies,
            busy: start_t.elapsed(),
        };
        let mut out = Vec::with_capacity(cfg.n_dies);
        for (_, mut chunk_results) in local {
            out.append(&mut chunk_results);
        }
        return (out, vec![report]);
    }

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let reports: Mutex<Vec<WorkerReport<C>>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let start_t = Instant::now();
                let mut ctx = init();
                let mut local: Vec<(u64, Vec<T>)> = Vec::new();
                let mut dies = 0u64;
                run_chunks(
                    &mut ctx,
                    &mut local,
                    &|| next.fetch_add(1, Ordering::Relaxed),
                    &mut dies,
                );
                let busy = start_t.elapsed();
                recover(results.lock()).extend(local);
                recover(reports.lock()).push(WorkerReport { ctx, dies, busy });
            });
        }
    });

    let mut merged = recover(results.into_inner());
    merged.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(cfg.n_dies);
    for (_, mut chunk_results) in merged {
        out.append(&mut chunk_results);
    }
    let reports = recover(reports.into_inner());
    (out, reports)
}

/// Per-worker execution report returned by [`run_parallel_metered`]: the
/// worker's context handed back after the run (e.g. a scratch workspace
/// carrying a metrics registry), how many dies it processed, and the
/// wall-clock time it spent in its processing loop.
///
/// Die results are deterministic; the *partition* of dies across workers and
/// the `busy` durations are scheduling-dependent, so reports are diagnostic
/// data — fold anything you aggregate from them with order-insensitive
/// operations (integer sums, maxima).
#[derive(Debug)]
pub struct WorkerReport<C> {
    /// The worker's context, returned after its last die.
    pub ctx: C,
    /// Number of dies this worker processed.
    pub dies: u64,
    /// Wall-clock time the worker spent in its processing loop.
    pub busy: Duration,
}

/// [`run_parallel_with`] plus per-worker execution reports, for observability.
///
/// Die results are **bit-identical** to [`run_parallel_with`] — the same
/// cursor-based work distribution and the same `die_rng(base_seed, i)`
/// per-die streams; the metering only reads a monotonic clock around each
/// worker's loop. Unlike [`run_parallel_with`], the context must be `Send`
/// so it can be handed back to the caller after the run. Reports come back
/// in no particular order, one per worker that ran (at most `threads`).
pub fn run_parallel_metered<C, T, FI, F>(
    cfg: &McConfig,
    init: FI,
    f: F,
) -> (Vec<T>, Vec<WorkerReport<C>>)
where
    C: Send,
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut Pcg64) -> T + Sync,
{
    let threads = cfg.effective_threads().max(1).min(cfg.n_dies.max(1));
    if cfg.n_dies == 0 {
        return (Vec::new(), Vec::new());
    }
    let n = cfg.n_dies as u64;
    let base = cfg.base_seed;
    if threads == 1 {
        let start = Instant::now();
        let mut ctx = init();
        let mut out = Vec::with_capacity(cfg.n_dies);
        for i in 0..n {
            let mut rng = die_rng(base, i);
            out.push(f(&mut ctx, i, &mut rng));
        }
        let report = WorkerReport {
            ctx,
            dies: n,
            busy: start.elapsed(),
        };
        return (out, vec![report]);
    }

    let per_worker = cfg.n_dies / threads + 1;
    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(cfg.n_dies));
    let reports: Mutex<Vec<WorkerReport<C>>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let start = Instant::now();
                let mut ctx = init();
                let mut dies = 0u64;
                let mut local: Vec<(u64, T)> = Vec::with_capacity(per_worker);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut rng = die_rng(base, i);
                    local.push((i, f(&mut ctx, i, &mut rng)));
                    dies += 1;
                }
                let busy = start.elapsed();
                recover(results.lock()).extend(local);
                recover(reports.lock()).push(WorkerReport { ctx, dies, busy });
            });
        }
    });

    let mut out = recover(results.into_inner());
    out.sort_by_key(|(i, _)| *i);
    let reports = recover(reports.into_inner());
    (out.into_iter().map(|(_, t)| t).collect(), reports)
}

/// One die's closure panicked inside [`run_parallel_caught`].
///
/// Carries the die index and the stringified panic payload, so a campaign
/// can report *which* die died and why while every other die's result still
/// arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Die whose closure panicked.
    pub die: u64,
    /// Stringified panic payload (`"<non-string panic payload>"` when the
    /// payload was neither `String` nor `&str`).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "die {} panicked: {}", self.die, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Stringifies a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`run_parallel_with`] with per-die panic isolation: a die whose closure
/// panics yields `Err(WorkerPanic)` in its slot while every other die's
/// result arrives untouched — one poisoned die no longer takes down the
/// whole campaign.
///
/// After a caught panic the worker's context is dropped and rebuilt with
/// `init()` before the next die, because an unwound closure may have left
/// it in a logically-torn state (half-updated caches, mid-conversion
/// scratch). Determinism of the surviving dies is unchanged — die `i` still
/// sees exactly `die_rng(base_seed, i)` and contexts never leak
/// result-visible state between dies.
pub fn run_parallel_caught<C, T, FI, F>(
    cfg: &McConfig,
    init: FI,
    f: F,
) -> Vec<Result<T, WorkerPanic>>
where
    T: Send,
    FI: Fn() -> C + Sync,
    F: Fn(&mut C, u64, &mut Pcg64) -> T + Sync,
{
    run_parallel_with(
        cfg,
        || None::<C>,
        |slot, i, rng| {
            let ctx = slot.get_or_insert_with(&init);
            match catch_unwind(AssertUnwindSafe(|| f(ctx, i, rng))) {
                Ok(t) => Ok(t),
                Err(payload) => {
                    let message = panic_message(&*payload);
                    // The context unwound mid-update; rebuild it for the
                    // next die rather than trusting torn state.
                    *slot = None;
                    Err(WorkerPanic { die: i, message })
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_rng::Rng;

    #[test]
    fn results_in_die_order() {
        let out = run_parallel(&McConfig::new(100, 7), |i, _| i * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut one = McConfig::new(64, 99);
        one.threads = 1;
        let mut four = McConfig::new(64, 99);
        four.threads = 4;
        let f = |_i: u64, rng: &mut Pcg64| rng.gen::<u64>();
        assert_eq!(run_parallel(&one, f), run_parallel(&four, f));
    }

    #[test]
    fn different_dies_get_different_streams() {
        let out = run_parallel(&McConfig::new(32, 5), |_, rng| rng.gen::<u64>());
        let unique: std::collections::HashSet<_> = out.iter().collect();
        assert_eq!(unique.len(), out.len());
    }

    #[test]
    fn different_base_seeds_differ() {
        let a = run_parallel(&McConfig::new(8, 1), |_, rng| rng.gen::<u64>());
        let b = run_parallel(&McConfig::new(8, 2), |_, rng| rng.gen::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn zero_dies_is_empty() {
        let out = run_parallel(&McConfig::new(0, 1), |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_dies_is_fine() {
        let mut cfg = McConfig::new(3, 11);
        cfg.threads = 16;
        let out = run_parallel(&cfg, |i, _| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn per_worker_context_matches_plain_run() {
        // A context that is genuinely reused across dies must not perturb
        // results or ordering.
        let mut one = McConfig::new(40, 3);
        one.threads = 1;
        let mut four = McConfig::new(40, 3);
        four.threads = 4;
        let plain = run_parallel(&four, |i, rng| (i, rng.gen::<u64>()));
        let with_ctx = run_parallel_with(
            &one,
            || 0u64,
            |calls, i, rng| {
                *calls += 1;
                (i, rng.gen::<u64>())
            },
        );
        assert_eq!(plain, with_ctx);
    }

    #[test]
    fn metered_results_match_unmetered_bit_for_bit() {
        let mut cfg = McConfig::new(48, 21);
        cfg.threads = 4;
        let plain = run_parallel_with(&cfg, || 0u64, |_, i, rng| (i, rng.gen::<u64>()));
        let (metered, reports) =
            run_parallel_metered(&cfg, || 0u64, |_, i, rng| (i, rng.gen::<u64>()));
        assert_eq!(plain, metered);
        assert!(!reports.is_empty() && reports.len() <= 4);
        assert_eq!(reports.iter().map(|r| r.dies).sum::<u64>(), 48);
    }

    #[test]
    fn metered_single_thread_returns_one_report_with_context() {
        let mut cfg = McConfig::new(5, 9);
        cfg.threads = 1;
        let (out, reports) = run_parallel_metered(
            &cfg,
            || 0u64,
            |calls, i, _| {
                *calls += 1;
                i
            },
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].dies, 5);
        assert_eq!(reports[0].ctx, 5);
    }

    #[test]
    fn metered_zero_dies_is_empty() {
        let (out, reports) = run_parallel_metered(&McConfig::new(0, 1), || (), |(), i, _| i);
        assert!(out.is_empty());
        assert!(reports.is_empty());
    }

    /// Silences the default panic-hook stderr spew for tests that inject
    /// panics on purpose, restoring the previous hook afterwards. The hook
    /// is process-global, so quiet sections are serialized.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let _guard = recover(HOOK_LOCK.lock());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(prev);
        r
    }

    #[test]
    fn caught_panic_reports_die_and_spares_the_rest() {
        // Regression for the cascade: one panicking conversion used to
        // unwind through the scope and (via the poisoned result mutex)
        // abort every surviving worker's merge. Now the bad die reports a
        // typed WorkerPanic and all other dies' results still arrive.
        with_quiet_panics(|| {
            let mut cfg = McConfig::new(64, 17);
            cfg.threads = 4;
            let out = run_parallel_caught(
                &cfg,
                || 0u64,
                |calls, i, rng| {
                    *calls += 1;
                    if i == 13 {
                        panic!("injected conversion failure on die {i}");
                    }
                    (i, rng.gen::<u64>())
                },
            );
            assert_eq!(out.len(), 64);
            let reference = run_parallel(&cfg, |i, rng| (i, rng.gen::<u64>()));
            for (i, slot) in out.iter().enumerate() {
                if i == 13 {
                    let p = slot.as_ref().unwrap_err();
                    assert_eq!(p.die, 13);
                    assert!(p.message.contains("die 13"), "{}", p.message);
                    assert!(p.to_string().contains("panicked"));
                } else {
                    // Surviving dies are bit-identical to an uncaught run.
                    assert_eq!(slot.as_ref().unwrap(), &reference[i]);
                }
            }
        });
    }

    #[test]
    fn caught_panic_rebuilds_worker_context() {
        with_quiet_panics(|| {
            let mut cfg = McConfig::new(10, 3);
            cfg.threads = 1;
            // The context counts dies since (re)build; a panic must reset it.
            let out = run_parallel_caught(
                &cfg,
                || 0u64,
                |since_init, i, _| {
                    *since_init += 1;
                    if i == 4 {
                        panic!("boom");
                    }
                    *since_init
                },
            );
            // Dies 0..=3 count 1..=4; die 4 panics; dies 5.. restart from 1.
            assert_eq!(out[3].as_ref().unwrap(), &4);
            assert!(out[4].is_err());
            assert_eq!(out[5].as_ref().unwrap(), &1);
            assert_eq!(out[9].as_ref().unwrap(), &5);
        });
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        with_quiet_panics(|| {
            let mut cfg = McConfig::new(1, 1);
            cfg.threads = 1;
            let out = run_parallel_caught(
                &cfg,
                || (),
                |(), _, _| -> u64 { std::panic::panic_any(42i32) },
            );
            assert_eq!(
                out[0].as_ref().unwrap_err().message,
                "<non-string panic payload>"
            );
        });
    }

    #[test]
    fn mix_seed_spreads_consecutive_indices() {
        let a = mix_seed(0, 0);
        let b = mix_seed(0, 1);
        assert_ne!(a, b);
        // Hamming distance should be substantial for an avalanche mixer.
        assert!((a ^ b).count_ones() > 10);
    }
}
