//! Streaming and batch statistics used by the Monte-Carlo driver and the
//! evaluation harness.

use std::fmt;

/// Numerically-stable streaming statistics (Welford's algorithm).
///
/// ```
/// use ptsim_mc::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Largest absolute observation (0 if empty).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min.abs().max(self.max.abs())
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4e} sd={:.4e} min={:.4e} max={:.4e}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-bin histogram over a closed range; out-of-range samples are clamped
/// into the edge bins and counted separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    under: u64,
    over: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            under: 0,
            over: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.under += 1;
            self.bins[0] += 1;
        } else if x >= self.hi {
            self.over += 1;
            let last = self.bins.len() - 1;
            self.bins[last] += 1;
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            let idx = ((f * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations clamped from below / above the range.
    #[must_use]
    pub fn clamped(&self) -> (u64, u64) {
        (self.under, self.over)
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Renders a fixed-width ASCII bar chart (one line per bin).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            out.push_str(&format!(
                "{:>10.4} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the data by linear interpolation.
/// The input slice is sorted in place.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile_in_place(data: &mut [f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    data.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (data.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < data.len() {
        data[i] * (1.0 - frac) + data[i + 1] * frac
    } else {
        data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let a: OnlineStats = xs[..37].iter().copied().collect();
        let mut b: OnlineStats = xs[37..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-10);
        assert!((b.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(b.min(), all.min());
        assert_eq!(b.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn max_abs_considers_both_tails() {
        let s: OnlineStats = [-3.0, 1.0, 2.0].iter().copied().collect();
        assert_eq!(s.max_abs(), 3.0);
        assert_eq!(OnlineStats::new().max_abs(), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -5.0, 20.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -5.0
        assert_eq!(h.counts()[1], 2); // 1.5, 1.6
        assert_eq!(h.counts()[9], 2); // 9.9 and clamped 20.0
        assert_eq!(h.clamped(), (1, 1));
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.push(0.5);
        h.push(1.5);
        h.push(1.6);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_in_place(&mut data, 0.0), 1.0);
        assert_eq!(quantile_in_place(&mut data, 1.0), 4.0);
        assert!((quantile_in_place(&mut data, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s: OnlineStats = [1.0].iter().copied().collect();
        assert!(format!("{s}").contains("n=1"));
    }
}
