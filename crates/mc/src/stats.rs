//! Streaming and batch statistics used by the Monte-Carlo driver and the
//! evaluation harness.

use std::fmt;

/// Numerically-stable streaming statistics (Welford's algorithm).
///
/// ```
/// use ptsim_mc::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Largest absolute observation (0 if empty).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min.abs().max(self.max.abs())
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4e} sd={:.4e} min={:.4e} max={:.4e}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-bin histogram over a closed range.
///
/// Out-of-range samples are **clamped into the edge bins** — they land in
/// `counts()[0]` (below the range) or the last bin (at or above the range)
/// like any other observation — and are *additionally* tallied in the
/// under/over clamp counters so callers can see how much of the data fell
/// outside the range. The invariants are therefore:
///
/// * `counts().iter().sum::<u64>() == total()` — every observation lands in
///   exactly one bin, clamped or not;
/// * `clamped().0 + clamped().1` is the number of clamped observations —
///   the clamp counters annotate the edge bins, they do not exclude clamped
///   samples from `counts()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    under: u64,
    over: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            under: 0,
            over: 0,
            total: 0,
        }
    }

    /// Adds one observation. Out-of-range samples are clamped into the
    /// nearest edge bin *and* tallied in [`Histogram::clamped`]; see the
    /// type-level invariants.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.under += 1;
            self.bins[0] += 1;
        } else if x >= self.hi {
            self.over += 1;
            let last = self.bins.len() - 1;
            self.bins[last] += 1;
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            let idx = ((f * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations clamped from below / above the range. Clamped
    /// observations are *also* counted in the edge bins (see the type-level
    /// invariants).
    #[must_use]
    pub fn clamped(&self) -> (u64, u64) {
        (self.under, self.over)
    }

    /// The `(lo, hi)` range the bins span.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Adds another histogram's counts bin-wise (parallel reduction). Both
    /// histograms must have the identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram merge requires identical range and bin count"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += *b;
        }
        self.under += other.under;
        self.over += other.over;
        self.total += other.total;
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Renders a fixed-width ASCII bar chart (one line per bin). Bar length
    /// scales linearly with the bin count (any non-zero count draws at least
    /// one `#`, the peak bin draws exactly `width`), computed in f64 so
    /// counts near `u64::MAX` neither overflow nor truncate on 32-bit
    /// targets.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let scaled = (c as f64 * width as f64 / peak as f64).ceil() as usize;
            let bar = "#".repeat(scaled.min(width));
            out.push_str(&format!(
                "{:>10.4} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c,
                width = width
            ));
        }
        out
    }
}

/// Why a quantile could not be computed.
///
/// A campaign-wide percentile must not abort the campaign because one sample
/// went bad: every failure mode is typed so the caller can decide whether to
/// drop the batch, flag it, or propagate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The input slice was empty.
    EmptyData,
    /// The requested quantile was outside `[0, 1]` (or NaN).
    BadQuantile(f64),
    /// A sample was NaN — the order statistics of the batch are undefined.
    /// `index` is the position of the first NaN in the (unsorted) input.
    NanSample {
        /// Position of the first NaN in the input slice.
        index: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyData => write!(f, "quantile of empty data"),
            StatsError::BadQuantile(q) => write!(f, "quantile {q} outside [0, 1]"),
            StatsError::NanSample { index } => {
                write!(f, "NaN sample at index {index} in quantile input")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the data by linear interpolation.
/// The input slice is sorted in place.
///
/// # Errors
///
/// Returns a typed [`StatsError`] — never panics — when the data is empty,
/// `q` is outside `[0, 1]`, or any sample is NaN (one bad sample mid-campaign
/// surfaces as a recoverable error, not an abort). Infinities are ordered
/// normally and need no special casing.
pub fn quantile_in_place(data: &mut [f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::BadQuantile(q));
    }
    if let Some(index) = data.iter().position(|x| x.is_nan()) {
        return Err(StatsError::NanSample { index });
    }
    data.sort_by(f64::total_cmp);
    let pos = q * (data.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    Ok(if i + 1 < data.len() {
        data[i] * (1.0 - frac) + data[i + 1] * frac
    } else {
        data[i]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let all: OnlineStats = xs.iter().copied().collect();
        let a: OnlineStats = xs[..37].iter().copied().collect();
        let mut b: OnlineStats = xs[37..].iter().copied().collect();
        b.merge(&a);
        assert_eq!(b.count(), all.count());
        assert!((b.mean() - all.mean()).abs() < 1e-10);
        assert!((b.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(b.min(), all.min());
        assert_eq!(b.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn max_abs_considers_both_tails() {
        let s: OnlineStats = [-3.0, 1.0, 2.0].iter().copied().collect();
        assert_eq!(s.max_abs(), 3.0);
        assert_eq!(OnlineStats::new().max_abs(), 0.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -5.0, 20.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -5.0
        assert_eq!(h.counts()[1], 2); // 1.5, 1.6
        assert_eq!(h.counts()[9], 2); // 9.9 and clamped 20.0
        assert_eq!(h.clamped(), (1, 1));
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.push(0.5);
        h.push(1.5);
        h.push(1.6);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn render_survives_huge_counts() {
        // Regression: the bar width used to be computed as
        // `(c as usize * width)`, which overflows for counts anywhere near
        // u64::MAX (and truncates on 32-bit targets). The scaling is now
        // done in f64.
        let h = Histogram {
            lo: 0.0,
            hi: 3.0,
            bins: vec![u64::MAX / 2, u64::MAX / 4, 0],
            under: 0,
            over: 0,
            total: u64::MAX / 2 + u64::MAX / 4,
        };
        let bars: Vec<usize> = h
            .render(40)
            .lines()
            .map(|l| l.chars().filter(|&ch| ch == '#').count())
            .collect();
        assert_eq!(bars, vec![40, 20, 0]);
    }

    ptsim_rng::forall! {
        #[test]
        fn render_bar_width_is_monotone_and_bounded(
            counts in ptsim_rng::check::vec_in(0u64..u64::MAX, 2..12),
            width in 1usize..60,
        ) {
            let h = Histogram {
                lo: 0.0,
                hi: counts.len() as f64,
                total: 0, // render never reads totals; counts are arbitrary
                under: 0,
                over: 0,
                bins: counts.clone(),
            };
            let bars: Vec<usize> = h
                .render(width)
                .lines()
                .map(|l| l.chars().filter(|&ch| ch == '#').count())
                .collect();
            assert_eq!(bars.len(), counts.len());
            let peak = counts.iter().copied().max().unwrap();
            for (&c, &b) in counts.iter().zip(&bars) {
                assert!(b <= width, "bar {b} exceeds width {width}");
                assert_eq!(b == 0, c == 0, "non-zero count must draw a bar");
                if c == peak && peak > 0 {
                    assert_eq!(b, width, "peak bin must fill the width");
                }
            }
            // Monotone: a larger count never draws a shorter bar.
            for (&ca, &ba) in counts.iter().zip(&bars) {
                for (&cb, &bb) in counts.iter().zip(&bars) {
                    assert!(ca > cb || ba <= bb || ca == cb,
                        "count {ca} drew {ba} but count {cb} drew {bb}");
                }
            }
        }

        #[test]
        fn push_counts_every_sample_exactly_once(
            xs in ptsim_rng::check::vec_in(-50.0f64..150.0, 1..64),
        ) {
            // The documented invariants: every observation (clamped or not)
            // lands in exactly one bin, and the clamp counters annotate the
            // edge bins rather than excluding samples from counts().
            let mut h = Histogram::new(0.0, 100.0, 10);
            for &x in &xs {
                h.push(x);
            }
            assert_eq!(h.counts().iter().sum::<u64>(), h.total());
            assert_eq!(h.total(), xs.len() as u64);
            let (under, over) = h.clamped();
            assert_eq!(under, xs.iter().filter(|&&x| x < 0.0).count() as u64);
            assert_eq!(over, xs.iter().filter(|&&x| x >= 100.0).count() as u64);
        }

        #[test]
        fn histogram_merge_equals_sequential(
            xs in ptsim_rng::check::vec_in(-1.0f64..11.0, 2..64),
            frac in 0.0f64..1.0,
        ) {
            let fill = |stream: &[f64]| {
                let mut h = Histogram::new(0.0, 10.0, 8);
                for &x in stream {
                    h.push(x);
                }
                h
            };
            let split = (frac * xs.len() as f64) as usize;
            let mut merged = fill(&xs[..split]);
            merged.merge(&fill(&xs[split..]));
            assert_eq!(merged, fill(&xs));
        }
    }

    #[test]
    #[should_panic(expected = "identical range")]
    fn histogram_merge_rejects_mismatched_config() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 2.0, 4));
    }

    #[test]
    fn quantiles_interpolate() {
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_in_place(&mut data, 0.0), Ok(1.0));
        assert_eq!(quantile_in_place(&mut data, 1.0), Ok(4.0));
        assert!((quantile_in_place(&mut data, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_failure_modes_are_typed() {
        assert_eq!(quantile_in_place(&mut [], 0.5), Err(StatsError::EmptyData));
        assert_eq!(
            quantile_in_place(&mut [1.0], 1.5),
            Err(StatsError::BadQuantile(1.5))
        );
        assert!(matches!(
            quantile_in_place(&mut [1.0], f64::NAN),
            Err(StatsError::BadQuantile(q)) if q.is_nan()
        ));
        assert_eq!(
            quantile_in_place(&mut [1.0, f64::NAN, 3.0], 0.5),
            Err(StatsError::NanSample { index: 1 })
        );
        assert!(StatsError::NanSample { index: 1 }.to_string().contains("1"));
    }

    #[test]
    fn quantile_orders_infinities() {
        let mut data = vec![f64::INFINITY, 0.0, f64::NEG_INFINITY];
        assert_eq!(quantile_in_place(&mut data, 0.0), Ok(f64::NEG_INFINITY));
        assert_eq!(quantile_in_place(&mut data, 1.0), Ok(f64::INFINITY));
    }

    #[test]
    fn display_is_nonempty() {
        let s: OnlineStats = [1.0].iter().copied().collect();
        assert!(format!("{s}").contains("n=1"));
    }
}
