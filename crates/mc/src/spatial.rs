//! Within-die spatially-correlated variation fields.
//!
//! Within-die (WID) threshold variation is not white noise: neighbouring
//! devices see correlated shifts (shared lithography/anneal gradients) plus
//! an uncorrelated local-mismatch component. We model this with the standard
//! two-layer construction: a coarse Gaussian grid, bilinearly interpolated
//! across the die (the correlated layer), plus independent per-cell noise,
//! mixed so the total variance equals `sigma²`.

use crate::gaussian::standard_normal;
use ptsim_rng::{Rng, SplitMix64};

/// Configuration of a within-die variation field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialConfig {
    /// Fine-grid resolution in X (cells across the die).
    pub nx: usize,
    /// Fine-grid resolution in Y.
    pub ny: usize,
    /// Total standard deviation of the field.
    pub sigma: f64,
    /// Correlation length as a fraction of the die edge (0 < ℓ ≤ 1).
    pub correlation_length: f64,
    /// Fraction of the variance carried by the spatially-correlated layer
    /// (the rest is uncorrelated local mismatch). Must be in `[0, 1]`.
    pub correlated_fraction: f64,
}

impl SpatialConfig {
    /// Default field for threshold variation on a sensor-scale die.
    #[must_use]
    pub fn vt_default(sigma: f64) -> Self {
        SpatialConfig {
            nx: 16,
            ny: 16,
            sigma,
            correlation_length: 0.4,
            correlated_fraction: 0.5,
        }
    }

    fn validate(&self) {
        assert!(self.nx >= 1 && self.ny >= 1, "grid must be at least 1x1");
        assert!(self.sigma >= 0.0, "sigma must be non-negative");
        assert!(
            self.correlation_length > 0.0 && self.correlation_length <= 1.0,
            "correlation length must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.correlated_fraction),
            "correlated fraction must be in [0, 1]"
        );
    }
}

impl Default for SpatialConfig {
    fn default() -> Self {
        SpatialConfig::vt_default(1.0)
    }
}

/// A realized spatial field over normalized die coordinates `[0,1]²`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialField {
    nx: usize,
    ny: usize,
    values: Vec<f64>,
}

impl SpatialField {
    /// Generates a field realization.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is malformed (zero grid, negative sigma, correlation
    /// parameters out of range).
    pub fn generate<R: Rng + ?Sized>(cfg: &SpatialConfig, rng: &mut R) -> Self {
        SpatialStencil::new(cfg).generate(rng)
    }

    /// A field that is identically zero (used for corner-only dies).
    #[must_use]
    pub fn zero(nx: usize, ny: usize) -> Self {
        SpatialField {
            nx,
            ny,
            values: vec![0.0; nx * ny],
        }
    }

    /// Field value at a fine-grid cell.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn cell(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        self.values[iy * self.nx + ix]
    }

    /// Bilinear sample at normalized die coordinates (clamped to `[0,1]`).
    #[must_use]
    pub fn at(&self, x: f64, y: f64) -> f64 {
        bilinear(
            &self.values,
            self.nx,
            self.ny,
            x.clamp(0.0, 1.0),
            y.clamp(0.0, 1.0),
        )
    }

    /// Grid resolution `(nx, ny)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Mean of all cells.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// The set of fine-grid cells a workload will actually read from a
/// [`SpatialField`], built from the normalized coordinates it samples
/// through [`SpatialField::at`]. Each read point marks the (up to) four
/// grid nodes its bilinear interpolation touches, using the same
/// clamp/floor index math as the interpolator itself.
///
/// [`SpatialStencil::generate_sparse`] realizes only the marked cells;
/// see there for the counter-based sampling contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMask {
    nx: usize,
    ny: usize,
    needed: Vec<bool>,
}

impl FieldMask {
    /// An empty mask (no cell needed) over an `nx × ny` fine grid.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized grid.
    #[must_use]
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1, "grid must be at least 1x1");
        FieldMask {
            nx,
            ny,
            needed: vec![false; nx * ny],
        }
    }

    /// A mask covering bilinear reads at the given normalized points.
    #[must_use]
    pub fn for_reads(nx: usize, ny: usize, points: &[(f64, f64)]) -> Self {
        let mut mask = FieldMask::new(nx, ny);
        for &(x, y) in points {
            mask.mark_read(x, y);
        }
        mask
    }

    /// Marks the grid nodes a bilinear sample at `(x, y)` reads.
    pub fn mark_read(&mut self, x: f64, y: f64) {
        let (nx, ny) = (self.nx, self.ny);
        if nx == 1 && ny == 1 {
            self.needed[0] = true;
            return;
        }
        let x = x.clamp(0.0, 1.0);
        let y = y.clamp(0.0, 1.0);
        let gx = x * (nx - 1).max(1) as f64;
        let gy = y * (ny - 1).max(1) as f64;
        let x0 = (gx.floor() as usize).min(nx - 1);
        let y0 = (gy.floor() as usize).min(ny - 1);
        let x1 = (x0 + 1).min(nx - 1);
        let y1 = (y0 + 1).min(ny - 1);
        for (ix, iy) in [(x0, y0), (x1, y0), (x0, y1), (x1, y1)] {
            self.needed[iy * nx + ix] = true;
        }
    }

    /// Grid resolution `(nx, ny)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of cells marked as needed.
    #[must_use]
    pub fn needed_cells(&self) -> usize {
        self.needed.iter().filter(|&&b| b).count()
    }
}

/// Precomputed interpolation geometry of one fine-grid cell: the coarse
/// nodes it reads, their effective (edge-folded) bilinear weights, and the
/// unit-variance renormalization divisor — everything in
/// [`bilinear_unit_variance`] that does not depend on the grid values.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellStencil {
    idxs: [u32; 4],
    ws: [f64; 4],
    len: u8,
    /// `norm.max(1e-12)` — stored pre-clamped, used as the divisor verbatim.
    norm: f64,
}

impl CellStencil {
    /// The weight/norm computation of [`bilinear_unit_variance`], hoisted:
    /// pure grid geometry, identical for every die sampled from one
    /// [`SpatialConfig`].
    fn new(nx: usize, ny: usize, x: f64, y: f64) -> Self {
        if nx == 1 && ny == 1 {
            // The interpolator returns `grid[0]` untouched; weight 1 and
            // divisor 1 reproduce that exactly (`v * 1.0 / 1.0 == v`).
            return CellStencil {
                idxs: [0; 4],
                ws: [1.0, 0.0, 0.0, 0.0],
                len: 1,
                norm: 1.0,
            };
        }
        let gx = x * (nx - 1).max(1) as f64;
        let gy = y * (ny - 1).max(1) as f64;
        let x0 = (gx.floor() as usize).min(nx - 1);
        let y0 = (gy.floor() as usize).min(ny - 1);
        let x1 = (x0 + 1).min(nx - 1);
        let y1 = (y0 + 1).min(ny - 1);
        let tx = gx - x0 as f64;
        let ty = gy - y0 as f64;
        let (w00, w10, w01, w11) = (
            (1.0 - tx) * (1.0 - ty),
            tx * (1.0 - ty),
            (1.0 - tx) * ty,
            tx * ty,
        );
        // When x0==x1 (edge column) the two weights act on the same node;
        // fold them so the norm is computed over effective weights, in the
        // same first-seen order as the original list so sums stay
        // bit-identical.
        let mut idxs = [0u32; 4];
        let mut ws = [0.0f64; 4];
        let mut len = 0;
        for (idx, w) in [
            (y0 * nx + x0, w00),
            (y0 * nx + x1, w10),
            (y1 * nx + x0, w01),
            (y1 * nx + x1, w11),
        ] {
            if let Some(k) = idxs[..len].iter().position(|&i| i as usize == idx) {
                ws[k] += w;
            } else {
                idxs[len] = idx as u32;
                ws[len] = w;
                len += 1;
            }
        }
        let norm: f64 = ws[..len].iter().map(|w| w * w).sum::<f64>().sqrt();
        CellStencil {
            idxs,
            ws,
            len: len as u8,
            norm: norm.max(1e-12),
        }
    }

    /// Applies the stencil: the gather/renormalize half of
    /// [`bilinear_unit_variance`], with the same fold order.
    #[inline]
    fn apply(&self, grid: &[f64]) -> f64 {
        let len = self.len as usize;
        self.idxs[..len]
            .iter()
            .zip(&self.ws[..len])
            .map(|(&i, &w)| grid[i as usize] * w)
            .sum::<f64>()
            / self.norm
    }
}

/// Precomputed generator for [`SpatialField`]s of one [`SpatialConfig`].
///
/// [`SpatialField::generate`] recomputes the bilinear interpolation stencil
/// (node indices, edge-folded weights, unit-variance norms) for every fine
/// cell of every die, though the stencil is pure grid geometry — identical
/// across dies. A `SpatialStencil` hoists that work out of the per-die loop
/// and reuses one coarse-grid buffer across calls, so the per-die cost is
/// reduced to the Gaussian draws plus a short gather per cell.
///
/// **Bit-identity contract:** [`SpatialStencil::generate`] consumes the RNG
/// stream identically to — and produces fields bit-identical to — the
/// historical inline path ([`SpatialField::generate`] is now a thin wrapper
/// over a freshly-built stencil, so the two cannot drift apart).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialStencil {
    sigma: f64,
    nx: usize,
    ny: usize,
    n_coarse: usize,
    w_corr: f64,
    w_local: f64,
    cells: Vec<CellStencil>,
    /// Reused coarse-grid realization buffer (drawn afresh per die).
    coarse: Vec<f64>,
    /// Reused sparse-path scratch: which coarse nodes any masked cell reads.
    coarse_needed: Vec<bool>,
}

/// One draw of the counter-based field sampler: standard normal number
/// `draw` of the stream rooted at `field_seed`, computed on a throwaway
/// [`SplitMix64`] generator seeded by an avalanche mix of the pair. The
/// value is a pure function of `(field_seed, draw)` — no shared stream, no
/// ordering constraints — which is what lets [`SpatialStencil::generate_sparse`]
/// skip unread draws entirely instead of replaying them. A dedicated
/// generator per draw absorbs the variable word count of the polar
/// sampler's rejection loop.
fn field_normal(field_seed: u64, draw: u64) -> f64 {
    let mut rng = SplitMix64::new(SplitMix64::finalize(
        field_seed ^ draw.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    ));
    standard_normal(&mut rng)
}

impl SpatialStencil {
    /// Precomputes the generation stencil for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is malformed (zero grid, negative sigma, correlation
    /// parameters out of range).
    #[must_use]
    pub fn new(cfg: &SpatialConfig) -> Self {
        cfg.validate();
        // Coarse grid spacing ~ correlation length.
        let cnx = ((1.0 / cfg.correlation_length).ceil() as usize + 1).max(2);
        let cny = cnx;
        let mut cells = Vec::with_capacity(cfg.nx * cfg.ny);
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let fx = if cfg.nx == 1 {
                    0.5
                } else {
                    ix as f64 / (cfg.nx - 1) as f64
                };
                let fy = if cfg.ny == 1 {
                    0.5
                } else {
                    iy as f64 / (cfg.ny - 1) as f64
                };
                cells.push(CellStencil::new(cnx, cny, fx, fy));
            }
        }
        SpatialStencil {
            sigma: cfg.sigma,
            nx: cfg.nx,
            ny: cfg.ny,
            n_coarse: cnx * cny,
            w_corr: cfg.correlated_fraction.sqrt(),
            w_local: (1.0 - cfg.correlated_fraction).sqrt(),
            cells,
            coarse: Vec::new(),
            coarse_needed: Vec::new(),
        }
    }

    /// Generates a field realization — bit-identical to
    /// [`SpatialField::generate`] with the stencil's config, drawing the
    /// same RNG stream (coarse nodes first, then one local draw per fine
    /// cell, in row-major order).
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SpatialField {
        self.coarse.clear();
        self.coarse
            .extend((0..self.n_coarse).map(|_| standard_normal(rng)));
        let mut values = Vec::with_capacity(self.nx * self.ny);
        for cell in &self.cells {
            let c = cell.apply(&self.coarse);
            let l = standard_normal(rng);
            values.push(self.sigma * (self.w_corr * c + self.w_local * l));
        }
        SpatialField {
            nx: self.nx,
            ny: self.ny,
            values,
        }
    }

    /// [`SpatialStencil::generate`] restricted to the cells a [`FieldMask`]
    /// marks as read — the sparse form the batch conversion hot path uses,
    /// where only the few cells under the sensor bank sites are ever
    /// sampled.
    ///
    /// Unlike [`SpatialStencil::generate`], which draws the whole field
    /// from one sequential RNG stream, the sparse generator is
    /// **counter-based**: every coarse node and every fine cell owns draw
    /// index `k` of the stream rooted at `field_seed`, and its value is a
    /// pure function of `(field_seed, k)` (coarse node `k` uses index `k`;
    /// fine cell `c` uses index `n_coarse + c`). Draws nobody reads are
    /// therefore *never made* — unmarked cells store `0.0` and cost
    /// nothing, and coarse nodes outside every marked cell's bilinear
    /// support are skipped too. The marked values are independent of the
    /// mask: any two masks that both mark a cell realize it bit-identically
    /// from the same `field_seed`, so sparse populations are deterministic
    /// in `(field_seed)` alone, with no stream-position coupling between
    /// cells or dies.
    ///
    /// The field statistics match [`SpatialStencil::generate`] exactly in
    /// distribution (same two-layer construction, i.i.d. standard-normal
    /// coarse and local draws), but a given seed realizes *different*
    /// numbers than the sequential path — the two samplers define separate,
    /// individually-documented populations.
    ///
    /// # Panics
    ///
    /// Panics if the mask resolution differs from the stencil's.
    pub fn generate_sparse(&mut self, field_seed: u64, mask: &FieldMask) -> SpatialField {
        assert_eq!(
            (mask.nx, mask.ny),
            (self.nx, self.ny),
            "mask/stencil resolution mismatch"
        );
        self.coarse_needed.clear();
        self.coarse_needed.resize(self.n_coarse, false);
        for (cell, &needed) in self.cells.iter().zip(&mask.needed) {
            if needed {
                for &i in &cell.idxs[..cell.len as usize] {
                    self.coarse_needed[i as usize] = true;
                }
            }
        }
        self.coarse.clear();
        self.coarse.resize(self.n_coarse, 0.0);
        for k in 0..self.n_coarse {
            if self.coarse_needed[k] {
                self.coarse[k] = field_normal(field_seed, k as u64);
            }
        }
        let mut values = Vec::with_capacity(self.nx * self.ny);
        for (c_idx, (cell, &needed)) in self.cells.iter().zip(&mask.needed).enumerate() {
            if needed {
                let c = cell.apply(&self.coarse);
                let l = field_normal(field_seed, (self.n_coarse + c_idx) as u64);
                values.push(self.sigma * (self.w_corr * c + self.w_local * l));
            } else {
                values.push(0.0);
            }
        }
        SpatialField {
            nx: self.nx,
            ny: self.ny,
            values,
        }
    }

    /// Fine-grid resolution `(nx, ny)` the stencil generates.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

/// Bilinear interpolation of i.i.d. unit-variance grid values, renormalized
/// so the result itself has unit variance at every sample point (plain
/// bilinear interpolation would shrink the variance between grid nodes by up
/// to 4/9).
///
/// Retained (test-only) as the reference implementation the
/// [`SpatialStencil`] equivalence tests replay; the live path applies the
/// precomputed [`CellStencil`]s directly.
#[cfg(test)]
fn bilinear_unit_variance(grid: &[f64], nx: usize, ny: usize, x: f64, y: f64) -> f64 {
    if nx == 1 && ny == 1 {
        return grid[0];
    }
    CellStencil::new(nx, ny, x, y).apply(grid)
}

/// Bilinear interpolation on a row-major `nx × ny` grid with normalized
/// coordinates in `[0, 1]`.
fn bilinear(grid: &[f64], nx: usize, ny: usize, x: f64, y: f64) -> f64 {
    if nx == 1 && ny == 1 {
        return grid[0];
    }
    let gx = x * (nx - 1).max(1) as f64;
    let gy = y * (ny - 1).max(1) as f64;
    let x0 = (gx.floor() as usize).min(nx - 1);
    let y0 = (gy.floor() as usize).min(ny - 1);
    let x1 = (x0 + 1).min(nx - 1);
    let y1 = (y0 + 1).min(ny - 1);
    let tx = gx - x0 as f64;
    let ty = gy - y0 as f64;
    let v00 = grid[y0 * nx + x0];
    let v10 = grid[y0 * nx + x1];
    let v01 = grid[y1 * nx + x0];
    let v11 = grid[y1 * nx + x1];
    v00 * (1.0 - tx) * (1.0 - ty) + v10 * tx * (1.0 - ty) + v01 * (1.0 - tx) * ty + v11 * tx * ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use ptsim_rng::Pcg64;

    #[test]
    fn field_variance_close_to_sigma_squared() {
        let cfg = SpatialConfig {
            nx: 32,
            ny: 32,
            sigma: 2.0,
            correlation_length: 0.3,
            correlated_fraction: 0.5,
        };
        let mut rng = Pcg64::seed_from_u64(11);
        let mut stats = OnlineStats::new();
        for _ in 0..100 {
            let f = SpatialField::generate(&cfg, &mut rng);
            for iy in 0..32 {
                for ix in 0..32 {
                    stats.push(f.cell(ix, iy));
                }
            }
        }
        assert!(stats.mean().abs() < 0.1, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 2.0).abs() < 0.15,
            "sd {}",
            stats.std_dev()
        );
    }

    #[test]
    fn neighbours_more_correlated_than_far_cells() {
        let cfg = SpatialConfig {
            nx: 32,
            ny: 32,
            sigma: 1.0,
            correlation_length: 0.5,
            correlated_fraction: 0.9,
        };
        let mut rng = Pcg64::seed_from_u64(5);
        let (mut near, mut far) = (0.0, 0.0);
        let n = 400;
        for _ in 0..n {
            let f = SpatialField::generate(&cfg, &mut rng);
            near += f.cell(0, 0) * f.cell(1, 0);
            far += f.cell(0, 0) * f.cell(31, 31);
        }
        near /= n as f64;
        far /= n as f64;
        assert!(
            near > far + 0.1,
            "near correlation {near} should exceed far {far}"
        );
    }

    #[test]
    fn zero_field_is_zero_everywhere() {
        let f = SpatialField::zero(8, 8);
        assert_eq!(f.at(0.3, 0.7), 0.0);
        assert_eq!(f.mean(), 0.0);
        assert_eq!(f.resolution(), (8, 8));
    }

    #[test]
    fn at_interpolates_between_cells() {
        let f = SpatialField {
            nx: 2,
            ny: 1,
            values: vec![0.0, 1.0],
        };
        assert!((f.at(0.5, 0.0) - 0.5).abs() < 1e-12);
        assert_eq!(f.at(0.0, 0.0), 0.0);
        assert_eq!(f.at(1.0, 0.0), 1.0);
    }

    #[test]
    fn at_clamps_out_of_range_coordinates() {
        let f = SpatialField {
            nx: 2,
            ny: 1,
            values: vec![3.0, 7.0],
        };
        assert_eq!(f.at(-1.0, 0.0), 3.0);
        assert_eq!(f.at(2.0, 0.0), 7.0);
    }

    /// Verbatim copy of the historical inline `SpatialField::generate` body
    /// (pre-`SpatialStencil`), kept as the bit-identity oracle.
    fn reference_generate(cfg: &SpatialConfig, rng: &mut impl ptsim_rng::Rng) -> (usize, Vec<f64>) {
        let cnx = ((1.0 / cfg.correlation_length).ceil() as usize + 1).max(2);
        let cny = cnx;
        let coarse: Vec<f64> = (0..cnx * cny).map(|_| standard_normal(rng)).collect();
        let w_corr = cfg.correlated_fraction.sqrt();
        let w_local = (1.0 - cfg.correlated_fraction).sqrt();
        let mut values = Vec::with_capacity(cfg.nx * cfg.ny);
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let fx = if cfg.nx == 1 {
                    0.5
                } else {
                    ix as f64 / (cfg.nx - 1) as f64
                };
                let fy = if cfg.ny == 1 {
                    0.5
                } else {
                    iy as f64 / (cfg.ny - 1) as f64
                };
                let c = bilinear_unit_variance(&coarse, cnx, cny, fx, fy);
                let l = standard_normal(rng);
                values.push(cfg.sigma * (w_corr * c + w_local * l));
            }
        }
        (cfg.nx, values)
    }

    ptsim_rng::forall! {
        #![cases = 24]
        #[test]
        fn stencil_generate_is_bit_identical_to_reference(
            seed in 0u64..1_000_000,
            nx in 1usize..24,
            ny in 1usize..24,
            sigma in 0.0f64..3.0,
            corr_len in 0.05f64..1.0,
            corr_frac in 0.0f64..1.0,
        ) {
            let cfg = SpatialConfig { nx, ny, sigma, correlation_length: corr_len, correlated_fraction: corr_frac };
            let mut stencil = SpatialStencil::new(&cfg);
            let mut rng_a = Pcg64::seed_from_u64(seed);
            let mut rng_b = Pcg64::seed_from_u64(seed);
            // Two back-to-back generations exercise coarse-buffer reuse.
            for _ in 0..2 {
                let field = stencil.generate(&mut rng_a);
                let (rnx, rvals) = reference_generate(&cfg, &mut rng_b);
                assert_eq!(field.nx, rnx);
                assert_eq!(field.values.len(), rvals.len());
                for (a, b) in field.values.iter().zip(&rvals) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                // Identical residual RNG state: same draw count on both paths.
                assert_eq!(rng_a.next(), rng_b.next());
            }
        }
    }

    ptsim_rng::forall! {
        #![cases = 24]
        #[test]
        fn sparse_generate_is_mask_invariant_at_shared_points(
            seed in 0u64..1_000_000,
            nx in 1usize..20,
            ny in 1usize..20,
            corr_frac in 0.0f64..1.0,
            px in -0.2f64..1.2,
            py in -0.2f64..1.2,
        ) {
            let cfg = SpatialConfig {
                nx,
                ny,
                sigma: 1.3,
                correlation_length: 0.4,
                correlated_fraction: corr_frac,
            };
            let shared = [(px, py), (0.5, 0.5)];
            let narrow = FieldMask::for_reads(nx, ny, &shared);
            let mut wide_pts = shared.to_vec();
            wide_pts.extend([(0.0, 1.0), (1.0, 0.0), (0.2, 0.8)]);
            let wide = FieldMask::for_reads(nx, ny, &wide_pts);
            let mut stencil = SpatialStencil::new(&cfg);
            // Counter-based draws: a cell's value depends only on
            // (field_seed, cell), never on which other cells a mask marks.
            let a = stencil.generate_sparse(seed, &narrow);
            let b = stencil.generate_sparse(seed, &wide);
            for &(x, y) in &shared {
                assert_eq!(a.at(x, y).to_bits(), b.at(x, y).to_bits());
            }
            // And the generator is deterministic in the seed alone.
            let c = stencil.generate_sparse(seed, &narrow);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn sparse_generate_zeroes_unread_cells() {
        let cfg = SpatialConfig::vt_default(1.0);
        let mask = FieldMask::for_reads(cfg.nx, cfg.ny, &[(0.5, 0.5)]);
        assert_eq!(mask.needed_cells(), 4, "one interior read touches 4 nodes");
        let mut stencil = SpatialStencil::new(&cfg);
        let sparse = stencil.generate_sparse(3, &mask);
        let zeroes = (0..cfg.ny)
            .flat_map(|iy| (0..cfg.nx).map(move |ix| (ix, iy)))
            .filter(|&(ix, iy)| sparse.cell(ix, iy) == 0.0)
            .count();
        assert_eq!(zeroes, cfg.nx * cfg.ny - 4);
    }

    #[test]
    fn sparse_generate_has_the_configured_moments() {
        // The counter-based sampler must realize the same two-layer
        // statistics as the sequential one: unit-normal coarse + local
        // layers mixed to total variance sigma² at every read point.
        let cfg = SpatialConfig {
            nx: 16,
            ny: 16,
            sigma: 2.0,
            correlation_length: 0.3,
            correlated_fraction: 0.5,
        };
        // Read an exact fine-grid node: bilinear interpolation *between*
        // fine cells shrinks variance for the sequential sampler too, so
        // the sigma contract is stated on cell values.
        let point = (5.0 / 15.0, 9.0 / 15.0);
        let mask = FieldMask::for_reads(cfg.nx, cfg.ny, &[point]);
        let mut stencil = SpatialStencil::new(&cfg);
        let mut stats = OnlineStats::new();
        for seed in 0..4000u64 {
            let f = stencil.generate_sparse(seed, &mask);
            stats.push(f.cell(5, 9));
        }
        assert!(stats.mean().abs() < 0.1, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - 2.0).abs() < 0.15,
            "sd {}",
            stats.std_dev()
        );
    }

    #[test]
    fn sparse_neighbours_more_correlated_than_far_cells() {
        let cfg = SpatialConfig {
            nx: 32,
            ny: 32,
            sigma: 1.0,
            correlation_length: 0.5,
            correlated_fraction: 0.9,
        };
        let pts = [(0.0, 0.0), (1.0 / 31.0, 0.0), (1.0, 1.0)];
        let mask = FieldMask::for_reads(cfg.nx, cfg.ny, &pts);
        let mut stencil = SpatialStencil::new(&cfg);
        let (mut near, mut far) = (0.0, 0.0);
        let n = 400;
        for seed in 0..n {
            let f = stencil.generate_sparse(seed, &mask);
            near += f.cell(0, 0) * f.cell(1, 0);
            far += f.cell(0, 0) * f.cell(31, 31);
        }
        near /= f64::from(n as u32);
        far /= f64::from(n as u32);
        assert!(
            near > far + 0.1,
            "near correlation {near} should exceed far {far}"
        );
    }

    #[test]
    #[should_panic(expected = "resolution mismatch")]
    fn sparse_generate_rejects_wrong_resolution() {
        let cfg = SpatialConfig::vt_default(1.0);
        let mut stencil = SpatialStencil::new(&cfg);
        let mask = FieldMask::new(2, 2);
        let _ = stencil.generate_sparse(0, &mask);
    }

    #[test]
    fn deterministic_with_seed() {
        let cfg = SpatialConfig::vt_default(1.0);
        let a = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(1));
        let b = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "correlation length")]
    fn rejects_bad_correlation_length() {
        let cfg = SpatialConfig {
            correlation_length: 0.0,
            ..SpatialConfig::default()
        };
        let _ = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(0));
    }

    #[test]
    fn single_cell_grid_works() {
        let cfg = SpatialConfig {
            nx: 1,
            ny: 1,
            sigma: 1.0,
            correlation_length: 0.5,
            correlated_fraction: 0.5,
        };
        let f = SpatialField::generate(&cfg, &mut Pcg64::seed_from_u64(3));
        assert!(f.at(0.5, 0.5).is_finite());
    }
}
