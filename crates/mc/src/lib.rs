//! # ptsim-mc
//!
//! Process-variation Monte-Carlo engine for the SOCC 2012 PT-sensor
//! reproduction.
//!
//! The silicon paper characterized its sensor across fabricated dies; this
//! crate replaces the wafer: it draws [`die::DieSample`]s — die-to-die
//! (global corner) threshold/mobility shifts plus within-die
//! spatially-correlated Pelgrom mismatch — from a [`model::VariationModel`],
//! and runs per-die experiments deterministically in parallel via
//! [`driver::run_parallel`].
//!
//! ## Example
//!
//! ```
//! use ptsim_device::process::Technology;
//! use ptsim_mc::die::DieSite;
//! use ptsim_mc::driver::{run_parallel, McConfig};
//! use ptsim_mc::model::VariationModel;
//! use ptsim_mc::stats::OnlineStats;
//!
//! let model = VariationModel::new(&Technology::n65());
//! let shifts = run_parallel(&McConfig::new(200, 1), |i, rng| {
//!     model.sample_die_with_id(rng, i).d_vtn_at(DieSite::CENTER).0
//! });
//! let stats: OnlineStats = shifts.into_iter().collect();
//! assert!(stats.std_dev() > 0.005, "population has real spread");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod die;
pub mod driver;
pub mod gaussian;
pub mod lhs;
pub mod model;
pub mod spatial;
pub mod stats;

pub use die::{DieSample, DieSite};
pub use driver::{die_rng, run_parallel, run_parallel_with, McConfig};
pub use lhs::{sample_dies_lhs, unit_hypercube};
pub use model::VariationModel;
pub use stats::{Histogram, OnlineStats};
