//! Gaussian sampling — re-exported from the in-tree [`ptsim_rng`] crate.
//!
//! The Box–Muller (polar/Marsaglia) implementation lives in
//! [`ptsim_rng::gaussian`] so every crate in the workspace shares one
//! sampler; this module keeps the historical `ptsim_mc::gaussian` path
//! working for existing call sites.
//!
//! ```
//! let mut rng = ptsim_rng::Pcg64::seed_from_u64(7);
//! let x = ptsim_mc::gaussian::standard_normal(&mut rng);
//! assert!(x.is_finite());
//! ```

pub use ptsim_rng::gaussian::{normal, standard_normal, truncated_normal};
