//! The variation model: turns a [`Technology`] description into a population
//! of [`DieSample`]s.

use crate::die::DieSample;
use crate::gaussian::{normal, truncated_normal};
use crate::spatial::{FieldMask, SpatialConfig, SpatialStencil};
use ptsim_device::process::{ProcessCorner, Technology};
use ptsim_device::units::Volt;
use ptsim_rng::{Rng, SplitMix64};

/// Statistical model of process variation for one technology.
///
/// ```
/// use ptsim_device::process::Technology;
/// use ptsim_mc::model::VariationModel;
///
/// let model = VariationModel::new(&Technology::n65());
/// let mut rng = ptsim_rng::Pcg64::seed_from_u64(1);
/// let die = model.sample_die(&mut rng);
/// assert!(die.d_vtn_d2d.0.abs() < 0.08, "D2D shift bounded by truncation");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VariationModel {
    /// One-sigma die-to-die threshold spread (applies to both polarities).
    pub sigma_vt_d2d: Volt,
    /// One-sigma die-to-die relative mobility spread.
    pub sigma_mu_d2d: f64,
    /// Truncation (in sigmas) applied to all die-to-die draws.
    pub d2d_truncation: f64,
    /// Correlation between the NMOS and PMOS die-to-die threshold shifts
    /// (shared anneal/litho causes; 0 = independent, 1 = identical).
    pub nvt_pvt_correlation: f64,
    /// Within-die field configuration for NMOS thresholds.
    pub wid_vtn: SpatialConfig,
    /// Within-die field configuration for PMOS thresholds.
    pub wid_vtp: SpatialConfig,
}

impl VariationModel {
    /// Builds the default model for `tech`.
    ///
    /// The within-die sigma is derived from the Pelgrom coefficient at the
    /// gate area of a typical ring-oscillator device in this work
    /// (W = 0.5 µm, L = 0.06 µm per device, ~12 devices averaging within a
    /// stage chain reduces the effective per-oscillator sigma by √12).
    #[must_use]
    pub fn new(tech: &Technology) -> Self {
        let device_area: f64 = 0.5 * 0.06; // µm²
        let sigma_device = tech.avt_pelgrom / device_area.sqrt();
        // Averaging over the stages of one oscillator.
        let stages_averaged = 12.0_f64;
        let sigma_ro = sigma_device / stages_averaged.sqrt();
        VariationModel {
            sigma_vt_d2d: tech.sigma_vt_d2d,
            sigma_mu_d2d: 0.03,
            d2d_truncation: 3.0,
            nvt_pvt_correlation: 0.3,
            wid_vtn: SpatialConfig::vt_default(sigma_ro),
            wid_vtp: SpatialConfig::vt_default(sigma_ro),
        }
    }

    /// A model with all randomness disabled (every die is nominal).
    /// Useful for isolating deterministic effects in tests and ablations.
    #[must_use]
    pub fn deterministic() -> Self {
        VariationModel {
            sigma_vt_d2d: Volt::ZERO,
            sigma_mu_d2d: 0.0,
            d2d_truncation: 3.0,
            nvt_pvt_correlation: 0.0,
            wid_vtn: SpatialConfig::vt_default(0.0),
            wid_vtp: SpatialConfig::vt_default(0.0),
        }
    }

    /// Draws one die from the population.
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R) -> DieSample {
        self.sample_die_with_id(rng, 0)
    }

    /// Draws one die, tagging it with `die_id` for traceability.
    ///
    /// One-shot form: builds the within-die interpolation stencils afresh.
    /// Population loops should hoist that work with [`VariationModel::sampler`]
    /// and draw every die through the one [`DieSampler`] (bit-identical).
    pub fn sample_die_with_id<R: Rng + ?Sized>(&self, rng: &mut R, die_id: u64) -> DieSample {
        self.sampler().sample_die_with_id(rng, die_id)
    }

    /// Precomputes the per-die-invariant sampling state (the within-die
    /// bilinear stencils) for drawing many dies from this model.
    #[must_use]
    pub fn sampler(&self) -> DieSampler {
        DieSampler {
            sigma_vt_d2d: self.sigma_vt_d2d,
            sigma_mu_d2d: self.sigma_mu_d2d,
            d2d_truncation: self.d2d_truncation,
            nvt_pvt_correlation: self.nvt_pvt_correlation,
            vtn_stencil: SpatialStencil::new(&self.wid_vtn),
            vtp_stencil: SpatialStencil::new(&self.wid_vtp),
        }
    }

    /// Deterministic die at a named global corner (no WID, no mobility
    /// randomness) — used for the corner-robustness table.
    #[must_use]
    pub fn corner_die(&self, corner: ProcessCorner, tech: &Technology) -> DieSample {
        DieSample::at_corner(corner, tech)
    }
}

/// Per-polarity salts for the counter-based field streams: both within-die
/// fields of a die share one `field_seed` root, so each polarity xors in a
/// distinct constant before the avalanche finalizer to get an independent
/// stream.
const VTN_FIELD_SALT: u64 = 0xd1b5_4a32_d192_ed03;
const VTP_FIELD_SALT: u64 = 0x8cb9_2ba7_2f3d_8dd7;

/// Reusable die-drawing state snapshotted from a [`VariationModel`]: the
/// die-to-die parameters plus the two within-die [`SpatialStencil`]s, built
/// once and reused for every die of a population (the Monte-Carlo hot path).
///
/// Draws are bit-identical to [`VariationModel::sample_die_with_id`] — which
/// is itself a thin wrapper over a freshly-built sampler — consuming the RNG
/// stream identically.
#[derive(Debug, Clone, PartialEq)]
pub struct DieSampler {
    sigma_vt_d2d: Volt,
    sigma_mu_d2d: f64,
    d2d_truncation: f64,
    nvt_pvt_correlation: f64,
    vtn_stencil: SpatialStencil,
    vtp_stencil: SpatialStencil,
}

impl DieSampler {
    /// Draws one die from the population.
    pub fn sample_die<R: Rng + ?Sized>(&mut self, rng: &mut R) -> DieSample {
        self.sample_die_with_id(rng, 0)
    }

    /// Draws one die, tagging it with `die_id` for traceability.
    pub fn sample_die_with_id<R: Rng + ?Sized>(&mut self, rng: &mut R, die_id: u64) -> DieSample {
        self.sample_die_inner(rng, die_id)
    }

    /// Draws one die with **sparse, counter-based** within-die fields: only
    /// the cells the masks mark as read are realized; every other cell is
    /// never drawn and stores `0.0` (see
    /// [`SpatialStencil::generate_sparse`]).
    ///
    /// This is the batch-population sampling discipline, split over two
    /// documented streams:
    ///
    /// * the **main stream** `rng` carries exactly the die-to-die draws, in
    ///   [`DieSampler::sample_die_with_id`]'s order (shared, zn, zp, μn,
    ///   μp), and is left positioned right after them — the caller keeps
    ///   using it for the die's measurement-gating draws;
    /// * the **field streams**, rooted at `field_seed` (salted per
    ///   polarity), make every field cell a pure function of
    ///   `(field_seed, field, cell)` — unread cells cost nothing, and read
    ///   cells are invariant under mask changes, sampling order, and
    ///   chunking.
    ///
    /// The die-to-die parameters are bit-identical to
    /// [`DieSampler::sample_die_with_id`] from the same `rng` state; the
    /// within-die fields are an equally-distributed but numerically
    /// different population (the sequential sampler draws them from the
    /// main stream instead).
    pub fn sample_die_sparse<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        field_seed: u64,
        die_id: u64,
        vtn_mask: &FieldMask,
        vtp_mask: &FieldMask,
    ) -> DieSample {
        let k = self.d2d_truncation;
        let s = self.sigma_vt_d2d.0;
        let rho = self.nvt_pvt_correlation;
        let shared = truncated_normal(rng, 0.0, 1.0, k);
        let zn = truncated_normal(rng, 0.0, 1.0, k);
        let zp = truncated_normal(rng, 0.0, 1.0, k);
        let d_vtn = s * (rho.sqrt() * shared + (1.0 - rho).sqrt() * zn);
        let d_vtp = s * (rho.sqrt() * shared + (1.0 - rho).sqrt() * zp);
        let mu_n = (1.0 + normal(rng, 0.0, self.sigma_mu_d2d)).max(0.5);
        let mu_p = (1.0 + normal(rng, 0.0, self.sigma_mu_d2d)).max(0.5);
        let vtn_wid = self
            .vtn_stencil
            .generate_sparse(SplitMix64::finalize(field_seed ^ VTN_FIELD_SALT), vtn_mask);
        let vtp_wid = self
            .vtp_stencil
            .generate_sparse(SplitMix64::finalize(field_seed ^ VTP_FIELD_SALT), vtp_mask);
        DieSample {
            die_id,
            d_vtn_d2d: Volt(d_vtn),
            d_vtp_d2d: Volt(d_vtp),
            mu_n_d2d: mu_n,
            mu_p_d2d: mu_p,
            vtn_wid,
            vtp_wid,
        }
    }

    /// Masks for both within-die fields covering bilinear reads at the given
    /// normalized die coordinates.
    #[must_use]
    pub fn field_masks(&self, points: &[(f64, f64)]) -> (FieldMask, FieldMask) {
        let (nnx, nny) = self.vtn_stencil.resolution();
        let (pnx, pny) = self.vtp_stencil.resolution();
        (
            FieldMask::for_reads(nnx, nny, points),
            FieldMask::for_reads(pnx, pny, points),
        )
    }

    fn sample_die_inner<R: Rng + ?Sized>(&mut self, rng: &mut R, die_id: u64) -> DieSample {
        let k = self.d2d_truncation;
        let s = self.sigma_vt_d2d.0;
        // Correlated bivariate normal for (ΔVtn, ΔVtp): shared + independent.
        let rho = self.nvt_pvt_correlation;
        let shared = truncated_normal(rng, 0.0, 1.0, k);
        let zn = truncated_normal(rng, 0.0, 1.0, k);
        let zp = truncated_normal(rng, 0.0, 1.0, k);
        let d_vtn = s * (rho.sqrt() * shared + (1.0 - rho).sqrt() * zn);
        let d_vtp = s * (rho.sqrt() * shared + (1.0 - rho).sqrt() * zp);

        let mu_n = (1.0 + normal(rng, 0.0, self.sigma_mu_d2d)).max(0.5);
        let mu_p = (1.0 + normal(rng, 0.0, self.sigma_mu_d2d)).max(0.5);

        let vtn_wid = self.vtn_stencil.generate(rng);
        let vtp_wid = self.vtp_stencil.generate(rng);
        DieSample {
            die_id,
            d_vtn_d2d: Volt(d_vtn),
            d_vtp_d2d: Volt(d_vtp),
            mu_n_d2d: mu_n,
            mu_p_d2d: mu_p,
            vtn_wid,
            vtp_wid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use ptsim_rng::Pcg64;

    fn model() -> VariationModel {
        VariationModel::new(&Technology::n65())
    }

    #[test]
    fn d2d_spread_matches_configured_sigma() {
        let m = model();
        let mut rng = Pcg64::seed_from_u64(123);
        let mut sn = OnlineStats::new();
        let mut sp = OnlineStats::new();
        for i in 0..4000 {
            let die = m.sample_die_with_id(&mut rng, i);
            sn.push(die.d_vtn_d2d.0);
            sp.push(die.d_vtp_d2d.0);
        }
        // Truncation at 3 sigma shrinks sd by ~1.3%; allow 6% tolerance.
        assert!((sn.std_dev() - m.sigma_vt_d2d.0).abs() / m.sigma_vt_d2d.0 < 0.06);
        assert!((sp.std_dev() - m.sigma_vt_d2d.0).abs() / m.sigma_vt_d2d.0 < 0.06);
        assert!(sn.mean().abs() < 0.002);
    }

    #[test]
    fn d2d_draws_are_truncated() {
        let m = model();
        let mut rng = Pcg64::seed_from_u64(9);
        for i in 0..20_000 {
            let die = m.sample_die_with_id(&mut rng, i);
            // Correlated construction can slightly exceed k·sigma when the
            // shared and independent parts align; bound is k·sigma·(√ρ+√(1−ρ)).
            let bound = m.d2d_truncation
                * m.sigma_vt_d2d.0
                * (m.nvt_pvt_correlation.sqrt() + (1.0 - m.nvt_pvt_correlation).sqrt());
            assert!(die.d_vtn_d2d.0.abs() <= bound + 1e-12);
        }
    }

    #[test]
    fn nmos_pmos_shifts_positively_correlated() {
        let m = model();
        let mut rng = Pcg64::seed_from_u64(321);
        let n = 8000;
        let mut sum_np = 0.0;
        let mut sn = OnlineStats::new();
        let mut sp = OnlineStats::new();
        for i in 0..n {
            let die = m.sample_die_with_id(&mut rng, i);
            sum_np += die.d_vtn_d2d.0 * die.d_vtp_d2d.0;
            sn.push(die.d_vtn_d2d.0);
            sp.push(die.d_vtp_d2d.0);
        }
        let corr = (sum_np / n as f64) / (sn.std_dev() * sp.std_dev());
        assert!(
            (corr - m.nvt_pvt_correlation).abs() < 0.08,
            "measured correlation {corr}"
        );
    }

    #[test]
    fn mobility_factors_near_unity() {
        let m = model();
        let mut rng = Pcg64::seed_from_u64(5);
        let die = m.sample_die(&mut rng);
        assert!(die.mu_n_d2d > 0.5 && die.mu_n_d2d < 1.5);
        assert!(die.mu_p_d2d > 0.5 && die.mu_p_d2d < 1.5);
    }

    #[test]
    fn deterministic_model_yields_nominal_dies() {
        let m = VariationModel::deterministic();
        let mut rng = Pcg64::seed_from_u64(1);
        let die = m.sample_die(&mut rng);
        assert_eq!(die.d_vtn_d2d, Volt::ZERO);
        assert_eq!(die.d_vtp_d2d, Volt::ZERO);
        assert_eq!(die.mu_n_d2d, 1.0);
    }

    #[test]
    fn corner_die_is_deterministic() {
        let tech = Technology::n65();
        let m = model();
        let a = m.corner_die(ProcessCorner::FF, &tech);
        let b = m.corner_die(ProcessCorner::FF, &tech);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_sampling_reuses_the_scalar_d2d_draw_order() {
        // The main stream carries exactly the die-to-die draws: the sparse
        // sampler's d2d parameters are bit-identical to full sampling from
        // the same stream state, and the stream afterwards sits right
        // after them (field draws never touch it).
        let m = model();
        let sites = [(0.496, 0.5), (0.504, 0.5), (0.5, 0.504)];
        let mut full = m.sampler();
        let mut sparse = m.sampler();
        let (vtn_mask, vtp_mask) = sparse.field_masks(&sites);
        for i in 0..16u64 {
            let mut rng_a = Pcg64::seed_from_u64(99 + i);
            let mut rng_b = Pcg64::seed_from_u64(99 + i);
            let a = full.sample_die_with_id(&mut rng_a, i);
            let b = sparse.sample_die_sparse(&mut rng_b, 7 * i, i, &vtn_mask, &vtp_mask);
            assert_eq!(a.d_vtn_d2d, b.d_vtn_d2d);
            assert_eq!(a.d_vtp_d2d, b.d_vtp_d2d);
            assert_eq!(a.mu_n_d2d.to_bits(), b.mu_n_d2d.to_bits());
            assert_eq!(a.mu_p_d2d.to_bits(), b.mu_p_d2d.to_bits());
        }
    }

    #[test]
    fn sparse_sampling_is_mask_invariant_and_deterministic() {
        let m = model();
        let shared_sites = [(0.496, 0.5), (0.504, 0.5)];
        let mut narrow = m.sampler();
        let mut wide = m.sampler();
        let (vtn_narrow, vtp_narrow) = narrow.field_masks(&shared_sites);
        let mut wide_pts = shared_sites.to_vec();
        wide_pts.push((0.1, 0.9));
        let (vtn_wide, vtp_wide) = wide.field_masks(&wide_pts);
        for i in 0..8u64 {
            let mut rng_a = Pcg64::seed_from_u64(7 + i);
            let mut rng_b = Pcg64::seed_from_u64(7 + i);
            let a = narrow.sample_die_sparse(&mut rng_a, 1000 + i, i, &vtn_narrow, &vtp_narrow);
            let b = wide.sample_die_sparse(&mut rng_b, 1000 + i, i, &vtn_wide, &vtp_wide);
            for &(x, y) in &shared_sites {
                assert_eq!(
                    a.vtn_wid.at(x, y).to_bits(),
                    b.vtn_wid.at(x, y).to_bits(),
                    "vtn field value depends on the mask at ({x}, {y})"
                );
                assert_eq!(a.vtp_wid.at(x, y).to_bits(), b.vtp_wid.at(x, y).to_bits());
            }
            // Residual main streams agree: neither mask touched them.
            assert_eq!(rng_a.next(), rng_b.next());
        }
    }

    #[test]
    fn sparse_field_streams_leave_the_main_stream_alone() {
        let m = model();
        let mut sampler = m.sampler();
        let (vtn_mask, vtp_mask) = sampler.field_masks(&[(0.5, 0.5)]);
        let mut rng = Pcg64::seed_from_u64(42);
        let die = sampler.sample_die_sparse(&mut rng, 3, 0, &vtn_mask, &vtp_mask);
        // Replay just the d2d draws by hand; the streams must line up.
        let mut replay = Pcg64::seed_from_u64(42);
        let k = m.d2d_truncation;
        for _ in 0..3 {
            let _ = crate::gaussian::truncated_normal(&mut replay, 0.0, 1.0, k);
        }
        for _ in 0..2 {
            let _ = crate::gaussian::normal(&mut replay, 0.0, m.sigma_mu_d2d);
        }
        assert_eq!(rng.next(), replay.next());
        // And the two polarities drew independent (distinct) fields.
        assert_ne!(
            die.vtn_wid.at(0.5, 0.5).to_bits(),
            die.vtp_wid.at(0.5, 0.5).to_bits()
        );
    }

    #[test]
    fn die_id_is_propagated() {
        let m = model();
        let mut rng = Pcg64::seed_from_u64(0);
        assert_eq!(m.sample_die_with_id(&mut rng, 42).die_id, 42);
    }

    #[test]
    fn wid_sigma_is_derived_from_pelgrom() {
        let tech = Technology::n65();
        let m = VariationModel::new(&tech);
        // σ_device = Avt/√(W·L), reduced by √12 stage averaging.
        let expected = tech.avt_pelgrom / (0.5_f64 * 0.06).sqrt() / 12.0_f64.sqrt();
        assert!((m.wid_vtn.sigma - expected).abs() < 1e-12);
    }
}
