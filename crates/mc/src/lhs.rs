//! Latin-hypercube sampling (LHS).
//!
//! For the same die budget, stratifying each variation axis covers the
//! process space far more evenly than independent sampling — useful when a
//! few hundred dies must bound a worst case (the evaluation harness's
//! situation). The unit-cube samples are mapped through the inverse normal
//! CDF to produce stratified Gaussian draws compatible with the
//! [`crate::model::VariationModel`] axes.

use crate::die::DieSample;
use crate::model::VariationModel;
use crate::spatial::SpatialField;
use ptsim_device::units::Volt;
use ptsim_rng::Rng;
use ptsim_rng::SliceRandom;

/// Draws `n` stratified samples of a `dims`-dimensional unit hypercube.
///
/// Each column is a permutation of the `n` strata with uniform jitter inside
/// each stratum, so every axis is covered evenly.
///
/// # Panics
///
/// Panics if `n == 0` or `dims == 0`.
pub fn unit_hypercube<R: Rng + ?Sized>(rng: &mut R, n: usize, dims: usize) -> Vec<Vec<f64>> {
    assert!(n > 0 && dims > 0, "need at least one sample and dimension");
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dims);
    for _ in 0..dims {
        let mut strata: Vec<usize> = (0..n).collect();
        strata.shuffle(rng);
        columns.push(
            strata
                .into_iter()
                .map(|s| (s as f64 + rng.gen::<f64>()) / n as f64)
                .collect(),
        );
    }
    (0..n)
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect()
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |ε| < 1.15e-9 over the open unit interval).
///
/// # Panics
///
/// Panics in debug builds if `p` is outside `(0, 1)`.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Draws `n` dies whose die-to-die axes (ΔVtn, ΔVtp, µn, µp) are Latin-
/// hypercube-stratified over the model's distribution (within-die fields
/// remain independently sampled).
pub fn sample_dies_lhs<R: Rng + ?Sized>(
    model: &VariationModel,
    rng: &mut R,
    n: usize,
) -> Vec<DieSample> {
    let cube = unit_hypercube(rng, n, 4);
    let k = model.d2d_truncation;
    let rho = model.nvt_pvt_correlation;
    let s = model.sigma_vt_d2d.0;
    cube.into_iter()
        .enumerate()
        .map(|(i, u)| {
            // Clamp into the truncation band in probability space.
            let z: Vec<f64> = u
                .iter()
                .map(|p| inverse_normal_cdf(p.clamp(1e-12, 1.0 - 1e-12)).clamp(-k, k))
                .collect();
            // Correlate the threshold axes by Cholesky factorization so the
            // pair has correlation `rho` with unit marginals (equivalent in
            // distribution to `sample_die`'s shared-component construction).
            let d_vtn = s * z[0];
            let d_vtp = s * (rho * z[0] + (1.0 - rho * rho).sqrt() * z[1]);
            DieSample {
                die_id: i as u64,
                d_vtn_d2d: Volt(d_vtn),
                d_vtp_d2d: Volt(d_vtp),
                mu_n_d2d: (1.0 + model.sigma_mu_d2d * z[2]).max(0.5),
                mu_p_d2d: (1.0 + model.sigma_mu_d2d * z[3]).max(0.5),
                vtn_wid: SpatialField::generate(&model.wid_vtn, rng),
                vtp_wid: SpatialField::generate(&model.wid_vtp, rng),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;
    use ptsim_device::process::Technology;
    use ptsim_rng::Pcg64;

    #[test]
    fn hypercube_stratifies_each_axis() {
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 64;
        let pts = unit_hypercube(&mut rng, n, 3);
        assert_eq!(pts.len(), n);
        for dim in 0..3 {
            let mut seen = vec![false; n];
            for p in &pts {
                let stratum = ((p[dim] * n as f64) as usize).min(n - 1);
                assert!(!seen[stratum], "duplicate stratum in dim {dim}");
                seen[stratum] = true;
            }
            assert!(seen.iter().all(|s| *s), "all strata covered");
        }
    }

    #[test]
    fn inverse_cdf_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841_344_75) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn inverse_cdf_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let x = inverse_normal_cdf(i as f64 / 1000.0);
            assert!(x > prev);
            prev = x;
        }
    }

    #[test]
    fn lhs_dies_match_model_statistics() {
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(3);
        let dies = sample_dies_lhs(&model, &mut rng, 2000);
        let stats: OnlineStats = dies.iter().map(|d| d.d_vtp_d2d.0).collect();
        assert!(stats.mean().abs() < 1.5e-3, "mean {}", stats.mean());
        assert!(
            (stats.std_dev() - model.sigma_vt_d2d.0).abs() / model.sigma_vt_d2d.0 < 0.12,
            "sd {}",
            stats.std_dev()
        );
    }

    #[test]
    fn lhs_covers_tails_better_than_iid_small_n() {
        // With only 20 samples, LHS guarantees one sample in each 5% band,
        // so the extreme strata are always represented.
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(4);
        let dies = sample_dies_lhs(&model, &mut rng, 20);
        let max = dies.iter().map(|d| d.d_vtp_d2d.0.abs()).fold(0.0, f64::max);
        assert!(
            max > 1.2 * model.sigma_vt_d2d.0,
            "LHS must reach the tails, max |shift| {max}"
        );
    }

    #[test]
    fn die_ids_sequential() {
        let model = VariationModel::new(&Technology::n65());
        let mut rng = Pcg64::seed_from_u64(5);
        let dies = sample_dies_lhs(&model, &mut rng, 5);
        for (i, d) in dies.iter().enumerate() {
            assert_eq!(d.die_id, i as u64);
        }
    }
}
