//! A sampled die: die-to-die shifts plus within-die fields, queryable at any
//! layout site.

use crate::spatial::SpatialField;
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::{ProcessCorner, Technology};
use ptsim_device::units::{Celsius, Volt};

/// A location on the die in normalized coordinates (`0.0..=1.0` each axis).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DieSite {
    /// Normalized X coordinate.
    pub x: f64,
    /// Normalized Y coordinate.
    pub y: f64,
}

impl DieSite {
    /// Die centre.
    pub const CENTER: DieSite = DieSite { x: 0.5, y: 0.5 };

    /// Creates a site, clamping coordinates into `[0, 1]`.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        DieSite {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }
}

/// One realized die of the Monte-Carlo population.
///
/// Threshold shifts decompose as
/// `ΔVt(site) = ΔVt_d2d + WID_field(site) + ΔVt_external(site)`,
/// where the external term (e.g. TSV-stress-induced shift) is supplied by the
/// caller of [`DieSample::env_at_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct DieSample {
    /// Identifier of this die within its Monte-Carlo run.
    pub die_id: u64,
    /// Die-to-die NMOS threshold-magnitude shift.
    pub d_vtn_d2d: Volt,
    /// Die-to-die PMOS threshold-magnitude shift.
    pub d_vtp_d2d: Volt,
    /// Die-to-die NMOS relative mobility multiplier.
    pub mu_n_d2d: f64,
    /// Die-to-die PMOS relative mobility multiplier.
    pub mu_p_d2d: f64,
    /// Within-die NMOS threshold field (volts).
    pub vtn_wid: SpatialField,
    /// Within-die PMOS threshold field (volts).
    pub vtp_wid: SpatialField,
}

impl DieSample {
    /// The nominal (typical, variation-free) die.
    #[must_use]
    pub fn nominal() -> Self {
        DieSample {
            die_id: 0,
            d_vtn_d2d: Volt::ZERO,
            d_vtp_d2d: Volt::ZERO,
            mu_n_d2d: 1.0,
            mu_p_d2d: 1.0,
            vtn_wid: SpatialField::zero(1, 1),
            vtp_wid: SpatialField::zero(1, 1),
        }
    }

    /// A deterministic die sitting exactly at a global process corner
    /// (no within-die component).
    #[must_use]
    pub fn at_corner(corner: ProcessCorner, tech: &Technology) -> Self {
        DieSample {
            die_id: 0,
            d_vtn_d2d: corner.vtn_shift(tech),
            d_vtp_d2d: corner.vtp_shift(tech),
            mu_n_d2d: corner.mu_n_factor(tech),
            mu_p_d2d: corner.mu_p_factor(tech),
            vtn_wid: SpatialField::zero(1, 1),
            vtp_wid: SpatialField::zero(1, 1),
        }
    }

    /// Total NMOS threshold shift at a site (D2D + WID).
    #[must_use]
    pub fn d_vtn_at(&self, site: DieSite) -> Volt {
        Volt(self.d_vtn_d2d.0 + self.vtn_wid.at(site.x, site.y))
    }

    /// Total PMOS threshold shift at a site (D2D + WID).
    #[must_use]
    pub fn d_vtp_at(&self, site: DieSite) -> Volt {
        Volt(self.d_vtp_d2d.0 + self.vtp_wid.at(site.x, site.y))
    }

    /// Gate-level environment at a site and temperature.
    #[must_use]
    pub fn env_at(&self, site: DieSite, temp: Celsius) -> CmosEnv {
        self.env_at_with(site, temp, Volt::ZERO, Volt::ZERO)
    }

    /// Gate-level environment including externally-imposed threshold shifts
    /// (e.g. TSV mechanical stress) added on top of process variation.
    #[must_use]
    pub fn env_at_with(
        &self,
        site: DieSite,
        temp: Celsius,
        extra_vtn: Volt,
        extra_vtp: Volt,
    ) -> CmosEnv {
        CmosEnv {
            temp,
            d_vtn: self.d_vtn_at(site) + extra_vtn,
            d_vtp: self.d_vtp_at(site) + extra_vtp,
            mu_n: self.mu_n_d2d,
            mu_p: self.mu_p_d2d,
        }
    }
}

impl Default for DieSample {
    fn default() -> Self {
        DieSample::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_die_has_no_shifts() {
        let die = DieSample::nominal();
        let env = die.env_at(DieSite::CENTER, Celsius(25.0));
        assert_eq!(env.d_vtn, Volt::ZERO);
        assert_eq!(env.d_vtp, Volt::ZERO);
        assert_eq!(env.mu_n, 1.0);
        assert_eq!(env.mu_p, 1.0);
    }

    #[test]
    fn corner_die_matches_corner_definition() {
        let tech = Technology::n65();
        let die = DieSample::at_corner(ProcessCorner::FS, &tech);
        assert!(die.d_vtn_d2d.0 < 0.0);
        assert!(die.d_vtp_d2d.0 > 0.0);
        let env = die.env_at(DieSite::new(0.2, 0.9), Celsius(85.0));
        assert_eq!(env.d_vtn, die.d_vtn_d2d);
        assert_eq!(env.temp, Celsius(85.0));
    }

    #[test]
    fn external_shift_adds_on_top() {
        let tech = Technology::n65();
        let die = DieSample::at_corner(ProcessCorner::SS, &tech);
        let env = die.env_at_with(DieSite::CENTER, Celsius(25.0), Volt(0.01), Volt(-0.005));
        assert!((env.d_vtn.0 - (die.d_vtn_d2d.0 + 0.01)).abs() < 1e-15);
        assert!((env.d_vtp.0 - (die.d_vtp_d2d.0 - 0.005)).abs() < 1e-15);
    }

    #[test]
    fn site_clamps_coordinates() {
        let s = DieSite::new(-0.5, 1.5);
        assert_eq!(s.x, 0.0);
        assert_eq!(s.y, 1.0);
    }

    #[test]
    fn wid_field_varies_across_sites() {
        use crate::spatial::{SpatialConfig, SpatialField};
        use ptsim_rng::Pcg64;
        let mut rng = Pcg64::seed_from_u64(77);
        let die = DieSample {
            vtn_wid: SpatialField::generate(&SpatialConfig::vt_default(0.01), &mut rng),
            ..DieSample::nominal()
        };
        let a = die.d_vtn_at(DieSite::new(0.0, 0.0));
        let b = die.d_vtn_at(DieSite::new(1.0, 1.0));
        assert_ne!(a, b);
    }
}
