//! The 3D stacked-die thermal RC network.
//!
//! Each tier is discretized into an `nx × ny` grid of silicon cells.
//! Adjacent in-plane cells exchange heat through lateral silicon
//! conductances; vertically-adjacent cells across a tier interface exchange
//! heat through the bond layer (augmented per-cell by TSV thermal vias);
//! the top tier couples to a heat sink and the bottom tier to the
//! package/board, both held at ambient.
//!
//! Tier 0 is the *bottom* (package side); tier `tiers-1` is the *top*
//! (heat-sink side).

use crate::error::ThermalError;
use crate::material::Material;
use crate::power::PowerMap;
use ptsim_device::units::{Celsius, Micron, Watt, WattPerKelvin};

/// Geometry and boundary configuration of a die stack.
#[derive(Debug, Clone, PartialEq)]
pub struct StackConfig {
    /// Grid cells in X.
    pub nx: usize,
    /// Grid cells in Y.
    pub ny: usize,
    /// Number of stacked tiers (≥ 1).
    pub tiers: usize,
    /// Die width.
    pub die_width: Micron,
    /// Die height.
    pub die_height: Micron,
    /// Thinned-die silicon thickness per tier.
    pub tier_thickness: Micron,
    /// Inter-tier bond/underfill layer thickness.
    pub bond_thickness: Micron,
    /// Thermal-interface-material thickness under the heat sink.
    pub tim_thickness: Micron,
    /// Heat-sink thermal resistance, K/W (whole die).
    pub sink_resistance: f64,
    /// Package/board thermal resistance, K/W (whole die).
    pub board_resistance: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl StackConfig {
    /// The 4-tier, 5 × 5 mm stack used by the F5 case study (the SOCC 2012
    /// test chip is 5 × 5 mm; its companion papers stack four dies).
    #[must_use]
    pub fn four_tier_5mm() -> Self {
        StackConfig {
            nx: 16,
            ny: 16,
            tiers: 4,
            die_width: Micron(5000.0),
            die_height: Micron(5000.0),
            tier_thickness: Micron(100.0),
            bond_thickness: Micron(10.0),
            tim_thickness: Micron(50.0),
            sink_resistance: 2.0,
            board_resistance: 20.0,
            ambient: Celsius(25.0),
        }
    }

    /// Single-die variant (for baselines and unit analysis).
    #[must_use]
    pub fn single_die_5mm() -> Self {
        StackConfig {
            tiers: 1,
            ..StackConfig::four_tier_5mm()
        }
    }

    fn validate(&self) -> Result<(), ThermalError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(ThermalError::InvalidGrid {
                nx: self.nx,
                ny: self.ny,
            });
        }
        if self.tiers == 0 {
            return Err(ThermalError::InvalidGeometry {
                name: "tiers",
                value: 0.0,
            });
        }
        for (name, v) in [
            ("die_width", self.die_width.0),
            ("die_height", self.die_height.0),
            ("tier_thickness", self.tier_thickness.0),
            ("bond_thickness", self.bond_thickness.0),
            ("tim_thickness", self.tim_thickness.0),
            ("sink_resistance", self.sink_resistance),
            ("board_resistance", self.board_resistance),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ThermalError::InvalidGeometry { name, value: v });
            }
        }
        Ok(())
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::four_tier_5mm()
    }
}

/// Assembled thermal RC network with a current temperature state.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalStack {
    cfg: StackConfig,
    /// Lateral conductance between in-plane neighbours, W/K.
    g_lat: f64,
    /// Vertical conductance per interface per cell, W/K
    /// (`[interface][cell]`, interface `i` couples tier `i` and `i+1`).
    g_vert: Vec<Vec<f64>>,
    /// Per-cell conductance from the top tier to ambient, W/K.
    g_sink: f64,
    /// Per-cell conductance from the bottom tier to ambient, W/K.
    g_board: f64,
    /// Per-cell heat capacity, J/K.
    cell_capacity: f64,
    /// Per-tier power maps.
    power: Vec<PowerMap>,
    /// Cell temperatures, °C, `[tier][row-major cell]` flattened.
    temps: Vec<f64>,
}

impl ThermalStack {
    /// Builds the RC network for `cfg`, initialized at ambient with zero
    /// power everywhere.
    ///
    /// # Errors
    ///
    /// Returns a [`ThermalError`] describing the first invalid configuration
    /// parameter.
    pub fn new(cfg: StackConfig) -> Result<Self, ThermalError> {
        cfg.validate()?;
        let m = 1e-6; // µm → m
        let cell_w = cfg.die_width.0 * m / cfg.nx as f64;
        let cell_h = cfg.die_height.0 * m / cfg.ny as f64;
        let t_si = cfg.tier_thickness.0 * m;
        let cell_area = cell_w * cell_h;
        let n_cells = cfg.nx * cfg.ny;

        // Lateral silicon conductance (assume square-ish cells; use the
        // geometric mean pitch for both axes).
        let pitch = (cell_w * cell_h).sqrt();
        let g_lat = Material::SILICON.slab_conductance(pitch * t_si, pitch);

        // Vertical interface: half-tier silicon above + bond + half-tier
        // silicon below, in series.
        let g_si_half = Material::SILICON.slab_conductance(cell_area, t_si / 2.0);
        let g_bond = Material::BOND_LAYER.slab_conductance(cell_area, cfg.bond_thickness.0 * m);
        let g_iface = 1.0 / (2.0 / g_si_half + 1.0 / g_bond);
        let g_vert = vec![vec![g_iface; n_cells]; cfg.tiers.saturating_sub(1)];

        // Top boundary: TIM slab in series with the heat sink share.
        let g_tim = Material::TIM.slab_conductance(cell_area, cfg.tim_thickness.0 * m);
        let g_hs = 1.0 / (cfg.sink_resistance * n_cells as f64);
        let g_sink = 1.0 / (1.0 / g_tim + 1.0 / g_hs);

        // Bottom boundary: package/board share.
        let g_board = 1.0 / (cfg.board_resistance * n_cells as f64);

        let cell_capacity = Material::SILICON.volume_capacity(cell_area * t_si);

        let ambient = cfg.ambient.0;
        let tiers = cfg.tiers;
        let power = (0..tiers)
            .map(|_| PowerMap::zero(cfg.nx, cfg.ny))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ThermalStack {
            cfg,
            g_lat,
            g_vert,
            g_sink,
            g_board,
            cell_capacity,
            power,
            temps: vec![ambient; tiers * n_cells],
        })
    }

    /// Stack configuration.
    #[must_use]
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Number of tiers.
    #[must_use]
    pub fn tiers(&self) -> usize {
        self.cfg.tiers
    }

    fn n_cells(&self) -> usize {
        self.cfg.nx * self.cfg.ny
    }

    fn idx(&self, tier: usize, ix: usize, iy: usize) -> usize {
        tier * self.n_cells() + iy * self.cfg.nx + ix
    }

    fn check_tier(&self, tier: usize) -> Result<(), ThermalError> {
        if tier >= self.cfg.tiers {
            Err(ThermalError::TierOutOfRange {
                tier,
                tiers: self.cfg.tiers,
            })
        } else {
            Ok(())
        }
    }

    /// Assigns the power map of a tier.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::TierOutOfRange`] for a bad tier index;
    /// * [`ThermalError::ResolutionMismatch`] if the map resolution differs
    ///   from the stack grid.
    pub fn set_power(&mut self, tier: usize, map: PowerMap) -> Result<(), ThermalError> {
        self.check_tier(tier)?;
        if map.resolution() != (self.cfg.nx, self.cfg.ny) {
            return Err(ThermalError::ResolutionMismatch {
                expected: (self.cfg.nx, self.cfg.ny),
                got: map.resolution(),
            });
        }
        self.power[tier] = map;
        Ok(())
    }

    /// Mutable access to a tier's power map, for retuning cell power in
    /// place between transient steps without rebuilding (and reallocating)
    /// a fresh map — the allocation-free warm-loop companion to
    /// [`set_power`](Self::set_power).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] for a bad tier index.
    pub fn power_mut(&mut self, tier: usize) -> Result<&mut PowerMap, ThermalError> {
        self.check_tier(tier)?;
        Ok(&mut self.power[tier])
    }

    /// Adds extra vertical conductance (e.g. a TSV bundle) between tiers
    /// `interface` and `interface + 1` at one cell.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] if `interface` is not a valid
    /// interface index or the cell is outside the grid.
    pub fn add_vertical_conductance(
        &mut self,
        interface: usize,
        ix: usize,
        iy: usize,
        g: WattPerKelvin,
    ) -> Result<(), ThermalError> {
        if interface + 1 >= self.cfg.tiers || ix >= self.cfg.nx || iy >= self.cfg.ny {
            return Err(ThermalError::TierOutOfRange {
                tier: interface,
                tiers: self.cfg.tiers.saturating_sub(1),
            });
        }
        self.g_vert[interface][iy * self.cfg.nx + ix] += g.0.max(0.0);
        Ok(())
    }

    /// Temperature of one cell.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] for a bad tier index.
    ///
    /// # Panics
    ///
    /// Panics if `ix`/`iy` are outside the grid.
    pub fn temperature(&self, tier: usize, ix: usize, iy: usize) -> Result<Celsius, ThermalError> {
        self.check_tier(tier)?;
        assert!(ix < self.cfg.nx && iy < self.cfg.ny, "cell out of range");
        Ok(Celsius(self.temps[self.idx(tier, ix, iy)]))
    }

    /// Bilinear temperature sample at normalized die coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] for a bad tier index.
    pub fn temperature_at(&self, tier: usize, x: f64, y: f64) -> Result<Celsius, ThermalError> {
        self.check_tier(tier)?;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let base = tier * self.n_cells();
        let gx = x.clamp(0.0, 1.0) * (nx - 1).max(1) as f64;
        let gy = y.clamp(0.0, 1.0) * (ny - 1).max(1) as f64;
        let x0 = (gx.floor() as usize).min(nx - 1);
        let y0 = (gy.floor() as usize).min(ny - 1);
        let x1 = (x0 + 1).min(nx - 1);
        let y1 = (y0 + 1).min(ny - 1);
        let tx = gx - x0 as f64;
        let ty = gy - y0 as f64;
        let v = |xx: usize, yy: usize| self.temps[base + yy * nx + xx];
        Ok(Celsius(
            v(x0, y0) * (1.0 - tx) * (1.0 - ty)
                + v(x1, y0) * tx * (1.0 - ty)
                + v(x0, y1) * (1.0 - tx) * ty
                + v(x1, y1) * tx * ty,
        ))
    }

    /// Peak temperature of a tier.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] for a bad tier index.
    pub fn max_temperature(&self, tier: usize) -> Result<Celsius, ThermalError> {
        self.check_tier(tier)?;
        let base = tier * self.n_cells();
        Ok(Celsius(
            self.temps[base..base + self.n_cells()]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        ))
    }

    /// Mean temperature of a tier.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::TierOutOfRange`] for a bad tier index.
    pub fn mean_temperature(&self, tier: usize) -> Result<Celsius, ThermalError> {
        self.check_tier(tier)?;
        let base = tier * self.n_cells();
        let sum: f64 = self.temps[base..base + self.n_cells()].iter().sum();
        Ok(Celsius(sum / self.n_cells() as f64))
    }

    /// Resets every cell to ambient.
    pub fn reset(&mut self) {
        let a = self.cfg.ambient.0;
        self.temps.iter_mut().for_each(|t| *t = a);
    }

    /// Total power currently injected.
    #[must_use]
    pub fn total_power(&self) -> Watt {
        self.power.iter().map(PowerMap::total).sum()
    }

    // ---- solver internals (used by `solve`) -------------------------------

    /// Per-visit `(Σg, Σg·T)` over one cell's neighbours and boundaries.
    ///
    /// Retained (test-only) as the reference implementation the
    /// [`Stencil`] equivalence tests replay; the solvers themselves now
    /// iterate the flattened stencil.
    #[cfg(test)]
    pub(crate) fn neighbours_sum(&self, tier: usize, ix: usize, iy: usize) -> (f64, f64) {
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let cell = iy * nx + ix;
        let mut g_sum = 0.0;
        let mut gt_sum = 0.0;
        let mut visit = |g: f64, t: f64| {
            g_sum += g;
            gt_sum += g * t;
        };
        if ix > 0 {
            visit(self.g_lat, self.temps[self.idx(tier, ix - 1, iy)]);
        }
        if ix + 1 < nx {
            visit(self.g_lat, self.temps[self.idx(tier, ix + 1, iy)]);
        }
        if iy > 0 {
            visit(self.g_lat, self.temps[self.idx(tier, ix, iy - 1)]);
        }
        if iy + 1 < ny {
            visit(self.g_lat, self.temps[self.idx(tier, ix, iy + 1)]);
        }
        if tier > 0 {
            visit(
                self.g_vert[tier - 1][cell],
                self.temps[self.idx(tier - 1, ix, iy)],
            );
        }
        if tier + 1 < self.cfg.tiers {
            visit(
                self.g_vert[tier][cell],
                self.temps[self.idx(tier + 1, ix, iy)],
            );
        }
        let ambient = self.cfg.ambient.0;
        if tier == 0 {
            visit(self.g_board, ambient);
        }
        if tier + 1 == self.cfg.tiers {
            visit(self.g_sink, ambient);
        }
        (g_sum, gt_sum)
    }

    pub(crate) fn cell_power(&self, tier: usize, ix: usize, iy: usize) -> f64 {
        self.power[tier].cell(ix, iy).0
    }

    /// Applies the conductance matrix: `out = A·x`, where
    /// `A·x|i = (Σ_j g_ij + g_boundary,i)·x_i − Σ_j g_ij·x_j` over grid
    /// neighbours `j`. Boundary conductances contribute to the diagonal
    /// only; their ambient drive belongs in the right-hand side. `A` is
    /// symmetric positive-definite, which is what lets conjugate gradients
    /// solve the steady state.
    pub(crate) fn apply_conductance(&self, x: &[f64], out: &mut [f64]) {
        let (tiers, nx, ny) = self.grid();
        debug_assert_eq!(x.len(), tiers * nx * ny);
        debug_assert_eq!(out.len(), x.len());
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = self.idx(tier, ix, iy);
                    let cell = iy * nx + ix;
                    let mut g_sum = 0.0;
                    let mut gx_sum = 0.0;
                    let mut visit = |g: f64, xv: f64| {
                        g_sum += g;
                        gx_sum += g * xv;
                    };
                    if ix > 0 {
                        visit(self.g_lat, x[self.idx(tier, ix - 1, iy)]);
                    }
                    if ix + 1 < nx {
                        visit(self.g_lat, x[self.idx(tier, ix + 1, iy)]);
                    }
                    if iy > 0 {
                        visit(self.g_lat, x[self.idx(tier, ix, iy - 1)]);
                    }
                    if iy + 1 < ny {
                        visit(self.g_lat, x[self.idx(tier, ix, iy + 1)]);
                    }
                    if tier > 0 {
                        visit(self.g_vert[tier - 1][cell], x[self.idx(tier - 1, ix, iy)]);
                    }
                    if tier + 1 < tiers {
                        visit(self.g_vert[tier][cell], x[self.idx(tier + 1, ix, iy)]);
                    }
                    if tier == 0 {
                        g_sum += self.g_board;
                    }
                    if tier + 1 == tiers {
                        g_sum += self.g_sink;
                    }
                    out[i] = g_sum * x[i] - gx_sum;
                }
            }
        }
    }

    /// Right-hand side of the steady-state system `A·T = b`:
    /// `b_i = P_i + g_boundary,i·T_ambient`.
    pub(crate) fn steady_state_rhs(&self, out: &mut [f64]) {
        let (tiers, nx, ny) = self.grid();
        let ambient = self.cfg.ambient.0;
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = self.idx(tier, ix, iy);
                    let mut b = self.cell_power(tier, ix, iy);
                    if tier == 0 {
                        b += self.g_board * ambient;
                    }
                    if tier + 1 == tiers {
                        b += self.g_sink * ambient;
                    }
                    out[i] = b;
                }
            }
        }
    }

    pub(crate) fn cell_capacity(&self) -> f64 {
        self.cell_capacity
    }

    // ---- network coefficients (used by `multigrid` to build its finest
    // level; the hierarchy must see the exact conductances
    // `apply_conductance` and `neighbours_sum` use) ----------------------

    /// Lateral in-plane conductance, W/K.
    pub(crate) fn g_lat(&self) -> f64 {
        self.g_lat
    }

    /// Per-cell vertical conductances of interface `iface` (couples tier
    /// `iface` and `iface + 1`), W/K.
    pub(crate) fn g_vert(&self, iface: usize) -> &[f64] {
        &self.g_vert[iface]
    }

    /// Per-cell top-tier conductance to the heat sink, W/K.
    pub(crate) fn g_sink(&self) -> f64 {
        self.g_sink
    }

    /// Per-cell bottom-tier conductance to the package/board, W/K.
    pub(crate) fn g_board(&self) -> f64 {
        self.g_board
    }

    pub(crate) fn temps_mut(&mut self) -> &mut Vec<f64> {
        &mut self.temps
    }

    #[cfg(test)]
    pub(crate) fn flat_index(&self, tier: usize, ix: usize, iy: usize) -> usize {
        self.idx(tier, ix, iy)
    }

    pub(crate) fn grid(&self) -> (usize, usize, usize) {
        (self.cfg.tiers, self.cfg.nx, self.cfg.ny)
    }

    /// Flattens the RC network into a [`Stencil`]: the lateral/vertical
    /// conductances, precomputed boundary drive terms, the per-cell
    /// conductance sum, and a power snapshot — everything
    /// temperature-independent that `ThermalStack::neighbours_sum` and
    /// [`ThermalStack::cell_power`] recompute on every visit.
    ///
    /// Bit-identity contract: the stencil kernels visit neighbours in the
    /// exact order of `ThermalStack::neighbours_sum` (left, right, up,
    /// down, below, above, board, sink) and `g_sum` is accumulated in that
    /// same order, so replaying a stencil row reproduces `neighbours_sum`
    /// to the bit. The boundary drives stay separate sequential addends
    /// (`g·T_amb` each) rather than being folded into one constant:
    /// `x + 0.0` is not always `x` in IEEE 754 (`-0.0`), and pre-summing
    /// would reassociate.
    pub(crate) fn stencil(&self) -> Stencil {
        let mut st = Stencil::empty();
        self.stencil_into(&mut st);
        st
    }

    /// Refreshes `st` in place from the current network coefficients and
    /// power maps. Equivalent to `*st = self.stencil()` but reuses the
    /// stencil's existing vector storage, so a warm control loop that
    /// rebuilds the stencil every tick (power maps change between steps)
    /// performs no heap allocation once capacities have grown to fit.
    pub(crate) fn stencil_into(&self, st: &mut Stencil) {
        let (tiers, nx, ny) = self.grid();
        let n_cells = nx * ny;
        let ambient = self.cfg.ambient.0;
        let g_sum = &mut st.g_sum;
        let power = &mut st.power;
        g_sum.clear();
        power.clear();
        g_sum.reserve(tiers * n_cells);
        power.reserve(tiers * n_cells);
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let cell = iy * nx + ix;
                    let mut g = 0.0;
                    if ix > 0 {
                        g += self.g_lat;
                    }
                    if ix + 1 < nx {
                        g += self.g_lat;
                    }
                    if iy > 0 {
                        g += self.g_lat;
                    }
                    if iy + 1 < ny {
                        g += self.g_lat;
                    }
                    if tier > 0 {
                        g += self.g_vert[tier - 1][cell];
                    }
                    if tier + 1 < tiers {
                        g += self.g_vert[tier][cell];
                    }
                    if tier == 0 {
                        g += self.g_board;
                    }
                    if tier + 1 == tiers {
                        g += self.g_sink;
                    }
                    g_sum.push(g);
                    power.push(self.cell_power(tier, ix, iy));
                }
            }
        }
        st.g_vert.clear();
        st.g_vert.reserve(tiers.saturating_sub(1) * n_cells);
        for iface in &self.g_vert {
            st.g_vert.extend_from_slice(iface);
        }
        st.tiers = tiers;
        st.nx = nx;
        st.ny = ny;
        st.g_lat = self.g_lat;
        st.board_gt = self.g_board * ambient;
        st.sink_gt = self.g_sink * ambient;
    }
}

/// A flattened, coefficient-precomputed view of the RC network for one
/// solve. Cells are visited in flat-index (tier-major, then row-major)
/// order — exactly the historical Gauss–Seidel sweep order — and every
/// neighbour sits at a fixed stride (`±1`, `±nx`, `±nx·ny`), so the
/// kernels below need no per-neighbour index or conductance loads beyond
/// the non-uniform vertical (TSV-augmented) interface conductances.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Stencil {
    tiers: usize,
    nx: usize,
    ny: usize,
    /// Lateral conductance between in-plane neighbours, W/K.
    g_lat: f64,
    /// Vertical interface conductances, `[iface · nx·ny + cell]`, W/K.
    g_vert: Vec<f64>,
    /// Board boundary drive `g_board · T_ambient` (tier 0 cells).
    board_gt: f64,
    /// Sink boundary drive `g_sink · T_ambient` (top-tier cells).
    sink_gt: f64,
    /// Per-cell `Σg` including boundaries, accumulated in visit order.
    g_sum: Vec<f64>,
    /// Per-cell injected power snapshot, W.
    power: Vec<f64>,
}

impl Stencil {
    /// A zero-cell stencil, ready to be filled by
    /// [`ThermalStack::stencil_into`].
    pub(crate) fn empty() -> Stencil {
        Stencil {
            tiers: 0,
            nx: 0,
            ny: 0,
            g_lat: 0.0,
            g_vert: Vec::new(),
            board_gt: 0.0,
            sink_gt: 0.0,
            g_sum: Vec::new(),
            power: Vec::new(),
        }
    }

    /// Number of cells.
    pub(crate) fn len(&self) -> usize {
        self.g_sum.len()
    }

    /// Stiffest cell's `Σg`, scanned in flat order (the stability bound
    /// for explicit transient integration).
    pub(crate) fn g_max(&self) -> f64 {
        let mut g_max: f64 = 0.0;
        for &g in &self.g_sum {
            g_max = g_max.max(g);
        }
        g_max
    }

    /// `Σ g·T` over one cell's neighbours and boundary drives, replaying
    /// the accumulation order of `ThermalStack::neighbours_sum` over the
    /// given temperature field — bit-identical to the `gt_sum` it
    /// returns. The neighbour set is monomorphized: `L`/`R`/`UP`/`DOWN`
    /// say which in-plane neighbours exist, `BELOW`/`ABOVE` which
    /// vertical interfaces do — and since the board couples exactly the
    /// tiers with no interface below (and the sink those with none
    /// above), `!BELOW`/`!ABOVE` are the boundary terms. The compiled
    /// cell body is branch-free.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn cell_gt<
        const L: bool,
        const R: bool,
        const UP: bool,
        const DOWN: bool,
        const BELOW: bool,
        const ABOVE: bool,
    >(
        &self,
        temps: &[f64],
        i: usize,
        cell: usize,
        below: &[f64],
        above: &[f64],
    ) -> f64 {
        let nx = self.nx;
        let n_cells = self.nx * self.ny;
        let mut gt = 0.0;
        if L {
            gt += self.g_lat * temps[i - 1];
        }
        if R {
            gt += self.g_lat * temps[i + 1];
        }
        if UP {
            gt += self.g_lat * temps[i - nx];
        }
        if DOWN {
            gt += self.g_lat * temps[i + nx];
        }
        if BELOW {
            gt += below[cell] * temps[i - n_cells];
        }
        if ABOVE {
            gt += above[cell] * temps[i + n_cells];
        }
        if !BELOW {
            gt += self.board_gt;
        }
        if !ABOVE {
            gt += self.sink_gt;
        }
        gt
    }

    /// SOR-updates cell `i` given its neighbour sum, tracking the sweep
    /// residual when asked.
    #[inline(always)]
    fn sor_update<const TRACK: bool>(
        &self,
        temps: &mut [f64],
        i: usize,
        gt: f64,
        omega: f64,
        residual: &mut f64,
    ) {
        let gauss = (gt + self.power[i]) / self.g_sum[i];
        let old = temps[i];
        let new = old + omega * (gauss - old);
        if TRACK {
            *residual = (*residual).max((new - old).abs());
        }
        temps[i] = new;
    }

    /// One Gauss–Seidel row: the `ix = 0` cell, a branch-free interior
    /// run, and the `ix = nx − 1` cell. `i0`/`cell0` index the row's
    /// first cell.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn sor_row<
        const TRACK: bool,
        const UP: bool,
        const DOWN: bool,
        const BELOW: bool,
        const ABOVE: bool,
    >(
        &self,
        temps: &mut [f64],
        i0: usize,
        cell0: usize,
        below: &[f64],
        above: &[f64],
        omega: f64,
        residual: &mut f64,
    ) {
        let nx = self.nx;
        if nx == 1 {
            let gt = self
                .cell_gt::<false, false, UP, DOWN, BELOW, ABOVE>(temps, i0, cell0, below, above);
            self.sor_update::<TRACK>(temps, i0, gt, omega, residual);
            return;
        }
        let gt =
            self.cell_gt::<false, true, UP, DOWN, BELOW, ABOVE>(temps, i0, cell0, below, above);
        self.sor_update::<TRACK>(temps, i0, gt, omega, residual);
        for dx in 1..nx - 1 {
            let (i, cell) = (i0 + dx, cell0 + dx);
            let gt =
                self.cell_gt::<true, true, UP, DOWN, BELOW, ABOVE>(temps, i, cell, below, above);
            self.sor_update::<TRACK>(temps, i, gt, omega, residual);
        }
        let (i, cell) = (i0 + nx - 1, cell0 + nx - 1);
        let gt = self.cell_gt::<true, false, UP, DOWN, BELOW, ABOVE>(temps, i, cell, below, above);
        self.sor_update::<TRACK>(temps, i, gt, omega, residual);
    }

    /// One tier of the sweep: the `iy = 0` row, the interior rows, and
    /// the `iy = ny − 1` row, each dispatched to the monomorphized row
    /// kernel.
    #[inline(always)]
    fn sor_tier<const TRACK: bool, const BELOW: bool, const ABOVE: bool>(
        &self,
        temps: &mut [f64],
        tier: usize,
        below: &[f64],
        above: &[f64],
        omega: f64,
        residual: &mut f64,
    ) {
        let (nx, ny) = (self.nx, self.ny);
        let base = tier * nx * ny;
        if ny == 1 {
            self.sor_row::<TRACK, false, false, BELOW, ABOVE>(
                temps, base, 0, below, above, omega, residual,
            );
            return;
        }
        self.sor_row::<TRACK, false, true, BELOW, ABOVE>(
            temps, base, 0, below, above, omega, residual,
        );
        for iy in 1..ny - 1 {
            let row = iy * nx;
            self.sor_row::<TRACK, true, true, BELOW, ABOVE>(
                temps,
                base + row,
                row,
                below,
                above,
                omega,
                residual,
            );
        }
        let row = (ny - 1) * nx;
        self.sor_row::<TRACK, true, false, BELOW, ABOVE>(
            temps,
            base + row,
            row,
            below,
            above,
            omega,
            residual,
        );
    }

    /// The vertical-conductance rows adjacent to `tier` (`(below,
    /// above)`), empty when the tier has no such interface.
    #[inline]
    fn tier_ifaces(&self, tier: usize) -> (&[f64], &[f64]) {
        let n_cells = self.nx * self.ny;
        let iface = |k: usize| &self.g_vert[k * n_cells..(k + 1) * n_cells];
        let below = if tier > 0 { iface(tier - 1) } else { &[] };
        let above = if tier + 1 < self.tiers {
            iface(tier)
        } else {
            &[]
        };
        (below, above)
    }

    /// One in-place Gauss–Seidel/SOR sweep over `temps` in flat-index
    /// order, replaying the per-cell accumulation order of
    /// `ThermalStack::neighbours_sum` bit-for-bit. With `TRACK` the
    /// per-sweep max `|Δt|` residual is returned; without it the residual
    /// bookkeeping compiles out and `0.0` comes back.
    pub(crate) fn sor_sweep<const TRACK: bool>(&self, temps: &mut [f64], omega: f64) -> f64 {
        let n = self.tiers * self.nx * self.ny;
        assert_eq!(temps.len(), n, "temperature field / stencil mismatch");
        assert_eq!(self.g_sum.len(), n);
        assert_eq!(self.power.len(), n);
        let mut residual = 0.0f64;
        for tier in 0..self.tiers {
            let (below, above) = self.tier_ifaces(tier);
            match (tier > 0, tier + 1 < self.tiers) {
                (false, false) => self.sor_tier::<TRACK, false, false>(
                    temps,
                    tier,
                    below,
                    above,
                    omega,
                    &mut residual,
                ),
                (false, true) => self.sor_tier::<TRACK, false, true>(
                    temps,
                    tier,
                    below,
                    above,
                    omega,
                    &mut residual,
                ),
                (true, true) => self.sor_tier::<TRACK, true, true>(
                    temps,
                    tier,
                    below,
                    above,
                    omega,
                    &mut residual,
                ),
                (true, false) => self.sor_tier::<TRACK, true, false>(
                    temps,
                    tier,
                    below,
                    above,
                    omega,
                    &mut residual,
                ),
            }
        }
        residual
    }

    /// `dT/dt` of cell `i` from its neighbour sum: the historical
    /// transient loop's `(Σg·T − Σg·t + P) / C` per-cell expression.
    #[inline(always)]
    fn deriv_update(&self, temps: &[f64], i: usize, gt: f64, cap: f64, derivs: &mut [f64]) {
        derivs[i] = (gt - self.g_sum[i] * temps[i] + self.power[i]) / cap;
    }

    /// One transient row, split like [`Stencil::sor_row`].
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn deriv_row<const UP: bool, const DOWN: bool, const BELOW: bool, const ABOVE: bool>(
        &self,
        temps: &[f64],
        i0: usize,
        cell0: usize,
        below: &[f64],
        above: &[f64],
        cap: f64,
        derivs: &mut [f64],
    ) {
        let nx = self.nx;
        if nx == 1 {
            let gt = self
                .cell_gt::<false, false, UP, DOWN, BELOW, ABOVE>(temps, i0, cell0, below, above);
            self.deriv_update(temps, i0, gt, cap, derivs);
            return;
        }
        let gt =
            self.cell_gt::<false, true, UP, DOWN, BELOW, ABOVE>(temps, i0, cell0, below, above);
        self.deriv_update(temps, i0, gt, cap, derivs);
        for dx in 1..nx - 1 {
            let (i, cell) = (i0 + dx, cell0 + dx);
            let gt =
                self.cell_gt::<true, true, UP, DOWN, BELOW, ABOVE>(temps, i, cell, below, above);
            self.deriv_update(temps, i, gt, cap, derivs);
        }
        let (i, cell) = (i0 + nx - 1, cell0 + nx - 1);
        let gt = self.cell_gt::<true, false, UP, DOWN, BELOW, ABOVE>(temps, i, cell, below, above);
        self.deriv_update(temps, i, gt, cap, derivs);
    }

    /// One transient tier, split like [`Stencil::sor_tier`].
    #[inline(always)]
    fn deriv_tier<const BELOW: bool, const ABOVE: bool>(
        &self,
        temps: &[f64],
        tier: usize,
        below: &[f64],
        above: &[f64],
        cap: f64,
        derivs: &mut [f64],
    ) {
        let (nx, ny) = (self.nx, self.ny);
        let base = tier * nx * ny;
        if ny == 1 {
            self.deriv_row::<false, false, BELOW, ABOVE>(temps, base, 0, below, above, cap, derivs);
            return;
        }
        self.deriv_row::<false, true, BELOW, ABOVE>(temps, base, 0, below, above, cap, derivs);
        for iy in 1..ny - 1 {
            let row = iy * nx;
            self.deriv_row::<true, true, BELOW, ABOVE>(
                temps,
                base + row,
                row,
                below,
                above,
                cap,
                derivs,
            );
        }
        let row = (ny - 1) * nx;
        self.deriv_row::<true, false, BELOW, ABOVE>(
            temps,
            base + row,
            row,
            below,
            above,
            cap,
            derivs,
        );
    }

    /// Writes `dT/dt` for every cell into `derivs` (Jacobi-style: all
    /// reads before any write, matching the historical transient loop's
    /// `(Σg·T − Σg·t + P) / C` per-cell expression bit-for-bit).
    pub(crate) fn derivs_into(&self, temps: &[f64], cap: f64, derivs: &mut [f64]) {
        let n = self.tiers * self.nx * self.ny;
        assert_eq!(temps.len(), n, "temperature field / stencil mismatch");
        assert_eq!(derivs.len(), n);
        assert_eq!(self.g_sum.len(), n);
        assert_eq!(self.power.len(), n);
        for tier in 0..self.tiers {
            let (below, above) = self.tier_ifaces(tier);
            match (tier > 0, tier + 1 < self.tiers) {
                (false, false) => {
                    self.deriv_tier::<false, false>(temps, tier, below, above, cap, derivs);
                }
                (false, true) => {
                    self.deriv_tier::<false, true>(temps, tier, below, above, cap, derivs);
                }
                (true, true) => {
                    self.deriv_tier::<true, true>(temps, tier, below, above, cap, derivs);
                }
                (true, false) => {
                    self.deriv_tier::<true, false>(temps, tier, below, above, cap, derivs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_config() {
        let mut cfg = StackConfig::four_tier_5mm();
        cfg.nx = 0;
        assert!(ThermalStack::new(cfg).is_err());
        let mut cfg = StackConfig::four_tier_5mm();
        cfg.tier_thickness = Micron(0.0);
        assert!(ThermalStack::new(cfg).is_err());
        assert!(ThermalStack::new(StackConfig::four_tier_5mm()).is_ok());
    }

    #[test]
    fn starts_at_ambient() {
        let s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        for tier in 0..4 {
            assert_eq!(s.temperature(tier, 0, 0).unwrap(), Celsius(25.0));
            assert_eq!(s.mean_temperature(tier).unwrap(), Celsius(25.0));
        }
    }

    #[test]
    fn set_power_validates() {
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        assert!(s
            .set_power(0, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .is_ok());
        assert!(s
            .set_power(9, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .is_err());
        assert!(s
            .set_power(0, PowerMap::uniform(8, 8, Watt(1.0)).unwrap())
            .is_err());
        assert!((s.total_power().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tsv_conductance_bounds_checked() {
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        assert!(s
            .add_vertical_conductance(0, 0, 0, WattPerKelvin(1e-3))
            .is_ok());
        assert!(s
            .add_vertical_conductance(3, 0, 0, WattPerKelvin(1e-3))
            .is_err());
        assert!(s
            .add_vertical_conductance(0, 99, 0, WattPerKelvin(1e-3))
            .is_err());
    }

    #[test]
    fn single_tier_has_no_interfaces() {
        let s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        assert_eq!(s.tiers(), 1);
        // Both boundaries active on the one tier.
        let (g, _) = s.neighbours_sum(0, 8, 8);
        assert!(g > 0.0);
    }

    #[test]
    fn temperature_at_interpolates_and_clamps() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let i = s.flat_index(0, 0, 0);
        s.temps_mut()[i] = 50.0;
        let t_corner = s.temperature_at(0, -1.0, -1.0).unwrap();
        assert_eq!(t_corner, Celsius(50.0));
        let t_mid = s.temperature_at(0, 0.5, 0.5).unwrap();
        assert!(t_mid.0 >= 25.0 && t_mid.0 <= 50.0);
        assert!(s.temperature_at(7, 0.5, 0.5).is_err());
    }

    #[test]
    fn reset_restores_ambient() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let i = s.flat_index(0, 3, 3);
        s.temps_mut()[i] = 90.0;
        s.reset();
        assert_eq!(s.temperature(0, 3, 3).unwrap(), Celsius(25.0));
    }
}
