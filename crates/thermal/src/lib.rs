//! # ptsim-thermal
//!
//! 3D stacked-die thermal simulator for the SOCC 2012 PT-sensor
//! reproduction.
//!
//! The silicon paper graded its sensor against thermal-chamber ground truth;
//! this crate replaces the chamber (and the 3D stack the sensor motivates):
//! each tier of a [`stack::ThermalStack`] is an RC grid of silicon cells,
//! tiers couple through bond layers and TSV thermal vias, and the stack is
//! terminated by a heat sink on top and the package/board underneath.
//! [`solve::solve_steady_state`] (Gauss–Seidel with SOR) and
//! [`solve::step_transient`] (stability-substepped explicit Euler) produce
//! the ground-truth temperature fields the sensor is evaluated against.
//!
//! Three steady-state solvers share the identical linear system (see
//! DESIGN.md, "Thermal solver hierarchy"): the lexicographic Gauss–Seidel
//! oracle ([`solve::solve_steady_state`], the bit-exact default at small
//! sizes), matrix-free conjugate gradients ([`cg::solve_steady_state_cg`]),
//! and the geometric multigrid production solver
//! ([`multigrid::solve_steady_state_mg`]) that makes 32²–64²-per-tier
//! grids routine.
//!
//! ## Example
//!
//! ```
//! use ptsim_thermal::power::PowerMap;
//! use ptsim_thermal::solve::{solve_steady_state, SolveOptions};
//! use ptsim_thermal::stack::{StackConfig, ThermalStack};
//! use ptsim_device::units::Watt;
//!
//! # fn main() -> Result<(), ptsim_thermal::error::ThermalError> {
//! let mut stack = ThermalStack::new(StackConfig::four_tier_5mm())?;
//! let mut power = PowerMap::zero(16, 16)?;
//! power.add_hotspot(0.3, 0.7, 0.1, Watt(1.5));
//! stack.set_power(0, power)?;
//! solve_steady_state(&mut stack, &SolveOptions::default())?;
//! assert!(stack.max_temperature(0)?.0 > 25.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod cg;
pub mod error;
mod linalg;
pub mod material;
pub mod multigrid;
pub mod power;
pub mod solve;
pub mod stack;

pub use cg::{solve_steady_state_cg, CgOptions};
pub use error::ThermalError;
pub use material::Material;
pub use multigrid::{solve_steady_state_mg, MgOptions, MultigridSolver};
pub use power::PowerMap;
pub use solve::{
    run_transient, solve_steady_state, step_transient, step_transient_with, SolveOptions,
    SolveStats, TransientScratch,
};
pub use stack::{StackConfig, ThermalStack};
