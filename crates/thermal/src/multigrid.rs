//! Geometric multigrid steady-state solver.
//!
//! The production solver for large grids: a V-cycle over a hierarchy of
//! conductance networks, each level coarsening the in-plane grid 2× per
//! axis (tiers are few and carry the non-uniform TSV conductances, so the
//! vertical dimension is never coarsened — semi-coarsening in `z`).
//!
//! * **Smoother** — red-black Gauss–Seidel: cells are two-colored by
//!   `(ix + iy + tier) parity`, so every neighbour of a cell has the other
//!   color and a half-sweep over one color reads only the frozen other
//!   color. That makes the sweep embarrassingly parallel *and* bit-exactly
//!   independent of thread count and traversal order (each cell's update
//!   is a pure function of the other color), which is what the
//!   determinism gates rely on.
//! * **Restriction** — full-weighting over 2×2 in-plane blocks, realised
//!   as a block *sum* of residuals (residuals are cell-integrated watts,
//!   so the coarse cell's right-hand side is the sum of its fine cells' —
//!   the block-average variant only rescales both sides of the coarse
//!   equation by the block size, which leaves the correction unchanged);
//!   odd grid edges become width-1 blocks with no padding.
//! * **Prolongation** — trilinear interpolation of the coarse correction;
//!   with `z` uncoarsened it reduces to bilinear interpolation between
//!   the geometric centres of the (possibly width-1) coarse blocks,
//!   clamped at the die edges. Interpolation order 2 plus restriction
//!   order 1 exceeds the order of the second-order operator, which is the
//!   classical condition for level-independent V-cycle convergence on
//!   cell-centred grids.
//! * **Coarse operator** — conductance rediscretization: a coarse lateral
//!   link sums the fine conductances crossing the coarse-block boundary
//!   (parallel paths) scaled by the inverse centre-to-centre block
//!   distance (longer series path), block-internal links vanish, and
//!   vertical/ground conductances sum over the block — so every level is
//!   again a well-posed grounded RC network (symmetric M-matrix) of the
//!   same shape as the finest one.
//! * **Coarsest level** — once the in-plane grid is ≤ 2×2 the remaining
//!   `tiers × nx × ny` system is solved directly by a dense Cholesky
//!   factorisation computed once at setup.
//!
//! The solver is graded on the residual 2-norm of the *same* linear
//! system the lexicographic [`crate::solve::solve_steady_state`] oracle
//! and the [`crate::cg`] solver assemble (`A·T = b` with
//! `b = P + g_boundary·T_ambient`), not on sweep-order identity: the
//! oracle remains the default/bit-exact reference at small sizes, and the
//! multigrid path converges to it within the tolerance documented in
//! EXPERIMENTS.md.

use crate::error::ThermalError;
use crate::linalg::norm2;
use crate::solve::SolveStats;
use crate::stack::ThermalStack;

/// Minimum cells on a level before a color half-sweep is split across
/// worker threads; below this the scoped-thread dispatch costs more than
/// the sweep.
const PARALLEL_MIN_CELLS: usize = 2048;

/// Under-/over-relaxation of the red-black half-sweeps. Tuned
/// empirically on the reference stacks (see EXPERIMENTS.md); unlike the
/// lexicographic oracle's SOR factor this only shapes the *smoother*, so
/// the converged field is unaffected.
const SMOOTH_OMEGA: f64 = 1.3;

/// Options for the multigrid steady-state solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgOptions {
    /// Convergence tolerance on the residual 2-norm relative to `‖b‖`
    /// (the same criterion as [`crate::cg::CgOptions`]).
    pub tolerance: f64,
    /// Maximum number of V-cycles before giving up.
    pub max_cycles: usize,
    /// Red-black smoothing sweeps before each coarse-grid correction.
    pub pre_smooth: usize,
    /// Red-black smoothing sweeps after each coarse-grid correction.
    pub post_smooth: usize,
    /// Worker threads for the red-black half-sweeps on levels with at
    /// least `PARALLEL_MIN_CELLS` cells. `0` means one per available CPU;
    /// results are bit-identical for every thread count.
    pub threads: usize,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            tolerance: 1e-10,
            max_cycles: 200,
            pre_smooth: 2,
            post_smooth: 2,
            threads: 1,
        }
    }
}

/// One level of the hierarchy: a grounded conductance network over a
/// `tiers × ny × nx` cell grid. Arrays are flat in the stack's
/// tier-major, then row-major order; directional conductances are zero
/// where the neighbour does not exist.
#[derive(Debug, Clone)]
struct Level {
    tiers: usize,
    nx: usize,
    ny: usize,
    /// Conductance to the `ix + 1` neighbour (0 on the east edge), W/K.
    g_xp: Vec<f64>,
    /// Conductance to the `iy + 1` neighbour (0 on the north edge), W/K.
    g_yp: Vec<f64>,
    /// Conductance to the tier above (0 on the top tier), W/K.
    g_zp: Vec<f64>,
    /// Boundary (sink/board) conductance to ambient, W/K.
    g_ground: Vec<f64>,
    /// Row sum: every incident conductance plus ground, W/K.
    diag: Vec<f64>,
}

/// Per-level solve state, kept outside [`Level`] so the coefficient
/// tables can be borrowed immutably while the fields mutate.
#[derive(Debug, Clone)]
struct Work {
    /// Solution / correction on this level.
    x: Vec<f64>,
    /// Right-hand side (fine) or restricted residual (coarse).
    b: Vec<f64>,
    /// Residual workspace.
    r: Vec<f64>,
    /// Double buffer for parallel half-sweeps.
    scratch: Vec<f64>,
}

impl Work {
    fn new(n: usize) -> Self {
        Work {
            x: vec![0.0; n],
            b: vec![0.0; n],
            r: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }
}

/// 1D interpolation stencil for one fine index: the two bracketing coarse
/// indices and the weight of the second (`value = (1−w)·c[i0] + w·c[i1]`).
#[derive(Debug, Clone, Copy)]
struct Interp {
    i0: usize,
    i1: usize,
    w: f64,
}

/// Transfer operators between a fine level and the next coarser one:
/// per-axis linear-interpolation stencils from coarse block centres.
#[derive(Debug, Clone)]
struct Transfer {
    /// Per fine `ix` stencil into coarse `I`.
    fx: Vec<Interp>,
    /// Per fine `iy` stencil into coarse `J`.
    fy: Vec<Interp>,
}

impl Level {
    fn n_cells(&self) -> usize {
        self.nx * self.ny
    }

    fn len(&self) -> usize {
        self.tiers * self.nx * self.ny
    }

    /// Builds the finest level straight from the stack's RC network; the
    /// resulting operator is identical to
    /// [`ThermalStack::apply_conductance`].
    fn from_stack(stack: &ThermalStack) -> Level {
        let (tiers, nx, ny) = stack.grid();
        let n_cells = nx * ny;
        let n = tiers * n_cells;
        let g_lat = stack.g_lat();
        let mut g_xp = vec![0.0; n];
        let mut g_yp = vec![0.0; n];
        let mut g_zp = vec![0.0; n];
        let mut g_ground = vec![0.0; n];
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let cell = iy * nx + ix;
                    let i = tier * n_cells + cell;
                    if ix + 1 < nx {
                        g_xp[i] = g_lat;
                    }
                    if iy + 1 < ny {
                        g_yp[i] = g_lat;
                    }
                    if tier + 1 < tiers {
                        g_zp[i] = stack.g_vert(tier)[cell];
                    }
                    if tier == 0 {
                        g_ground[i] += stack.g_board();
                    }
                    if tier + 1 == tiers {
                        g_ground[i] += stack.g_sink();
                    }
                }
            }
        }
        let mut level = Level {
            tiers,
            nx,
            ny,
            g_xp,
            g_yp,
            g_zp,
            g_ground,
            diag: Vec::new(),
        };
        level.rebuild_diag();
        level
    }

    fn rebuild_diag(&mut self) {
        let (nx, ny, tiers) = (self.nx, self.ny, self.tiers);
        let n_cells = nx * ny;
        let n = self.len();
        let mut diag = vec![0.0; n];
        for (i, d) in diag.iter_mut().enumerate() {
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let tier = i / n_cells;
            let mut g = self.g_ground[i];
            if ix > 0 {
                g += self.g_xp[i - 1];
            }
            if ix + 1 < nx {
                g += self.g_xp[i];
            }
            if iy > 0 {
                g += self.g_yp[i - nx];
            }
            if iy + 1 < ny {
                g += self.g_yp[i];
            }
            if tier > 0 {
                g += self.g_zp[i - n_cells];
            }
            if tier + 1 < tiers {
                g += self.g_zp[i];
            }
            *d = g;
        }
        self.diag = diag;
    }

    /// `Σ g·x` over the (up to six) neighbours of flat cell `i`.
    #[inline]
    fn gather(&self, x: &[f64], i: usize, ix: usize, iy: usize, tier: usize) -> f64 {
        let nx = self.nx;
        let n_cells = self.n_cells();
        let mut gt = 0.0;
        if ix > 0 {
            gt += self.g_xp[i - 1] * x[i - 1];
        }
        if ix + 1 < nx {
            gt += self.g_xp[i] * x[i + 1];
        }
        if iy > 0 {
            gt += self.g_yp[i - nx] * x[i - nx];
        }
        if iy + 1 < self.ny {
            gt += self.g_yp[i] * x[i + nx];
        }
        if tier > 0 {
            gt += self.g_zp[i - n_cells] * x[i - n_cells];
        }
        if tier + 1 < self.tiers {
            gt += self.g_zp[i] * x[i + n_cells];
        }
        gt
    }

    /// Sequential in-place half-sweep over cells of one color. Reads only
    /// the other color, so it computes the same values as the parallel
    /// double-buffered variant bit for bit.
    fn half_sweep_seq(&self, x: &mut [f64], b: &[f64], color: usize) {
        let (nx, ny) = (self.nx, self.ny);
        for tier in 0..self.tiers {
            for iy in 0..ny {
                let first = (color + iy + tier) & 1;
                let row = tier * self.n_cells() + iy * nx;
                let mut ix = first;
                while ix < nx {
                    let i = row + ix;
                    let gt = self.gather(x, i, ix, iy, tier);
                    let gauss = (b[i] + gt) / self.diag[i];
                    x[i] += SMOOTH_OMEGA * (gauss - x[i]);
                    ix += 2;
                }
            }
        }
    }

    /// Parallel half-sweep: workers read the whole frozen field and write
    /// disjoint row bands of `scratch` (updated cells of `color`, copies
    /// of the rest), then the buffers swap. Chunk boundaries cannot
    /// influence any value, so the result is bit-identical to
    /// [`Level::half_sweep_seq`] for every thread count.
    fn half_sweep_par(
        &self,
        x: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
        b: &[f64],
        color: usize,
        threads: usize,
    ) {
        let (nx, ny) = (self.nx, self.ny);
        let rows_total = self.tiers * ny;
        let rows_per = rows_total.div_ceil(threads);
        let src: &[f64] = x;
        std::thread::scope(|scope| {
            for (chunk_idx, out) in scratch.chunks_mut(rows_per * nx).enumerate() {
                let row0 = chunk_idx * rows_per;
                scope.spawn(move || {
                    for (local_row, gr) in (row0..(row0 + out.len() / nx)).enumerate() {
                        let tier = gr / ny;
                        let iy = gr % ny;
                        let base = gr * nx;
                        let first = (color + iy + tier) & 1;
                        for ix in 0..nx {
                            let i = base + ix;
                            let o = local_row * nx + ix;
                            out[o] = if ix % 2 == first {
                                let gt = self.gather(src, i, ix, iy, tier);
                                let gauss = (b[i] + gt) / self.diag[i];
                                src[i] + SMOOTH_OMEGA * (gauss - src[i])
                            } else {
                                src[i]
                            };
                        }
                    }
                });
            }
        });
        std::mem::swap(x, scratch);
    }

    /// One red-black Gauss–Seidel sweep (both colors).
    fn smooth(&self, work: &mut Work, threads: usize) {
        let par = threads > 1 && self.len() >= PARALLEL_MIN_CELLS;
        for color in 0..2 {
            if par {
                self.half_sweep_par(&mut work.x, &mut work.scratch, &work.b, color, threads);
            } else {
                self.half_sweep_seq(&mut work.x, &work.b, color);
            }
        }
    }

    /// `r = b − A·x`.
    fn residual(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        let (nx, ny) = (self.nx, self.ny);
        for tier in 0..self.tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = tier * self.n_cells() + iy * nx + ix;
                    let gt = self.gather(x, i, ix, iy, tier);
                    r[i] = b[i] - (self.diag[i] * x[i] - gt);
                }
            }
        }
    }

    /// Builds the next-coarser level by conductance rediscretization over
    /// 2×2 in-plane blocks (odd edges become width-1 blocks): a coarse
    /// lateral link sums the fine links crossing the block boundary
    /// (parallel paths) and divides by the centre-to-centre distance of
    /// the two blocks in fine-cell units (longer series path — for the
    /// uniform interior, 2 crossing links over distance 2 reproduce the
    /// scale-invariant square-cell conductance exactly); vertical and
    /// ground conductances sum over the block (the tier axis is not
    /// coarsened, so those distances are unchanged). Block-internal links
    /// vanish. Every level is again a grounded RC network (symmetric
    /// M-matrix).
    fn coarsen(&self) -> Level {
        let (nx, ny, tiers) = (self.nx, self.ny, self.tiers);
        let ncx = nx.div_ceil(2);
        let ncy = ny.div_ceil(2);
        let nc_cells = ncx * ncy;
        let n_c = tiers * nc_cells;
        // Centre-to-centre distance between consecutive blocks, in units
        // of the fine spacing: (width_I + width_{I+1}) / 2.
        let block_w = |n: usize, i: usize| (n - 2 * i).min(2) as f64;
        let x_scale: Vec<f64> = (0..ncx.saturating_sub(1))
            .map(|i| 2.0 / (block_w(nx, i) + block_w(nx, i + 1)))
            .collect();
        let y_scale: Vec<f64> = (0..ncy.saturating_sub(1))
            .map(|j| 2.0 / (block_w(ny, j) + block_w(ny, j + 1)))
            .collect();
        let mut g_xp = vec![0.0; n_c];
        let mut g_yp = vec![0.0; n_c];
        let mut g_zp = vec![0.0; n_c];
        let mut g_ground = vec![0.0; n_c];
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = tier * self.n_cells() + iy * nx + ix;
                    let ci = tier * nc_cells + (iy / 2) * ncx + ix / 2;
                    g_ground[ci] += self.g_ground[i];
                    g_zp[ci] += self.g_zp[i];
                    // A fine link (ix → ix+1) crosses a coarse boundary iff
                    // ix is odd; ditto in y.
                    if ix % 2 == 1 && ix + 1 < nx {
                        g_xp[ci] += self.g_xp[i] * x_scale[ix / 2];
                    }
                    if iy % 2 == 1 && iy + 1 < ny {
                        g_yp[ci] += self.g_yp[i] * y_scale[iy / 2];
                    }
                }
            }
        }
        let mut level = Level {
            tiers,
            nx: ncx,
            ny: ncy,
            g_xp,
            g_yp,
            g_zp,
            g_ground,
            diag: Vec::new(),
        };
        level.rebuild_diag();
        level
    }

    /// Dense symmetric matrix of this level's network (for the coarsest
    /// direct solve).
    fn dense(&self) -> Vec<f64> {
        let n = self.len();
        let (nx, ny) = (self.nx, self.ny);
        let n_cells = self.n_cells();
        let mut a = vec![0.0; n * n];
        for tier in 0..self.tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = tier * n_cells + iy * nx + ix;
                    a[i * n + i] = self.diag[i];
                    if ix + 1 < nx {
                        a[i * n + (i + 1)] = -self.g_xp[i];
                        a[(i + 1) * n + i] = -self.g_xp[i];
                    }
                    if iy + 1 < ny {
                        a[i * n + (i + nx)] = -self.g_yp[i];
                        a[(i + nx) * n + i] = -self.g_yp[i];
                    }
                    if tier + 1 < self.tiers {
                        a[i * n + (i + n_cells)] = -self.g_zp[i];
                        a[(i + n_cells) * n + i] = -self.g_zp[i];
                    }
                }
            }
        }
        a
    }
}

/// 1D linear-interpolation stencils from the centres of the coarse blocks
/// covering a fine axis of `n` cells (`nc = ⌈n/2⌉` blocks of width 2,
/// except a width-1 tail when `n` is odd). Fine centres outside the
/// outermost coarse centres clamp to piecewise-constant.
fn axis_interp(n: usize) -> Vec<Interp> {
    let nc = n.div_ceil(2);
    let centre = |i: usize| {
        let start = 2 * i;
        let width = (n - start).min(2);
        start as f64 + width as f64 / 2.0
    };
    (0..n)
        .map(|ix| {
            let f = ix as f64 + 0.5;
            if f <= centre(0) || nc == 1 {
                return Interp {
                    i0: 0,
                    i1: 0,
                    w: 0.0,
                };
            }
            if f >= centre(nc - 1) {
                return Interp {
                    i0: nc - 1,
                    i1: nc - 1,
                    w: 0.0,
                };
            }
            // f is strictly between the first and last centres; find the
            // bracketing pair (blocks are ≤ 2 wide, so ix/2 is within one
            // of the answer — a short scan keeps this obviously correct).
            let mut i0 = (ix / 2).min(nc - 2);
            while i0 > 0 && f < centre(i0) {
                i0 -= 1;
            }
            while i0 + 2 < nc && f > centre(i0 + 1) {
                i0 += 1;
            }
            let c0 = centre(i0);
            let c1 = centre(i0 + 1);
            Interp {
                i0,
                i1: i0 + 1,
                w: (f - c0) / (c1 - c0),
            }
        })
        .collect()
}

/// Cholesky factor (lower triangle, row-major) of a dense SPD matrix.
#[derive(Debug, Clone)]
struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    fn factor(mut a: Vec<f64>, n: usize) -> Result<Cholesky, ThermalError> {
        for j in 0..n {
            for k in 0..j {
                let ljk = a[j * n + k];
                for i in j..n {
                    a[i * n + j] -= a[i * n + k] * ljk;
                }
            }
            let d = a[j * n + j];
            if !(d.is_finite() && d > 0.0) {
                return Err(ThermalError::InvalidGeometry {
                    name: "coarse_pivot",
                    value: d,
                });
            }
            let inv = 1.0 / d.sqrt();
            for i in j..n {
                a[i * n + j] *= inv;
            }
        }
        Ok(Cholesky { n, l: a })
    }

    /// Solves `L·Lᵀ·x = b`.
    // Triangular substitution reads `x` while writing it; the index form
    // is clearer than the iterator rewrite clippy suggests.
    #[allow(clippy::needless_range_loop)]
    fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        // Forward: L·y = b.
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[i * n + k] * x[k];
            }
            x[i] = s / self.l[i * n + i];
        }
        // Back: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for k in i + 1..n {
                s -= self.l[k * n + i] * x[k];
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// A reusable multigrid hierarchy for one stack geometry.
///
/// The hierarchy captures the conductance network (geometry, TSV bundles,
/// boundary resistances) at construction; the right-hand side (power maps,
/// ambient) is re-read from the stack on every [`MultigridSolver::cycle`],
/// so power edits between solves need no rebuild — geometry or TSV edits
/// do.
#[derive(Debug, Clone)]
pub struct MultigridSolver {
    opts: MgOptions,
    levels: Vec<Level>,
    transfers: Vec<Transfer>,
    work: Vec<Work>,
    coarse: Cholesky,
    threads: usize,
}

impl MultigridSolver {
    /// Builds the level hierarchy and factors the coarsest system.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGeometry`] for out-of-range options
    /// (zero tolerance/cycles, no smoothing sweeps) or a non-positive
    /// coarse pivot (impossible for a validated [`StackConfig`]
    /// [`ThermalStack`]).
    ///
    /// [`StackConfig`]: crate::stack::StackConfig
    pub fn new(stack: &ThermalStack, opts: MgOptions) -> Result<Self, ThermalError> {
        if !(opts.tolerance.is_finite() && opts.tolerance > 0.0) {
            return Err(ThermalError::InvalidGeometry {
                name: "tolerance",
                value: opts.tolerance,
            });
        }
        if opts.max_cycles == 0 {
            return Err(ThermalError::InvalidGeometry {
                name: "max_cycles",
                value: 0.0,
            });
        }
        if opts.pre_smooth + opts.post_smooth == 0 {
            return Err(ThermalError::InvalidGeometry {
                name: "smooth_sweeps",
                value: 0.0,
            });
        }
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            opts.threads
        };

        let mut levels = vec![Level::from_stack(stack)];
        let mut transfers = Vec::new();
        while {
            let l = levels.last().expect("at least the fine level");
            l.nx * l.ny > 4
        } {
            let fine = levels.last().expect("at least the fine level");
            transfers.push(Transfer {
                fx: axis_interp(fine.nx),
                fy: axis_interp(fine.ny),
            });
            let coarse = fine.coarsen();
            levels.push(coarse);
        }
        let coarsest = levels.last().expect("at least one level");
        let coarse = Cholesky::factor(coarsest.dense(), coarsest.len())?;
        let work = levels.iter().map(|l| Work::new(l.len())).collect();
        Ok(MultigridSolver {
            opts,
            levels,
            transfers,
            work,
            coarse,
            threads,
        })
    }

    /// Number of levels in the hierarchy (1 = the dense solve alone).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Runs one V-cycle in place on the stack's temperature field and
    /// returns the relative residual `‖b − A·T‖₂ / ‖b‖₂` *after* the
    /// cycle. Exposed so property tests can assert per-cycle residual
    /// monotonicity.
    pub fn cycle(&mut self, stack: &mut ThermalStack) -> f64 {
        stack.steady_state_rhs(&mut self.work[0].b);
        let temps = stack.temps_mut();
        std::mem::swap(temps, &mut self.work[0].x);
        vcycle(
            &self.levels,
            &self.transfers,
            &mut self.work,
            &self.coarse,
            &self.opts,
            self.threads,
        );
        let rel = {
            let w = &mut self.work[0];
            self.levels[0].residual(&w.x, &w.b, &mut w.r);
            norm2(&w.r) / norm2(&w.b).max(f64::MIN_POSITIVE)
        };
        std::mem::swap(temps, &mut self.work[0].x);
        rel
    }

    /// Solves the stack to steady state in place (warm-starting from the
    /// current field), cycling until the relative residual reaches
    /// `opts.tolerance`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NotConverged`] if `opts.max_cycles` V-cycles
    /// do not reach the tolerance.
    pub fn solve(&mut self, stack: &mut ThermalStack) -> Result<SolveStats, ThermalError> {
        // Warm-start check: the field may already satisfy the tolerance.
        stack.steady_state_rhs(&mut self.work[0].b);
        let initial = {
            let w = &mut self.work[0];
            self.levels[0].residual(stack.temps_mut(), &w.b, &mut w.r);
            norm2(&w.r) / norm2(&w.b).max(f64::MIN_POSITIVE)
        };
        if initial < self.opts.tolerance {
            return Ok(SolveStats {
                iterations: 0,
                residual: initial,
            });
        }
        let mut residual = initial;
        for cycle in 1..=self.opts.max_cycles {
            residual = self.cycle(stack);
            if residual < self.opts.tolerance {
                return Ok(SolveStats {
                    iterations: cycle,
                    residual,
                });
            }
        }
        Err(ThermalError::NotConverged {
            iterations: self.opts.max_cycles,
            residual,
        })
    }
}

/// Recursive V-cycle over the tail of the hierarchy slices; `levels`,
/// `work` and (one shorter) `transfers` always start at the current
/// level, so the borrow of the current [`Work`] splits cleanly from the
/// coarser ones.
fn vcycle(
    levels: &[Level],
    transfers: &[Transfer],
    work: &mut [Work],
    coarse: &Cholesky,
    opts: &MgOptions,
    threads: usize,
) {
    let (cur, rest) = work.split_first_mut().expect("non-empty hierarchy");
    let level = &levels[0];
    if rest.is_empty() {
        // Coarsest level: direct solve (b is the full right-hand side
        // here on a single-level hierarchy, the restricted residual
        // otherwise — either way the factorisation is exact).
        coarse.solve(&cur.b, &mut cur.x);
        return;
    }
    for _ in 0..opts.pre_smooth {
        level.smooth(cur, threads);
    }
    level.residual(&cur.x, &cur.b, &mut cur.r);
    let tr = &transfers[0];
    restrict(level, &levels[1], &cur.r, &mut rest[0].b);
    rest[0].x.iter_mut().for_each(|x| *x = 0.0);
    vcycle(&levels[1..], &transfers[1..], rest, coarse, opts, threads);
    prolong_add(level, &levels[1], tr, &rest[0].x, &mut cur.x);
    for _ in 0..opts.post_smooth {
        level.smooth(cur, threads);
    }
}

/// Full-weighting restriction, realised as a 2×2 in-plane block sum (odd
/// edges are width-1 blocks); tiers map one-to-one.
fn restrict(fine: &Level, coarse: &Level, r_fine: &[f64], b_coarse: &mut [f64]) {
    b_coarse.iter_mut().for_each(|b| *b = 0.0);
    let (nx, ny) = (fine.nx, fine.ny);
    let (ncx, ncy) = (coarse.nx, coarse.ny);
    debug_assert_eq!(ncx, nx.div_ceil(2));
    debug_assert_eq!(ncy, ny.div_ceil(2));
    for tier in 0..fine.tiers {
        let fbase = tier * nx * ny;
        let cbase = tier * ncx * ncy;
        for iy in 0..ny {
            let crow = cbase + (iy / 2) * ncx;
            let frow = fbase + iy * nx;
            for ix in 0..nx {
                b_coarse[crow + ix / 2] += r_fine[frow + ix];
            }
        }
    }
}

/// Adds the trilinearly interpolated coarse correction into the fine
/// field (bilinear in-plane between coarse block centres, identity across
/// the uncoarsened tier axis).
fn prolong_add(fine: &Level, coarse: &Level, tr: &Transfer, x_coarse: &[f64], x_fine: &mut [f64]) {
    let (nx, ny) = (fine.nx, fine.ny);
    let (ncx, ncy) = (coarse.nx, coarse.ny);
    for tier in 0..fine.tiers {
        let fbase = tier * nx * ny;
        let cbase = tier * ncx * ncy;
        for iy in 0..ny {
            let py = tr.fy[iy];
            let (wy0, wy1) = (1.0 - py.w, py.w);
            let c0 = cbase + py.i0 * ncx;
            let c1 = cbase + py.i1 * ncx;
            let frow = fbase + iy * nx;
            for ix in 0..nx {
                let px = tr.fx[ix];
                let (wx0, wx1) = (1.0 - px.w, px.w);
                let e = wy0 * (wx0 * x_coarse[c0 + px.i0] + wx1 * x_coarse[c0 + px.i1])
                    + wy1 * (wx0 * x_coarse[c1 + px.i0] + wx1 * x_coarse[c1 + px.i1]);
                x_fine[frow + ix] += e;
            }
        }
    }
}

/// Solves the stack to steady state in place with a freshly built
/// multigrid hierarchy — the convenience counterpart of
/// [`crate::solve::solve_steady_state`] (the lexicographic oracle) and
/// [`crate::cg::solve_steady_state_cg`]. Re-solving the same geometry
/// repeatedly is cheaper through a retained [`MultigridSolver`].
///
/// # Errors
///
/// Returns [`ThermalError::InvalidGeometry`] for invalid options and
/// [`ThermalError::NotConverged`] if `opts.max_cycles` V-cycles do not
/// reach `opts.tolerance`.
pub fn solve_steady_state_mg(
    stack: &mut ThermalStack,
    opts: &MgOptions,
) -> Result<SolveStats, ThermalError> {
    MultigridSolver::new(stack, *opts)?.solve(stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMap;
    use crate::solve::{solve_steady_state, SolveOptions};
    use crate::stack::{StackConfig, ThermalStack};
    use ptsim_device::units::Watt;

    fn loaded(nx: usize, ny: usize, tiers: usize) -> ThermalStack {
        let cfg = StackConfig {
            nx,
            ny,
            tiers,
            ..StackConfig::four_tier_5mm()
        };
        let mut s = ThermalStack::new(cfg).unwrap();
        let mut p = PowerMap::zero(nx, ny).unwrap();
        p.add_hotspot(0.3, 0.6, 0.12, Watt(1.5));
        s.set_power(0, p).unwrap();
        s
    }

    #[test]
    fn axis_interp_uniform_interior_weights() {
        let w = axis_interp(8);
        // Fine 4 sits at 4.5 between centres 3 (I=1) and 5 (I=2).
        assert_eq!((w[4].i0, w[4].i1), (1, 2));
        assert!((w[4].w - 0.75).abs() < 1e-12);
        assert_eq!((w[5].i0, w[5].i1), (2, 3));
        assert!((w[5].w - 0.25).abs() < 1e-12);
        // Edges clamp.
        assert_eq!((w[0].i0, w[0].i1), (0, 0));
        assert_eq!((w[7].i0, w[7].i1), (3, 3));
    }

    #[test]
    fn axis_interp_handles_odd_and_tiny_axes() {
        for n in [1usize, 2, 3, 5, 7, 9, 11] {
            let nc = n.div_ceil(2);
            for (ix, p) in axis_interp(n).iter().enumerate() {
                assert!(p.i0 < nc && p.i1 < nc, "n={n} ix={ix}");
                assert!((0.0..=1.0).contains(&p.w), "n={n} ix={ix} w={}", p.w);
            }
        }
    }

    #[test]
    fn hierarchy_depth_matches_grid() {
        let s = loaded(32, 32, 4);
        let mg = MultigridSolver::new(&s, MgOptions::default()).unwrap();
        // 32 → 16 → 8 → 4 → 2 : five levels.
        assert_eq!(mg.depth(), 5);
        let s = loaded(2, 2, 4);
        let mg = MultigridSolver::new(&s, MgOptions::default()).unwrap();
        assert_eq!(mg.depth(), 1);
    }

    #[test]
    fn coarse_levels_conserve_total_conductance_to_ground() {
        let s = loaded(13, 9, 3);
        let mg = MultigridSolver::new(&s, MgOptions::default()).unwrap();
        let fine_ground: f64 = mg.levels[0].g_ground.iter().sum();
        for l in &mg.levels[1..] {
            let g: f64 = l.g_ground.iter().sum();
            assert!((g - fine_ground).abs() < 1e-12 * fine_ground.max(1.0));
        }
    }

    #[test]
    fn matches_gauss_seidel_oracle_on_default_stack() {
        let mut gs = loaded(16, 16, 4);
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut mg = loaded(16, 16, 4);
        let stats = solve_steady_state_mg(&mut mg, &MgOptions::default()).unwrap();
        assert!(stats.residual < 1e-10);
        for tier in 0..4 {
            for iy in 0..16 {
                for ix in 0..16 {
                    let a = gs.temperature(tier, ix, iy).unwrap().0;
                    let b = mg.temperature(tier, ix, iy).unwrap().0;
                    assert!(
                        (a - b).abs() < 1e-3,
                        "tier {tier} cell ({ix},{iy}): GS {a:.6} vs MG {b:.6}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_returns_immediately() {
        let mut s = loaded(16, 16, 2);
        let opts = MgOptions::default();
        let cold = solve_steady_state_mg(&mut s, &opts).unwrap();
        assert!(cold.iterations >= 1);
        let warm = solve_steady_state_mg(&mut s, &opts).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn rejects_bad_options() {
        let s = loaded(8, 8, 1);
        for opts in [
            MgOptions {
                tolerance: 0.0,
                ..MgOptions::default()
            },
            MgOptions {
                max_cycles: 0,
                ..MgOptions::default()
            },
            MgOptions {
                pre_smooth: 0,
                post_smooth: 0,
                ..MgOptions::default()
            },
        ] {
            assert!(matches!(
                MultigridSolver::new(&s, opts),
                Err(ThermalError::InvalidGeometry { .. })
            ));
        }
    }

    #[test]
    fn not_converged_is_reported() {
        let mut s = loaded(32, 32, 4);
        let opts = MgOptions {
            max_cycles: 1,
            pre_smooth: 1,
            post_smooth: 0,
            ..MgOptions::default()
        };
        assert!(matches!(
            solve_steady_state_mg(&mut s, &opts),
            Err(ThermalError::NotConverged { .. })
        ));
    }

    #[test]
    fn cholesky_solves_small_spd_system() {
        // 2×2 SPD: [[4, 1], [1, 3]] · x = [1, 2] → x = [1/11, 7/11].
        let chol = Cholesky::factor(vec![4.0, 1.0, 1.0, 3.0], 2).unwrap();
        let mut x = [0.0; 2];
        chol.solve(&[1.0, 2.0], &mut x);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }
}
