//! Steady-state and transient solvers for [`ThermalStack`].
//!
//! [`solve_steady_state`] is the lexicographic Gauss–Seidel/SOR solver —
//! deliberately kept sweep-order-exact: it is the bit-identity oracle the
//! golden gates pin, and the reference the [`crate::cg`] and
//! [`crate::multigrid`] production solvers are graded against on
//! residual-norm convergence (see DESIGN.md, "Thermal solver hierarchy").

use crate::error::ThermalError;
use crate::stack::{Stencil, ThermalStack};
use ptsim_device::units::Seconds;

/// Options for the steady-state Gauss–Seidel/SOR solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance on the per-sweep max temperature change, °C.
    pub tolerance: f64,
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Successive-over-relaxation factor in `(0, 2)`.
    pub omega: f64,
    /// Evaluate the convergence residual only every this many sweeps
    /// (must be ≥ 1). The default of 1 checks after every sweep and is
    /// bit-identical to the historical solver; larger values skip the
    /// per-cell `|Δt|` tracking on the intermediate sweeps, trading up to
    /// `interval − 1` extra sweeps for a cheaper inner loop.
    pub residual_check_interval: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-6,
            max_iterations: 50_000,
            omega: 1.7,
            residual_check_interval: 1,
        }
    }
}

/// Convergence report of a steady-state solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Sweeps executed.
    pub iterations: usize,
    /// Final max per-sweep temperature change, °C.
    pub residual: f64,
}

/// Solves the stack to steady state in place.
///
/// The RC network is flattened once into a coefficient-precomputed
/// stencil (see `ThermalStack::stencil`); the Gauss–Seidel/SOR sweeps
/// then iterate the flat cell array in the historical tier → row → column
/// order with bit-identical floating-point operations, so results match
/// the pre-stencil solver exactly when `residual_check_interval` is 1.
///
/// # Errors
///
/// Returns [`ThermalError::NotConverged`] if the residual does not fall
/// below `opts.tolerance` within `opts.max_iterations` sweeps, and
/// [`ThermalError::InvalidGeometry`] for an out-of-range `omega` or a
/// zero `residual_check_interval`.
pub fn solve_steady_state(
    stack: &mut ThermalStack,
    opts: &SolveOptions,
) -> Result<SolveStats, ThermalError> {
    if !(opts.omega > 0.0 && opts.omega < 2.0) {
        return Err(ThermalError::InvalidGeometry {
            name: "omega",
            value: opts.omega,
        });
    }
    if opts.residual_check_interval == 0 {
        return Err(ThermalError::InvalidGeometry {
            name: "residual_check_interval",
            value: 0.0,
        });
    }
    let st = stack.stencil();
    let temps = stack.temps_mut();
    let mut residual = f64::INFINITY;
    for sweep in 1..=opts.max_iterations {
        let check = sweep % opts.residual_check_interval == 0 || sweep == opts.max_iterations;
        if check {
            residual = st.sor_sweep::<true>(temps, opts.omega);
            if residual < opts.tolerance {
                return Ok(SolveStats {
                    iterations: sweep,
                    residual,
                });
            }
        } else {
            st.sor_sweep::<false>(temps, opts.omega);
        }
    }
    Err(ThermalError::NotConverged {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Reusable workspace for [`step_transient_with`]: the flattened stencil
/// and the derivative buffer, both refreshed in place each step.
///
/// A 2 ms control-loop tick on a 16×16×4 stack used to allocate a fresh
/// stencil and `derivs` vector per call; keeping one scratch per loop makes
/// the warm transient step allocation-free (gated by the counting-allocator
/// test in `ptsim-core`).
#[derive(Debug, Clone, Default)]
pub struct TransientScratch {
    stencil: Option<Stencil>,
    derivs: Vec<f64>,
}

impl TransientScratch {
    /// An empty scratch; buffers grow to fit on first use.
    #[must_use]
    pub fn new() -> Self {
        TransientScratch::default()
    }
}

/// Advances the stack by `dt` of wall-clock time using explicit Euler
/// integration, automatically substepping to respect the stability limit
/// `dt_cell < C / Σg`.
///
/// Returns the number of substeps taken.
///
/// Allocates stencil and derivative buffers on every call; hot loops
/// should hold a [`TransientScratch`] and call [`step_transient_with`],
/// which is bit-identical and allocation-free once warm.
pub fn step_transient(stack: &mut ThermalStack, dt: Seconds) -> usize {
    step_transient_with(stack, dt, &mut TransientScratch::new())
}

/// [`step_transient`] with caller-provided scratch buffers. The stencil is
/// refreshed in place each call (power maps may have changed between
/// steps), so results are bit-identical to [`step_transient`] while a warm
/// scratch performs no heap allocation.
pub fn step_transient_with(
    stack: &mut ThermalStack,
    dt: Seconds,
    scratch: &mut TransientScratch,
) -> usize {
    let st = scratch.stencil.get_or_insert_with(Stencil::empty);
    stack.stencil_into(st);
    // Stability: the stiffest cell bounds the step. The stencil's
    // precomputed per-cell Σg is scanned in the same flat order the
    // historical tier/row/column loops used.
    let g_max = st.g_max();
    let cap = stack.cell_capacity();
    let dt_stable = 0.5 * cap / g_max.max(f64::MIN_POSITIVE);
    let substeps = (dt.0 / dt_stable).ceil().max(1.0) as usize;
    let h = dt.0 / substeps as f64;

    let temps = stack.temps_mut();
    scratch.derivs.clear();
    scratch.derivs.resize(st.len(), 0.0);
    let derivs = &mut scratch.derivs;
    for _ in 0..substeps {
        st.derivs_into(temps, cap, derivs);
        for (t, d) in temps.iter_mut().zip(derivs.iter()) {
            *t += h * d;
        }
    }
    substeps
}

/// Runs the transient solver for `duration`, sampling the mean temperature
/// of `probe_tier` every `sample_interval`. Returns `(time, °C)` pairs:
/// the initial state at `t = 0`, one sample at every multiple of
/// `sample_interval`, and a final sample pinned to exactly `duration` (a
/// shorter last step when the interval does not divide the duration).
///
/// Sample timestamps are computed as `i · sample_interval` rather than by
/// accumulation, so long runs carry no float drift and an
/// exactly-dividing interval never emits a spurious near-zero sliver step
/// or duplicated final sample.
///
/// # Errors
///
/// Returns [`ThermalError::TierOutOfRange`] for a bad probe tier.
pub fn run_transient(
    stack: &mut ThermalStack,
    duration: Seconds,
    sample_interval: Seconds,
    probe_tier: usize,
) -> Result<Vec<(Seconds, f64)>, ThermalError> {
    let mut out = Vec::new();
    out.push((Seconds(0.0), stack.mean_temperature(probe_tier)?.0));
    let positive = |v: f64| v.is_finite() && v > 0.0;
    if !positive(duration.0) || !positive(sample_interval.0) {
        return Ok(out);
    }
    // Number of steps: ceil(duration / interval), with a relative guard so
    // float division error on an exact multiple can't add a sliver step.
    let ratio = duration.0 / sample_interval.0;
    let steps = (ratio * (1.0 - 1e-12)).ceil().max(1.0) as usize;
    let mut scratch = TransientScratch::new();
    let mut t_prev = 0.0;
    for i in 1..=steps {
        let t = if i == steps {
            duration.0
        } else {
            i as f64 * sample_interval.0
        };
        step_transient_with(stack, Seconds(t - t_prev), &mut scratch);
        t_prev = t;
        out.push((Seconds(t), stack.mean_temperature(probe_tier)?.0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMap;
    use crate::stack::{StackConfig, ThermalStack};
    use ptsim_device::units::{Celsius, Watt};

    fn solved_uniform(tiers: usize, watts: f64) -> ThermalStack {
        let cfg = if tiers == 1 {
            StackConfig::single_die_5mm()
        } else {
            StackConfig {
                tiers,
                ..StackConfig::four_tier_5mm()
            }
        };
        let mut s = ThermalStack::new(cfg).unwrap();
        let (nx, ny) = (s.config().nx, s.config().ny);
        for tier in 0..tiers {
            s.set_power(
                tier,
                PowerMap::uniform(nx, ny, Watt(watts / tiers as f64)).unwrap(),
            )
            .unwrap();
        }
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        s
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        let stats = solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        assert!(stats.iterations < 100);
        for tier in 0..4 {
            assert!((s.mean_temperature(tier).unwrap().0 - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn single_die_rise_matches_lumped_analysis() {
        // With uniform power the lateral network carries no net heat; the
        // die sits at ambient + P / (G_sink_total + G_board_total), where
        // the sink path includes the TIM slab in series.
        let s = solved_uniform(1, 1.0);
        let cfg = s.config();
        let n = (cfg.nx * cfg.ny) as f64;
        let area = (cfg.die_width.0 * 1e-6) * (cfg.die_height.0 * 1e-6);
        let g_tim =
            crate::material::Material::TIM.slab_conductance(area / n, cfg.tim_thickness.0 * 1e-6);
        let g_sink_cell = 1.0 / (1.0 / g_tim + cfg.sink_resistance * n);
        let g_total = n * g_sink_cell + 1.0 / cfg.board_resistance;
        let expected = 25.0 + 1.0 / g_total;
        let got = s.mean_temperature(0).unwrap().0;
        assert!(
            (got - expected).abs() < 0.05,
            "expected {expected:.3} °C, got {got:.3} °C"
        );
    }

    #[test]
    fn more_power_is_hotter() {
        let lo = solved_uniform(4, 1.0).max_temperature(0).unwrap().0;
        let hi = solved_uniform(4, 2.0).max_temperature(0).unwrap().0;
        assert!(hi > lo + 0.5);
    }

    #[test]
    fn hotspot_creates_lateral_gradient() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(0.5, 0.5, 0.08, Watt(2.0));
        s.set_power(0, p).unwrap();
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        let center = s.temperature_at(0, 0.5, 0.5).unwrap().0;
        let corner = s.temperature_at(0, 0.0, 0.0).unwrap().0;
        assert!(
            center > corner + 1.0,
            "center {center:.2} vs corner {corner:.2}"
        );
    }

    #[test]
    fn bottom_tier_hotter_than_top_with_heatsink_on_top() {
        // Heat generated at the bottom tier must cross every bond layer to
        // reach the sink, so tier 0 runs hotter than tier 3.
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(2.0)).unwrap())
            .unwrap();
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        let bottom = s.mean_temperature(0).unwrap().0;
        let top = s.mean_temperature(3).unwrap().0;
        assert!(bottom > top + 0.5, "bottom {bottom:.2} vs top {top:.2}");
    }

    #[test]
    fn tsv_bundle_cools_the_hot_tier() {
        let build = |with_tsv: bool| {
            let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
            s.set_power(0, PowerMap::uniform(16, 16, Watt(2.0)).unwrap())
                .unwrap();
            if with_tsv {
                for iface in 0..3 {
                    for iy in 0..16 {
                        for ix in 0..16 {
                            s.add_vertical_conductance(
                                iface,
                                ix,
                                iy,
                                ptsim_device::units::WattPerKelvin(2e-4),
                            )
                            .unwrap();
                        }
                    }
                }
            }
            solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
            s.mean_temperature(0).unwrap().0
        };
        let without = build(false);
        let with = build(true);
        assert!(
            with < without,
            "TSVs should cool: {with:.2} vs {without:.2}"
        );
    }

    #[test]
    fn transient_approaches_steady_state() {
        let mut reference = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        reference
            .set_power(0, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .unwrap();
        let mut transient = reference.clone();
        solve_steady_state(&mut reference, &SolveOptions::default()).unwrap();
        let target = reference.mean_temperature(0).unwrap().0;

        let trace = run_transient(&mut transient, Seconds(5.0), Seconds(0.5), 0).unwrap();
        let final_t = trace.last().unwrap().1;
        assert!(
            (final_t - target).abs() < 0.5,
            "transient {final_t:.2} vs steady {target:.2}"
        );
        // Monotonic heat-up from ambient.
        for w in trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn rejects_bad_omega() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let opts = SolveOptions {
            omega: 2.5,
            ..SolveOptions::default()
        };
        assert!(matches!(
            solve_steady_state(&mut s, &opts),
            Err(ThermalError::InvalidGeometry { .. })
        ));
    }

    #[test]
    fn not_converged_is_reported() {
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .unwrap();
        let opts = SolveOptions {
            max_iterations: 2,
            ..SolveOptions::default()
        };
        assert!(matches!(
            solve_steady_state(&mut s, &opts),
            Err(ThermalError::NotConverged { .. })
        ));
    }

    #[test]
    fn energy_balance_at_steady_state() {
        // Heat out through both boundaries equals heat in.
        let s = solved_uniform(4, 1.5);
        let cfg = s.config().clone();
        let n = cfg.nx * cfg.ny;
        let area = (cfg.die_width.0 * 1e-6) * (cfg.die_height.0 * 1e-6);
        let g_tim = crate::material::Material::TIM
            .slab_conductance(area / n as f64, cfg.tim_thickness.0 * 1e-6);
        let g_sink_cell = 1.0 / (1.0 / g_tim + cfg.sink_resistance * n as f64);
        let g_board_cell = 1.0 / (cfg.board_resistance * n as f64);
        let mut q_out = 0.0;
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let t_top = s.temperature(cfg.tiers - 1, ix, iy).unwrap().0;
                let t_bot = s.temperature(0, ix, iy).unwrap().0;
                q_out += g_sink_cell * (t_top - 25.0) + g_board_cell * (t_bot - 25.0);
            }
        }
        assert!(
            (q_out - 1.5).abs() < 0.01,
            "energy balance violated: {q_out:.4} W out vs 1.5 W in"
        );
    }

    #[test]
    fn solve_stats_reasonable() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(0.5)).unwrap())
            .unwrap();
        let stats = solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        assert!(stats.iterations > 1);
        assert!(stats.residual < 1e-6);
    }

    #[test]
    fn step_transient_substeps_scale_with_dt() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let small = step_transient(&mut s, Seconds(1e-6));
        let big = step_transient(&mut s, Seconds(1e-3));
        assert!(big >= small);
    }

    #[test]
    fn run_transient_exact_multiple_has_no_sliver_step() {
        // 5.0 / 0.5: exactly 10 steps — 11 samples, final pinned at 5.0,
        // strictly increasing timestamps, no duplicated final sample.
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .unwrap();
        let trace = run_transient(&mut s, Seconds(5.0), Seconds(0.5), 0).unwrap();
        assert_eq!(trace.len(), 11);
        assert_eq!(trace.last().unwrap().0 .0, 5.0);
        for (i, (t, _)) in trace.iter().enumerate() {
            assert_eq!(t.0, i as f64 * 0.5, "sample {i} timestamp drifted");
        }
    }

    #[test]
    fn run_transient_non_dividing_interval_pins_final_timestamp() {
        // 1.0 / 0.3 → samples at 0, 0.3, 0.6, 0.9 and a short final step
        // to exactly 1.0: five samples total.
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        s.set_power(0, PowerMap::uniform(16, 16, Watt(1.0)).unwrap())
            .unwrap();
        let trace = run_transient(&mut s, Seconds(1.0), Seconds(0.3), 0).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[1].0 .0, 0.3);
        assert_eq!(trace[2].0 .0, 2.0 * 0.3);
        assert_eq!(trace[3].0 .0, 3.0 * 0.3);
        assert_eq!(trace.last().unwrap().0 .0, 1.0);
        for w in trace.windows(2) {
            assert!(w[1].0 .0 > w[0].0 .0, "timestamps must strictly increase");
        }
    }

    #[test]
    fn run_transient_drift_regression_many_steps() {
        // 2000 accumulations of 1e-3 drift visibly off 2.0 in the old
        // `t += step` scheme; index-based stepping stays exact.
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let trace = run_transient(&mut s, Seconds(2.0), Seconds(1e-3), 0).unwrap();
        assert_eq!(trace.len(), 2001);
        assert_eq!(trace.last().unwrap().0 .0, 2.0);
        assert_eq!(trace[1000].0 .0, 1000.0 * 1e-3);
    }

    #[test]
    fn run_transient_degenerate_durations_yield_initial_sample_only() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        for d in [0.0, -1.0, f64::NAN] {
            let trace = run_transient(&mut s, Seconds(d), Seconds(0.5), 0).unwrap();
            assert_eq!(trace.len(), 1);
            assert_eq!(trace[0].0 .0, 0.0);
        }
    }

    #[test]
    fn scratch_step_is_bit_identical_and_tracks_power_changes() {
        let mut fresh = irregular_stack(0.4, 0.6, 1.2, 2e-4);
        let mut warm = fresh.clone();
        let mut scratch = TransientScratch::new();
        for step in 0..4 {
            // Mutate power between steps: the scratch must pick up the new
            // map exactly like a freshly built stencil does.
            let mut p = PowerMap::uniform(8, 8, Watt(0.3 + 0.1 * step as f64)).unwrap();
            p.add_hotspot(0.3, 0.7, 0.1, Watt(0.5));
            fresh.set_power(2, p.clone()).unwrap();
            warm.set_power(2, p).unwrap();
            let a = step_transient(&mut fresh, Seconds(5e-4));
            let b = step_transient_with(&mut warm, Seconds(5e-4), &mut scratch);
            assert_eq!(a, b);
        }
        assert_temps_bit_identical(&fresh, &warm);
    }

    /// The pre-stencil Gauss–Seidel/SOR loop, kept verbatim as the
    /// bit-identity oracle for the flattened solver.
    fn reference_steady_state(
        stack: &mut ThermalStack,
        opts: &SolveOptions,
    ) -> Result<SolveStats, ThermalError> {
        let (tiers, nx, ny) = stack.grid();
        let mut residual = f64::INFINITY;
        for sweep in 1..=opts.max_iterations {
            residual = 0.0;
            for tier in 0..tiers {
                for iy in 0..ny {
                    for ix in 0..nx {
                        let (g_sum, gt_sum) = stack.neighbours_sum(tier, ix, iy);
                        let p = stack.cell_power(tier, ix, iy);
                        let idx = stack.flat_index(tier, ix, iy);
                        let old = stack.temps_mut()[idx];
                        let gauss = (gt_sum + p) / g_sum;
                        let new = old + opts.omega * (gauss - old);
                        residual = residual.max((new - old).abs());
                        stack.temps_mut()[idx] = new;
                    }
                }
            }
            if residual < opts.tolerance {
                return Ok(SolveStats {
                    iterations: sweep,
                    residual,
                });
            }
        }
        Err(ThermalError::NotConverged {
            iterations: opts.max_iterations,
            residual,
        })
    }

    /// The pre-stencil transient step, kept verbatim as the bit-identity
    /// oracle for the flattened integrator.
    fn reference_step_transient(stack: &mut ThermalStack, dt: Seconds) -> usize {
        let (tiers, nx, ny) = stack.grid();
        let mut g_max: f64 = 0.0;
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let (g_sum, _) = stack.neighbours_sum(tier, ix, iy);
                    g_max = g_max.max(g_sum);
                }
            }
        }
        let cap = stack.cell_capacity();
        let dt_stable = 0.5 * cap / g_max.max(f64::MIN_POSITIVE);
        let substeps = (dt.0 / dt_stable).ceil().max(1.0) as usize;
        let h = dt.0 / substeps as f64;

        let n = tiers * nx * ny;
        let mut derivs = vec![0.0; n];
        for _ in 0..substeps {
            for tier in 0..tiers {
                for iy in 0..ny {
                    for ix in 0..nx {
                        let (g_sum, gt_sum) = stack.neighbours_sum(tier, ix, iy);
                        let idx = stack.flat_index(tier, ix, iy);
                        let t = stack.temps_mut()[idx];
                        let p = stack.cell_power(tier, ix, iy);
                        derivs[idx] = (gt_sum - g_sum * t + p) / cap;
                    }
                }
            }
            let temps = stack.temps_mut();
            for (t, d) in temps.iter_mut().zip(&derivs) {
                *t += h * d;
            }
        }
        substeps
    }

    /// A 3-tier 8×8 stack with a hotspot, a uniform floor, and a diagonal
    /// TSV bundle — exercises every stencil row shape (interior, edge,
    /// corner, boundary tiers, non-uniform vertical conductance).
    fn irregular_stack(cx: f64, cy: f64, w: f64, g_tsv: f64) -> ThermalStack {
        let cfg = StackConfig {
            nx: 8,
            ny: 8,
            tiers: 3,
            ..StackConfig::four_tier_5mm()
        };
        let mut s = ThermalStack::new(cfg).unwrap();
        let mut p = PowerMap::uniform(8, 8, Watt(0.2)).unwrap();
        p.add_hotspot(cx, cy, 0.15, Watt(w));
        s.set_power(1, p).unwrap();
        s.set_power(0, PowerMap::uniform(8, 8, Watt(0.5)).unwrap())
            .unwrap();
        for iface in 0..2 {
            for d in 0..8 {
                s.add_vertical_conductance(iface, d, d, ptsim_device::units::WattPerKelvin(g_tsv))
                    .unwrap();
            }
        }
        s
    }

    fn assert_temps_bit_identical(a: &ThermalStack, b: &ThermalStack) {
        let (tiers, nx, ny) = a.grid();
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let ta = a.temperature(tier, ix, iy).unwrap().0;
                    let tb = b.temperature(tier, ix, iy).unwrap().0;
                    assert_eq!(
                        ta.to_bits(),
                        tb.to_bits(),
                        "cell ({tier},{ix},{iy}): {ta} vs {tb}"
                    );
                }
            }
        }
    }

    ptsim_rng::forall! {
        #![cases = 12]

        #[test]
        fn stencil_steady_state_is_bit_identical_to_reference(
            cx in 0.1f64..0.9, cy in 0.1f64..0.9, w in 0.1f64..2.0,
            g_tsv in 0.0f64..5e-4,
        ) {
            let mut fast = irregular_stack(cx, cy, w, g_tsv);
            let mut slow = fast.clone();
            let opts = SolveOptions::default();
            let a = solve_steady_state(&mut fast, &opts).unwrap();
            let b = reference_steady_state(&mut slow, &opts).unwrap();
            assert_eq!(a, b);
            assert_temps_bit_identical(&fast, &slow);
        }

        #[test]
        fn stencil_transient_is_bit_identical_to_reference(
            cx in 0.1f64..0.9, cy in 0.1f64..0.9, w in 0.1f64..2.0,
            g_tsv in 0.0f64..5e-4, dt in 1e-5f64..1e-2,
        ) {
            let mut fast = irregular_stack(cx, cy, w, g_tsv);
            let mut slow = fast.clone();
            for _ in 0..3 {
                let a = step_transient(&mut fast, Seconds(dt));
                let b = reference_step_transient(&mut slow, Seconds(dt));
                assert_eq!(a, b);
            }
            assert_temps_bit_identical(&fast, &slow);
        }
    }

    #[test]
    fn stencil_solver_hits_not_converged_like_reference() {
        let opts = SolveOptions {
            max_iterations: 3,
            ..SolveOptions::default()
        };
        let mut fast = irregular_stack(0.5, 0.5, 1.0, 1e-4);
        let mut slow = fast.clone();
        let a = solve_steady_state(&mut fast, &opts);
        let b = reference_steady_state(&mut slow, &opts);
        match (a, b) {
            (
                Err(ThermalError::NotConverged {
                    iterations: ia,
                    residual: ra,
                }),
                Err(ThermalError::NotConverged {
                    iterations: ib,
                    residual: rb,
                }),
            ) => {
                assert_eq!(ia, ib);
                assert_eq!(ra.to_bits(), rb.to_bits());
            }
            other => panic!("expected NotConverged from both, got {other:?}"),
        }
        assert_temps_bit_identical(&fast, &slow);
    }

    #[test]
    fn relaxed_residual_interval_reaches_the_same_answer() {
        let mut exact = irregular_stack(0.4, 0.6, 1.0, 2e-4);
        let mut relaxed = exact.clone();
        let tight = solve_steady_state(&mut exact, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            residual_check_interval: 8,
            ..SolveOptions::default()
        };
        let loose = solve_steady_state(&mut relaxed, &opts).unwrap();
        // Convergence is only tested on multiples of the interval, so the
        // relaxed run does at most interval − 1 extra sweeps…
        assert!(loose.iterations >= tight.iterations);
        assert!(loose.iterations <= tight.iterations + 7);
        assert!(loose.residual < opts.tolerance);
        // …which can only tighten the answer.
        let (tiers, nx, ny) = exact.grid();
        for tier in 0..tiers {
            for iy in 0..ny {
                for ix in 0..nx {
                    let a = exact.temperature(tier, ix, iy).unwrap().0;
                    let b = relaxed.temperature(tier, ix, iy).unwrap().0;
                    assert!((a - b).abs() < 1e-4, "cell ({tier},{ix},{iy}): {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn zero_residual_check_interval_is_rejected() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        let opts = SolveOptions {
            residual_check_interval: 0,
            ..SolveOptions::default()
        };
        assert!(matches!(
            solve_steady_state(&mut s, &opts),
            Err(ThermalError::InvalidGeometry {
                name: "residual_check_interval",
                ..
            })
        ));
    }

    #[test]
    fn ambient_shift_propagates() {
        let mut cfg = StackConfig::single_die_5mm();
        cfg.ambient = Celsius(85.0);
        let mut s = ThermalStack::new(cfg).unwrap();
        let stats = solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        assert!(stats.residual < 1e-6);
        assert!((s.mean_temperature(0).unwrap().0 - 85.0).abs() < 1e-6);
    }
}
