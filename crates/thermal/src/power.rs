//! Per-tier power maps.

use crate::error::ThermalError;
use ptsim_device::units::Watt;

/// A power-density map over the cells of one tier.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    nx: usize,
    ny: usize,
    cells: Vec<f64>,
}

impl PowerMap {
    /// All-zero map of the given resolution.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGrid`] if either dimension is zero.
    pub fn zero(nx: usize, ny: usize) -> Result<Self, ThermalError> {
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidGrid { nx, ny });
        }
        Ok(PowerMap {
            nx,
            ny,
            cells: vec![0.0; nx * ny],
        })
    }

    /// Uniform map dissipating `total` watts across the tier.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGrid`] if either dimension is zero, or
    /// [`ThermalError::InvalidPower`] if `total` is negative or non-finite.
    pub fn uniform(nx: usize, ny: usize, total: Watt) -> Result<Self, ThermalError> {
        if !(total.0.is_finite() && total.0 >= 0.0) {
            return Err(ThermalError::InvalidPower { watts: total.0 });
        }
        let mut map = PowerMap::zero(nx, ny)?;
        let per_cell = total.0 / (nx * ny) as f64;
        map.cells.iter_mut().for_each(|c| *c = per_cell);
        Ok(map)
    }

    /// Grid resolution `(nx, ny)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Power of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn cell(&self, ix: usize, iy: usize) -> Watt {
        assert!(ix < self.nx && iy < self.ny, "power-map index out of range");
        Watt(self.cells[iy * self.nx + ix])
    }

    /// Sets the power of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_cell(&mut self, ix: usize, iy: usize, p: Watt) {
        assert!(ix < self.nx && iy < self.ny, "power-map index out of range");
        self.cells[iy * self.nx + ix] = p.0.max(0.0);
    }

    /// Flat index of the cell whose centre is nearest to the normalized
    /// point `(px, py)` after clamping it onto the die. Non-finite
    /// coordinates clamp to the die centre so the deposit stays on-map.
    fn nearest_cell_index(&self, px: f64, py: f64) -> usize {
        let snap = |p: f64, n: usize| -> usize {
            let p = if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.5
            };
            // Cell centres sit at (i + 0.5) / n; invert and round.
            let i = (p * n as f64 - 0.5).round().max(0.0) as usize;
            i.min(n - 1)
        };
        snap(py, self.ny) * self.nx + snap(px, self.nx)
    }

    /// Adds a Gaussian hotspot centred at normalized coordinates
    /// `(cx, cy)` with the given normalized radius (standard deviation),
    /// carrying `total` additional watts.
    ///
    /// Injected power is always conserved: if the centre is so far off-die
    /// (or the radius so small) that every cell weight underflows to zero,
    /// the full wattage lands in the cell nearest the clamped centre
    /// instead of being silently dropped.
    pub fn add_hotspot(&mut self, cx: f64, cy: f64, radius: f64, total: Watt) {
        let r = radius.max(1e-6);
        let mut weights = vec![0.0; self.cells.len()];
        let mut sum = 0.0;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let x = (ix as f64 + 0.5) / self.nx as f64;
                let y = (iy as f64 + 0.5) / self.ny as f64;
                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                let w = (-d2 / (2.0 * r * r)).exp();
                weights[iy * self.nx + ix] = w;
                sum += w;
            }
        }
        if sum > 0.0 {
            for (c, w) in self.cells.iter_mut().zip(&weights) {
                *c += total.0 * w / sum;
            }
        } else {
            let i = self.nearest_cell_index(cx, cy);
            self.cells[i] += total.0;
        }
    }

    /// Adds a rectangular power block covering normalized `[x0,x1]×[y0,y1]`,
    /// carrying `total` additional watts spread uniformly over the block.
    ///
    /// Injected power is always conserved: a footprint thin enough to slip
    /// between cell centres (or lying off-die entirely) deposits the full
    /// wattage in the cell nearest the clamped block centre instead of
    /// being silently dropped.
    pub fn add_block(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, total: Watt) {
        let mut indices = Vec::new();
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let x = (ix as f64 + 0.5) / self.nx as f64;
                let y = (iy as f64 + 0.5) / self.ny as f64;
                if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                    indices.push(iy * self.nx + ix);
                }
            }
        }
        if !indices.is_empty() {
            let per = total.0 / indices.len() as f64;
            for i in indices {
                self.cells[i] += per;
            }
        } else {
            let cx = 0.5 * (x0 + x1);
            let cy = 0.5 * (y0 + y1);
            let i = self.nearest_cell_index(cx, cy);
            self.cells[i] += total.0;
        }
    }

    /// Total power of the map.
    #[must_use]
    pub fn total(&self) -> Watt {
        Watt(self.cells.iter().sum())
    }

    /// Peak cell power.
    #[must_use]
    pub fn peak(&self) -> Watt {
        Watt(self.cells.iter().copied().fold(0.0, f64::max))
    }

    /// Raw cells in row-major order (for the solver).
    #[must_use]
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_map_sums_to_zero() {
        let m = PowerMap::zero(8, 8).unwrap();
        assert_eq!(m.total().0, 0.0);
        assert_eq!(m.resolution(), (8, 8));
    }

    #[test]
    fn rejects_degenerate_grids_and_negative_power() {
        assert!(PowerMap::zero(0, 4).is_err());
        assert!(PowerMap::uniform(4, 4, Watt(-1.0)).is_err());
        assert!(PowerMap::uniform(4, 4, Watt(f64::NAN)).is_err());
    }

    #[test]
    fn uniform_conserves_total() {
        let m = PowerMap::uniform(10, 10, Watt(2.0)).unwrap();
        assert!((m.total().0 - 2.0).abs() < 1e-12);
        assert!((m.cell(3, 7).0 - 0.02).abs() < 1e-12);
    }

    #[test]
    fn hotspot_conserves_total_and_peaks_at_center() {
        let mut m = PowerMap::zero(16, 16).unwrap();
        m.add_hotspot(0.5, 0.5, 0.1, Watt(1.0));
        assert!((m.total().0 - 1.0).abs() < 1e-9);
        let center = m.cell(8, 8).0;
        let corner = m.cell(0, 0).0;
        assert!(center > 100.0 * corner.max(1e-18));
    }

    #[test]
    fn block_covers_expected_cells() {
        let mut m = PowerMap::zero(10, 10).unwrap();
        m.add_block(0.0, 0.0, 0.499, 0.499, Watt(1.0));
        assert!((m.total().0 - 1.0).abs() < 1e-12);
        assert!(m.cell(0, 0).0 > 0.0);
        assert_eq!(m.cell(9, 9).0, 0.0);
    }

    #[test]
    fn set_cell_clamps_negative() {
        let mut m = PowerMap::zero(2, 2).unwrap();
        m.set_cell(0, 0, Watt(-5.0));
        assert_eq!(m.cell(0, 0).0, 0.0);
        m.set_cell(1, 1, Watt(0.25));
        assert_eq!(m.peak().0, 0.25);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_bounds_checked() {
        let m = PowerMap::zero(2, 2).unwrap();
        let _ = m.cell(2, 0);
    }

    #[test]
    fn thin_block_between_cell_centers_conserves_power() {
        // On an 8×8 grid the cell centres sit at odd multiples of 1/16; a
        // block spanning [0.26, 0.30] contains none of them and used to
        // drop the full wattage on the floor.
        let mut m = PowerMap::zero(8, 8).unwrap();
        m.add_block(0.26, 0.26, 0.30, 0.30, Watt(1.5));
        assert!((m.total().0 - 1.5).abs() < 1e-12);
        // Snapped to the cell whose centre is nearest the block centre.
        assert_eq!(m.cell(2, 2).0, Watt(1.5).0);
    }

    #[test]
    fn off_die_block_snaps_to_nearest_edge_cell() {
        let mut m = PowerMap::zero(4, 4).unwrap();
        m.add_block(1.2, -0.7, 1.4, -0.5, Watt(0.8));
        assert!((m.total().0 - 0.8).abs() < 1e-12);
        assert_eq!(m.cell(3, 0).0, Watt(0.8).0);
    }

    #[test]
    fn far_off_die_hotspot_conserves_power() {
        // exp(-d²/2r²) underflows to 0.0 for every cell when the centre is
        // far off-die and the radius tiny; the watts must still arrive.
        let mut m = PowerMap::zero(8, 8).unwrap();
        m.add_hotspot(50.0, 50.0, 1e-6, Watt(2.0));
        assert!((m.total().0 - 2.0).abs() < 1e-12);
        assert_eq!(m.cell(7, 7).0, Watt(2.0).0);
    }

    #[test]
    fn non_finite_hotspot_center_still_conserves_power() {
        let mut m = PowerMap::zero(4, 4).unwrap();
        m.add_hotspot(f64::NAN, f64::INFINITY, 0.05, Watt(1.0));
        assert!((m.total().0 - 1.0).abs() < 1e-12);
    }

    ptsim_rng::forall! {
        #![cases = 64]

        /// Headline conservation property: whatever the geometry — covered,
        /// thin, degenerate, or entirely off-die — `total()` rises by
        /// exactly the injected watts.
        #[test]
        fn block_injection_conserves_power(
            x0 in -0.5f64..1.5, y0 in -0.5f64..1.5,
            w in 0.0f64..0.8, h in 0.0f64..0.8,
            watts in 0.0f64..10.0,
        ) {
            let mut m = PowerMap::uniform(8, 8, Watt(1.0)).unwrap();
            let before = m.total().0;
            m.add_block(x0, y0, x0 + w, y0 + h, Watt(watts));
            let gained = m.total().0 - before;
            assert!(
                (gained - watts).abs() < 1e-9 * watts.max(1.0),
                "block ({x0:.3},{y0:.3})+({w:.3},{h:.3}) lost power: \
                 injected {watts:.6}, gained {gained:.6}"
            );
        }

        #[test]
        fn hotspot_injection_conserves_power(
            cx in -2.0f64..3.0, cy in -2.0f64..3.0,
            radius in 0.0f64..0.3, watts in 0.0f64..10.0,
        ) {
            let mut m = PowerMap::uniform(8, 8, Watt(1.0)).unwrap();
            let before = m.total().0;
            m.add_hotspot(cx, cy, radius, Watt(watts));
            let gained = m.total().0 - before;
            assert!(
                (gained - watts).abs() < 1e-9 * watts.max(1.0),
                "hotspot ({cx:.3},{cy:.3}) r={radius:.4} lost power: \
                 injected {watts:.6}, gained {gained:.6}"
            );
        }
    }
}
