//! Conjugate-gradient steady-state solver.
//!
//! The thermal conductance matrix is symmetric positive-definite (every cell
//! is grounded through at least one boundary path), so conjugate gradients
//! converges in at most `n` steps and typically far faster than Gauss–Seidel
//! sweeps on large grids. Matrix-free: only `A·x` products are formed.

use crate::error::ThermalError;
use crate::linalg::dot;
use crate::solve::SolveStats;
use crate::stack::ThermalStack;

/// Options for the conjugate-gradient solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Convergence tolerance on the residual 2-norm relative to `‖b‖`.
    pub relative_tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            relative_tolerance: 1e-10,
            max_iterations: 20_000,
        }
    }
}

/// Solves the stack to steady state in place using conjugate gradients.
///
/// Produces the same temperature field as
/// [`crate::solve::solve_steady_state`] (they solve the identical linear
/// system); see DESIGN.md's "Thermal solver hierarchy" for when to pick
/// CG over the Gauss–Seidel oracle or the
/// [`crate::multigrid::solve_steady_state_mg`] production solver.
///
/// # Errors
///
/// Returns [`ThermalError::NotConverged`] if the relative residual does not
/// reach `opts.relative_tolerance` within `opts.max_iterations`.
pub fn solve_steady_state_cg(
    stack: &mut ThermalStack,
    opts: &CgOptions,
) -> Result<SolveStats, ThermalError> {
    let n = {
        let (t, nx, ny) = {
            let cfg = stack.config();
            (cfg.tiers, cfg.nx, cfg.ny)
        };
        t * nx * ny
    };

    let mut b = vec![0.0; n];
    stack.steady_state_rhs(&mut b);
    let b_norm = dot(&b, &b).sqrt().max(f64::MIN_POSITIVE);

    // Start from the current temperature state (warm start).
    let mut x = stack.temps_mut().clone();
    let mut ax = vec![0.0; n];
    stack.apply_conductance(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    let mut iterations = 0;
    while iterations < opts.max_iterations {
        let rel = rs_old.sqrt() / b_norm;
        if rel < opts.relative_tolerance {
            break;
        }
        iterations += 1;
        stack.apply_conductance(&p, &mut ax);
        let alpha = rs_old / dot(&p, &ax).max(f64::MIN_POSITIVE);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ax[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old.max(f64::MIN_POSITIVE);
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    let residual = rs_old.sqrt() / b_norm;
    if residual >= opts.relative_tolerance {
        return Err(ThermalError::NotConverged {
            iterations,
            residual,
        });
    }
    stack.temps_mut().copy_from_slice(&x);
    Ok(SolveStats {
        iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerMap;
    use crate::solve::{solve_steady_state, SolveOptions};
    use crate::stack::{StackConfig, ThermalStack};
    use ptsim_device::units::Watt;

    fn loaded_stack() -> ThermalStack {
        let mut s = ThermalStack::new(StackConfig::four_tier_5mm()).unwrap();
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(0.3, 0.7, 0.1, Watt(1.8));
        s.set_power(0, p).unwrap();
        s.set_power(2, PowerMap::uniform(16, 16, Watt(0.4)).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn cg_matches_gauss_seidel() {
        let mut gs = loaded_stack();
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut cg = loaded_stack();
        solve_steady_state_cg(&mut cg, &CgOptions::default()).unwrap();
        for tier in 0..4 {
            for iy in 0..16 {
                for ix in 0..16 {
                    let a = gs.temperature(tier, ix, iy).unwrap().0;
                    let b = cg.temperature(tier, ix, iy).unwrap().0;
                    assert!(
                        (a - b).abs() < 1e-3,
                        "tier {tier} cell ({ix},{iy}): GS {a:.5} vs CG {b:.5}"
                    );
                }
            }
        }
    }

    #[test]
    fn cg_converges_fast() {
        let mut s = loaded_stack();
        let stats = solve_steady_state_cg(&mut s, &CgOptions::default()).unwrap();
        // 1024 unknowns: CG should converge in far fewer iterations.
        assert!(
            stats.iterations < 1024,
            "CG took {} iterations",
            stats.iterations
        );
        assert!(stats.residual < 1e-10);
    }

    #[test]
    fn cg_zero_power_stays_ambient() {
        let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
        solve_steady_state_cg(&mut s, &CgOptions::default()).unwrap();
        assert!((s.mean_temperature(0).unwrap().0 - 25.0).abs() < 1e-6);
    }

    #[test]
    fn cg_reports_non_convergence() {
        let mut s = loaded_stack();
        let opts = CgOptions {
            max_iterations: 2,
            ..CgOptions::default()
        };
        assert!(matches!(
            solve_steady_state_cg(&mut s, &opts),
            Err(ThermalError::NotConverged { .. })
        ));
    }

    #[test]
    fn warm_start_accelerates_resolve() {
        let mut s = loaded_stack();
        let cold = solve_steady_state_cg(&mut s, &CgOptions::default()).unwrap();
        // Slightly perturb the power and re-solve from the warm state.
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(0.3, 0.7, 0.1, Watt(1.9));
        s.set_power(0, p).unwrap();
        let warm = solve_steady_state_cg(&mut s, &CgOptions::default()).unwrap();
        assert!(warm.iterations <= cold.iterations);
    }
}
