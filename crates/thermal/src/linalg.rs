//! Small dense-vector helpers shared by the iterative solvers
//! ([`crate::cg`] and [`crate::multigrid`]).

/// Dot product `Σ aᵢ·bᵢ` (plain left-to-right accumulation — solver
/// convergence checks must stay bit-stable across refactors).
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
pub(crate) fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_agree_with_hand_values() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(dot(&a, &[1.0, 0.5]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }
}
