//! Bulk material thermal properties.
//!
//! Values are standard room-temperature handbook numbers; the solver treats
//! them as temperature-independent, which is accurate to a few percent over
//! the −20…100 °C range the sensor is graded on.

/// Thermal properties of one material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity, J/(m³·K).
    pub volumetric_heat_capacity: f64,
}

impl Material {
    /// Bulk crystalline silicon.
    pub const SILICON: Material = Material {
        conductivity: 150.0,
        volumetric_heat_capacity: 1.66e6,
    };

    /// Silicon dioxide (TSV liner, ILD).
    pub const SILICON_DIOXIDE: Material = Material {
        conductivity: 1.4,
        volumetric_heat_capacity: 1.65e6,
    };

    /// Electroplated copper (TSV fill, BEOL).
    pub const COPPER: Material = Material {
        conductivity: 400.0,
        volumetric_heat_capacity: 3.45e6,
    };

    /// Inter-tier bonding/underfill layer (Cu/In bond + adhesive average).
    pub const BOND_LAYER: Material = Material {
        conductivity: 2.0,
        volumetric_heat_capacity: 1.8e6,
    };

    /// Thermal interface material between the top tier and the heat sink.
    pub const TIM: Material = Material {
        conductivity: 5.0,
        volumetric_heat_capacity: 2.0e6,
    };

    /// Conductance of a slab of this material: area `a` (m²), thickness `t`
    /// (m), in W/K.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is not positive.
    #[must_use]
    pub fn slab_conductance(&self, a: f64, t: f64) -> f64 {
        debug_assert!(t > 0.0, "slab thickness must be positive");
        self.conductivity * a / t
    }

    /// Heat capacity of a volume `v` (m³), in J/K.
    #[must_use]
    pub fn volume_capacity(&self, v: f64) -> f64 {
        self.volumetric_heat_capacity * v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silicon_conducts_two_orders_better_than_oxide() {
        assert!(Material::SILICON.conductivity / Material::SILICON_DIOXIDE.conductivity > 50.0);
    }

    #[test]
    fn copper_is_best_conductor() {
        for m in [
            Material::SILICON,
            Material::SILICON_DIOXIDE,
            Material::BOND_LAYER,
            Material::TIM,
        ] {
            assert!(Material::COPPER.conductivity > m.conductivity);
        }
    }

    #[test]
    fn slab_conductance_scales() {
        let g1 = Material::SILICON.slab_conductance(1e-6, 100e-6);
        let g2 = Material::SILICON.slab_conductance(2e-6, 100e-6);
        let g3 = Material::SILICON.slab_conductance(1e-6, 200e-6);
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
        assert!((g3 / g1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn volume_capacity_positive() {
        assert!(Material::SILICON.volume_capacity(1e-9) > 0.0);
    }
}
