//! Error type for the thermal crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or solving thermal models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A grid dimension was zero.
    InvalidGrid {
        /// Cells in X.
        nx: usize,
        /// Cells in Y.
        ny: usize,
    },
    /// A power value was negative or non-finite.
    InvalidPower {
        /// Offending value in watts.
        watts: f64,
    },
    /// A geometry parameter (thickness, die size, tier count) was out of
    /// range.
    InvalidGeometry {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A power map with mismatched resolution was assigned to a tier.
    ResolutionMismatch {
        /// Expected `(nx, ny)`.
        expected: (usize, usize),
        /// Provided `(nx, ny)`.
        got: (usize, usize),
    },
    /// A tier index was out of range.
    TierOutOfRange {
        /// Offending tier.
        tier: usize,
        /// Number of tiers in the stack.
        tiers: usize,
    },
    /// The iterative solver failed to converge.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual (max |ΔT| per sweep, °C).
        residual: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidGrid { nx, ny } => {
                write!(f, "invalid thermal grid {nx}x{ny}")
            }
            ThermalError::InvalidPower { watts } => write!(f, "invalid power {watts} W"),
            ThermalError::InvalidGeometry { name, value } => {
                write!(f, "invalid geometry parameter {name} = {value}")
            }
            ThermalError::ResolutionMismatch { expected, got } => write!(
                f,
                "power map resolution {}x{} does not match grid {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            ThermalError::TierOutOfRange { tier, tiers } => {
                write!(f, "tier {tier} out of range (stack has {tiers})")
            }
            ThermalError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "steady-state solve did not converge after {iterations} iterations (residual {residual:.3e} °C)"
            ),
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_context() {
        let e = ThermalError::ResolutionMismatch {
            expected: (16, 16),
            got: (8, 8),
        };
        assert!(e.to_string().contains("8x8"));
        assert!(e.to_string().contains("16x16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ThermalError>();
    }
}
