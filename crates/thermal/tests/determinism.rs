//! Bit-exactness gates for the parallel multigrid smoother.
//!
//! The red-black half-sweeps update one colour from the frozen other
//! colour, so traversal order — and therefore thread count — cannot
//! change a single bit of the result. These tests pin that guarantee on
//! a grid large enough to cross the parallel-dispatch threshold on the
//! finest level.

use ptsim_device::units::{Watt, WattPerKelvin};
use ptsim_thermal::multigrid::{solve_steady_state_mg, MgOptions};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::stack::{StackConfig, ThermalStack};

/// 32 × 32 × 4 = 4096 cells: well above `PARALLEL_MIN_CELLS`, so the
/// finest level actually runs the threaded half-sweep path.
fn big_stack() -> ThermalStack {
    let cfg = StackConfig {
        nx: 32,
        ny: 32,
        ..StackConfig::four_tier_5mm()
    };
    let mut s = ThermalStack::new(cfg).unwrap();
    let mut p = PowerMap::zero(32, 32).unwrap();
    p.add_hotspot(0.3, 0.3, 0.1, Watt(2.0));
    p.add_hotspot(0.7, 0.6, 0.2, Watt(0.8));
    s.set_power(0, p).unwrap();
    s.set_power(2, PowerMap::uniform(32, 32, Watt(0.5)).unwrap())
        .unwrap();
    for iface in 0..3 {
        s.add_vertical_conductance(iface, 5, 27, WattPerKelvin(2.4e-3))
            .unwrap();
    }
    s
}

fn field_bits(s: &ThermalStack) -> Vec<u64> {
    let cfg = s.config();
    let mut out = Vec::with_capacity(cfg.tiers * cfg.nx * cfg.ny);
    for tier in 0..cfg.tiers {
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                out.push(s.temperature(tier, ix, iy).unwrap().0.to_bits());
            }
        }
    }
    out
}

fn solve_with_threads(threads: usize) -> (Vec<u64>, usize) {
    let mut s = big_stack();
    let stats = solve_steady_state_mg(
        &mut s,
        &MgOptions {
            threads,
            ..MgOptions::default()
        },
    )
    .unwrap();
    (field_bits(&s), stats.iterations)
}

#[test]
fn field_is_bit_identical_across_thread_counts() {
    let (seq, seq_cycles) = solve_with_threads(1);
    for threads in [2usize, 4, 0] {
        let (par, par_cycles) = solve_with_threads(threads);
        assert_eq!(
            seq_cycles, par_cycles,
            "cycle count differs at threads={threads}"
        );
        let diffs = seq.iter().zip(&par).filter(|(a, b)| a != b).count();
        assert_eq!(
            diffs,
            0,
            "{diffs} of {} cells differ bitwise at threads={threads}",
            seq.len()
        );
    }
}

#[test]
fn repeated_solves_are_bit_identical() {
    let (a, cycles_a) = solve_with_threads(4);
    let (b, cycles_b) = solve_with_threads(4);
    assert_eq!(cycles_a, cycles_b);
    assert_eq!(a, b);
}
