//! Boundary-condition regression tests for the steady-state solvers.
//!
//! The stack's lateral faces are adiabatic (no flux leaves the die edge);
//! the top face drains through TIM + heat sink and the bottom through the
//! package/board, both to fixed ambient. Each case here is checked
//! against the Gauss–Seidel oracle or a closed-form lumped model, and
//! exercised through the multigrid production solver so a boundary bug in
//! the coarse hierarchy cannot hide behind the oracle's stencil.

use ptsim_device::units::{Celsius, Watt};
use ptsim_thermal::material::Material;
use ptsim_thermal::multigrid::{solve_steady_state_mg, MgOptions};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, SolveOptions};
use ptsim_thermal::stack::{StackConfig, ThermalStack};

/// Total top-path (TIM in series with sink) plus bottom-path conductance
/// to ambient, W/K, for a single-die stack — the exact lumped model when
/// power is laterally uniform.
fn ground_conductance(cfg: &StackConfig) -> f64 {
    let m = 1e-6;
    let n = (cfg.nx * cfg.ny) as f64;
    let cell_area = (cfg.die_width.0 * m / cfg.nx as f64) * (cfg.die_height.0 * m / cfg.ny as f64);
    let g_tim_total = n * Material::TIM.slab_conductance(cell_area, cfg.tim_thickness.0 * m);
    let g_sink = 1.0 / (1.0 / g_tim_total + cfg.sink_resistance);
    g_sink + 1.0 / cfg.board_resistance
}

#[test]
fn uniform_power_matches_lumped_closed_form() {
    // Uniform power on a single die has no lateral gradients, so the 2D
    // network collapses exactly to one node: rise = P / (G_sink + G_board).
    let cfg = StackConfig::single_die_5mm();
    let power = 1.3;
    let expected_rise = power / ground_conductance(&cfg);
    let mut s = ThermalStack::new(cfg).unwrap();
    s.set_power(0, PowerMap::uniform(16, 16, Watt(power)).unwrap())
        .unwrap();
    solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap();
    let rise = s.mean_temperature(0).unwrap().0 - 25.0;
    assert!(
        (rise - expected_rise).abs() < 1e-6 * expected_rise,
        "lumped model predicts rise {expected_rise:.9}, solver gave {rise:.9}"
    );
}

#[test]
fn uniform_power_has_no_lateral_gradient() {
    // Adiabatic lateral faces: with laterally uniform power every cell of
    // the tier sits at the same temperature. A leaky edge (e.g. a phantom
    // neighbour at ambient) would cool the border cells.
    let mut s = ThermalStack::new(StackConfig::single_die_5mm()).unwrap();
    s.set_power(0, PowerMap::uniform(16, 16, Watt(2.0)).unwrap())
        .unwrap();
    solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap();
    let mean = s.mean_temperature(0).unwrap().0;
    for iy in 0..16 {
        for ix in 0..16 {
            let t = s.temperature(0, ix, iy).unwrap().0;
            assert!(
                (t - mean).abs() < 1e-8,
                "lateral gradient at ({ix},{iy}): {t} vs mean {mean}"
            );
        }
    }
}

#[test]
fn near_adiabatic_sink_sends_heat_through_board() {
    // With the sink path choked (R_sink -> 1e9 K/W) the top face is
    // effectively adiabatic and all heat exits through the board:
    // rise -> P * board_resistance.
    let cfg = StackConfig {
        sink_resistance: 1e9,
        ..StackConfig::single_die_5mm()
    };
    let power = 0.7;
    let expected_rise = power / ground_conductance(&cfg);
    assert!(
        (expected_rise - power * cfg.board_resistance).abs() < 1e-3,
        "choked sink should leave the board as the only path"
    );
    let mut s = ThermalStack::new(cfg).unwrap();
    s.set_power(0, PowerMap::uniform(16, 16, Watt(power)).unwrap())
        .unwrap();
    solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap();
    let rise = s.mean_temperature(0).unwrap().0 - 25.0;
    assert!(
        (rise - expected_rise).abs() < 1e-6 * expected_rise,
        "expected rise {expected_rise:.6}, got {rise:.6}"
    );
}

#[test]
fn corner_impulse_on_odd_grid_matches_oracle() {
    // A single hot cell in the corner of a 9 × 9 grid stresses both
    // adiabatic edges and the odd-width (width-1 block) coarsening path.
    let build = || {
        let cfg = StackConfig {
            nx: 9,
            ny: 9,
            tiers: 2,
            ..StackConfig::four_tier_5mm()
        };
        let mut s = ThermalStack::new(cfg).unwrap();
        let mut p = PowerMap::zero(9, 9).unwrap();
        p.set_cell(0, 0, Watt(0.5));
        s.set_power(0, p).unwrap();
        s
    };
    let mut gs = build();
    solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
    let mut mg = build();
    solve_steady_state_mg(&mut mg, &MgOptions::default()).unwrap();
    for tier in 0..2 {
        for iy in 0..9 {
            for ix in 0..9 {
                let a = gs.temperature(tier, ix, iy).unwrap().0;
                let b = mg.temperature(tier, ix, iy).unwrap().0;
                assert!(
                    (a - b).abs() < 1e-3,
                    "tier {tier} cell ({ix},{iy}): oracle {a:.6} vs MG {b:.6}"
                );
            }
        }
    }
    // The impulse cell must be the hottest one on its tier.
    let peak = mg.max_temperature(0).unwrap().0;
    let corner = mg.temperature(0, 0, 0).unwrap().0;
    assert!(
        (peak - corner).abs() < 1e-12,
        "hottest cell is not the powered corner: {corner} vs {peak}"
    );
}

#[test]
fn center_impulse_field_is_symmetric() {
    // Discretization and both boundary types are mirror-symmetric about
    // the centre cell of an odd grid, so the converged field must be too.
    let cfg = StackConfig {
        nx: 9,
        ny: 9,
        tiers: 1,
        ..StackConfig::four_tier_5mm()
    };
    let mut s = ThermalStack::new(cfg).unwrap();
    let mut p = PowerMap::zero(9, 9).unwrap();
    p.set_cell(4, 4, Watt(1.0));
    s.set_power(0, p).unwrap();
    solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap();
    for d in 1..5 {
        let east = s.temperature(0, 4 + d, 4).unwrap().0;
        let west = s.temperature(0, 4 - d, 4).unwrap().0;
        let north = s.temperature(0, 4, 4 + d).unwrap().0;
        let south = s.temperature(0, 4, 4 - d).unwrap().0;
        assert!(
            (east - west).abs() < 1e-6,
            "x asymmetry at d={d}: {east} vs {west}"
        );
        assert!(
            (north - south).abs() < 1e-6,
            "y asymmetry at d={d}: {north} vs {south}"
        );
        assert!(
            (east - north).abs() < 1e-6,
            "diagonal asymmetry at d={d}: {east} vs {north}"
        );
    }
}

#[test]
fn ambient_shift_translates_the_field() {
    // The network is linear with every boundary referenced to ambient, so
    // raising ambient 25 -> 85 °C rigidly shifts the solution by 60 °C.
    let solve_at = |ambient: f64| {
        let cfg = StackConfig {
            ambient: Celsius(ambient),
            ..StackConfig::four_tier_5mm()
        };
        let mut s = ThermalStack::new(cfg).unwrap();
        let mut p = PowerMap::zero(16, 16).unwrap();
        p.add_hotspot(0.4, 0.6, 0.15, Watt(1.5));
        s.set_power(1, p).unwrap();
        solve_steady_state_mg(&mut s, &MgOptions::default()).unwrap();
        s
    };
    let cold = solve_at(25.0);
    let hot = solve_at(85.0);
    for tier in 0..4 {
        for iy in 0..16 {
            for ix in 0..16 {
                let a = cold.temperature(tier, ix, iy).unwrap().0;
                let b = hot.temperature(tier, ix, iy).unwrap().0;
                assert!(
                    (b - a - 60.0).abs() < 1e-6,
                    "tier {tier} cell ({ix},{iy}): {a} at 25 °C vs {b} at 85 °C"
                );
            }
        }
    }
}
