//! Property-based tests of the thermal-solver invariants.

use ptsim_device::units::{Seconds, Watt};
use ptsim_rng::forall;
use ptsim_thermal::cg::{solve_steady_state_cg, CgOptions};
use ptsim_thermal::multigrid::{solve_steady_state_mg, MgOptions};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, step_transient, SolveOptions};
use ptsim_thermal::stack::{StackConfig, ThermalStack};

fn small_stack(tiers: usize) -> ThermalStack {
    let cfg = StackConfig {
        nx: 8,
        ny: 8,
        tiers,
        ..StackConfig::four_tier_5mm()
    };
    ThermalStack::new(cfg).unwrap()
}

forall! {
    #![cases = 24]

    #[test]
    fn steady_state_above_ambient_everywhere(
        cx in 0.1f64..0.9, cy in 0.1f64..0.9, w in 0.05f64..3.0,
    ) {
        let mut s = small_stack(2);
        let mut p = PowerMap::zero(8, 8).unwrap();
        p.add_hotspot(cx, cy, 0.15, Watt(w));
        s.set_power(0, p).unwrap();
        solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
        for tier in 0..2 {
            for iy in 0..8 {
                for ix in 0..8 {
                    let t = s.temperature(tier, ix, iy).unwrap().0;
                    assert!(t >= 25.0 - 1e-9, "cell below ambient: {t}");
                }
            }
        }
    }

    #[test]
    fn superposition_holds_for_linear_network(
        w1 in 0.1f64..2.0, w2 in 0.1f64..2.0,
    ) {
        // Linear RC network: temperature rise of (P1 + P2) equals the sum of
        // the individual rises.
        let solve_rise = |w: f64, cx: f64| {
            let mut s = small_stack(1);
            let mut p = PowerMap::zero(8, 8).unwrap();
            p.add_hotspot(cx, 0.5, 0.12, Watt(w));
            s.set_power(0, p).unwrap();
            solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
            s.temperature_at(0, 0.5, 0.5).unwrap().0 - 25.0
        };
        let a = solve_rise(w1, 0.3);
        let b = solve_rise(w2, 0.7);
        let both = {
            let mut s = small_stack(1);
            let mut p = PowerMap::zero(8, 8).unwrap();
            p.add_hotspot(0.3, 0.5, 0.12, Watt(w1));
            p.add_hotspot(0.7, 0.5, 0.12, Watt(w2));
            s.set_power(0, p).unwrap();
            solve_steady_state(&mut s, &SolveOptions::default()).unwrap();
            s.temperature_at(0, 0.5, 0.5).unwrap().0 - 25.0
        };
        assert!((both - (a + b)).abs() < 1e-3,
            "superposition violated: {both} vs {a}+{b}");
    }

    #[test]
    fn cg_and_gauss_seidel_agree(
        cx in 0.1f64..0.9, cy in 0.1f64..0.9, w in 0.1f64..2.0,
    ) {
        let build = || {
            let mut s = small_stack(3);
            let mut p = PowerMap::zero(8, 8).unwrap();
            p.add_hotspot(cx, cy, 0.15, Watt(w));
            s.set_power(1, p).unwrap();
            s
        };
        let mut gs = build();
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut cg = build();
        solve_steady_state_cg(&mut cg, &CgOptions::default()).unwrap();
        let a = gs.temperature_at(1, cx, cy).unwrap().0;
        let b = cg.temperature_at(1, cx, cy).unwrap().0;
        assert!((a - b).abs() < 1e-3, "GS {a} vs CG {b}");
    }

    #[test]
    fn all_three_steady_solvers_agree(
        cx in 0.1f64..0.9, cy in 0.1f64..0.9, w in 0.1f64..2.0, tiers in 1usize..4,
    ) {
        // GS (oracle), CG, and multigrid solve the identical linear system;
        // any pair drifting apart flags a conductance-assembly bug in one.
        let build = || {
            let mut s = small_stack(tiers);
            let mut p = PowerMap::zero(8, 8).unwrap();
            p.add_hotspot(cx, cy, 0.15, Watt(w));
            s.set_power(tiers - 1, p).unwrap();
            s
        };
        let mut gs = build();
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut cg = build();
        solve_steady_state_cg(&mut cg, &CgOptions::default()).unwrap();
        let mut mg = build();
        solve_steady_state_mg(&mut mg, &MgOptions::default()).unwrap();
        for tier in 0..tiers {
            for iy in 0..8 {
                for ix in 0..8 {
                    let a = gs.temperature(tier, ix, iy).unwrap().0;
                    let b = cg.temperature(tier, ix, iy).unwrap().0;
                    let c = mg.temperature(tier, ix, iy).unwrap().0;
                    assert!(
                        (a - b).abs() < 1e-3 && (a - c).abs() < 1e-3,
                        "tier {tier} cell ({ix},{iy}): GS {a} CG {b} MG {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_never_overshoots_steady_state_on_heatup(w in 0.2f64..2.0) {
        let mut steady = small_stack(1);
        steady.set_power(0, PowerMap::uniform(8, 8, Watt(w)).unwrap()).unwrap();
        let mut transient = steady.clone();
        solve_steady_state(&mut steady, &SolveOptions::default()).unwrap();
        let target = steady.max_temperature(0).unwrap().0;
        for _ in 0..20 {
            step_transient(&mut transient, Seconds(0.01));
            let t = transient.max_temperature(0).unwrap().0;
            assert!(t <= target + 1e-6, "overshoot: {t} vs {target}");
        }
    }

    #[test]
    fn power_map_block_conserves_total(
        x0 in 0.0f64..0.5, y0 in 0.0f64..0.5, w in 0.1f64..4.0,
    ) {
        let mut m = PowerMap::zero(16, 16).unwrap();
        m.add_block(x0, y0, x0 + 0.4, y0 + 0.4, Watt(w));
        assert!((m.total().0 - w).abs() < 1e-9);
        assert!(m.peak().0 <= w);
    }
}
