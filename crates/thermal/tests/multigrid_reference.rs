//! Property tests grading the multigrid production solver against the
//! lexicographic Gauss–Seidel oracle.
//!
//! [`solve_steady_state`] stays the bit-exact reference for every
//! accuracy gate (see DESIGN.md, "Thermal solver hierarchy"); these
//! properties pin the V-cycle to it across randomized grid sizes
//! (including non-power-of-two), power maps, and material stacks, and
//! assert the per-cycle residual contraction the solver's convergence
//! argument rests on.

use ptsim_device::units::{Micron, Watt, WattPerKelvin};
use ptsim_rng::forall;
use ptsim_thermal::multigrid::{solve_steady_state_mg, MgOptions, MultigridSolver};
use ptsim_thermal::power::PowerMap;
use ptsim_thermal::solve::{solve_steady_state, SolveOptions};
use ptsim_thermal::stack::{StackConfig, ThermalStack};

/// Worst-case disagreement allowed between the oracle and multigrid once
/// both report convergence (same bound the CG suite uses).
const AGREE_TOL: f64 = 1e-3;

fn assert_fields_agree(oracle: &ThermalStack, mg: &ThermalStack, what: &str) {
    let cfg = oracle.config();
    for tier in 0..cfg.tiers {
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let a = oracle.temperature(tier, ix, iy).unwrap().0;
                let b = mg.temperature(tier, ix, iy).unwrap().0;
                assert!(
                    (a - b).abs() < AGREE_TOL,
                    "{what}: tier {tier} cell ({ix},{iy}): oracle {a:.6} vs MG {b:.6}"
                );
            }
        }
    }
}

forall! {
    #![cases = 12]

    #[test]
    fn vcycle_matches_oracle_on_random_grids(
        nx in 5usize..21, ny in 5usize..21, tiers in 1usize..5,
        cx in 0.05f64..0.95, cy in 0.05f64..0.95, w in 0.1f64..3.0,
    ) {
        let build = || {
            let cfg = StackConfig { nx, ny, tiers, ..StackConfig::four_tier_5mm() };
            let mut s = ThermalStack::new(cfg).unwrap();
            let mut p = PowerMap::zero(nx, ny).unwrap();
            p.add_hotspot(cx, cy, 0.15, Watt(w));
            s.set_power(0, p).unwrap();
            s
        };
        let mut gs = build();
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut mg = build();
        solve_steady_state_mg(&mut mg, &MgOptions::default()).unwrap();
        assert_fields_agree(&gs, &mg, "random grid");
    }

    #[test]
    fn vcycle_matches_oracle_on_random_material_stacks(
        t_si in 30.0f64..300.0, t_bond in 2.0f64..40.0,
        r_sink in 0.5f64..8.0, r_board in 5.0f64..50.0,
        tsv_ix in 0usize..9, tsv_iy in 0usize..9,
    ) {
        let build = || {
            let cfg = StackConfig {
                nx: 9,
                ny: 9,
                tiers: 3,
                tier_thickness: Micron(t_si),
                bond_thickness: Micron(t_bond),
                sink_resistance: r_sink,
                board_resistance: r_board,
                ..StackConfig::four_tier_5mm()
            };
            let mut s = ThermalStack::new(cfg).unwrap();
            let mut p = PowerMap::zero(9, 9).unwrap();
            p.add_hotspot(0.3, 0.6, 0.2, Watt(1.2));
            s.set_power(2, p).unwrap();
            // A TSV bundle threading both interfaces at one site.
            for iface in 0..2 {
                s.add_vertical_conductance(iface, tsv_ix, tsv_iy, WattPerKelvin(2.4e-3))
                    .unwrap();
            }
            s
        };
        let mut gs = build();
        solve_steady_state(&mut gs, &SolveOptions::default()).unwrap();
        let mut mg = build();
        solve_steady_state_mg(&mut mg, &MgOptions::default()).unwrap();
        assert_fields_agree(&gs, &mg, "material stack");
    }

    #[test]
    fn residual_decreases_monotonically_until_tolerance(
        nx in 4usize..25, ny in 4usize..25, w in 0.2f64..2.0,
    ) {
        let cfg = StackConfig { nx, ny, tiers: 2, ..StackConfig::four_tier_5mm() };
        let mut s = ThermalStack::new(cfg).unwrap();
        let mut p = PowerMap::zero(nx, ny).unwrap();
        p.add_hotspot(0.25, 0.75, 0.1, Watt(w));
        s.set_power(0, p).unwrap();
        let opts = MgOptions::default();
        let mut solver = MultigridSolver::new(&s, opts).unwrap();
        let mut prev = f64::INFINITY;
        for cycle in 0..opts.max_cycles {
            let rel = solver.cycle(&mut s);
            assert!(
                rel < prev,
                "cycle {cycle}: relative residual rose {prev:.3e} -> {rel:.3e}"
            );
            prev = rel;
            if rel < opts.tolerance {
                return;
            }
        }
        panic!("not converged after {} cycles (residual {prev:.3e})", opts.max_cycles);
    }
}
