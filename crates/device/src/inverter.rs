//! CMOS inverter delay, energy and leakage model.
//!
//! The inverter is the atom of every ring oscillator in the sensor. Skewing
//! the NMOS/PMOS width ratio is what makes an oscillator *process-sensitive*:
//! with a deliberately weak (narrow) NMOS and strong PMOS, the falling edge
//! is slow and dominates the stage delay budget, so the oscillator frequency
//! tracks the NMOS drive — i.e. `Vtn` — far more than `Vtp`; and vice versa.

use crate::error::DeviceError;
use crate::mosfet::{DeviceEnv, MosPolarity, Mosfet};
use crate::process::Technology;
use crate::units::{Ampere, Celsius, Farad, Joule, Micron, Seconds, Volt, Watt};

/// Combined NMOS + PMOS variation environment seen by a CMOS gate.
///
/// `d_vtn`/`d_vtp` are signed shifts of the respective threshold
/// *magnitudes* (positive = slower device, for either polarity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosEnv {
    /// Junction temperature.
    pub temp: Celsius,
    /// NMOS threshold-magnitude shift.
    pub d_vtn: Volt,
    /// PMOS threshold-magnitude shift.
    pub d_vtp: Volt,
    /// NMOS relative mobility multiplier.
    pub mu_n: f64,
    /// PMOS relative mobility multiplier.
    pub mu_p: f64,
}

impl CmosEnv {
    /// Nominal process at 25 °C.
    #[must_use]
    pub fn nominal() -> Self {
        CmosEnv::at(crate::consts::T_REF)
    }

    /// Nominal process at a given temperature.
    #[must_use]
    pub fn at(temp: Celsius) -> Self {
        CmosEnv {
            temp,
            d_vtn: Volt::ZERO,
            d_vtp: Volt::ZERO,
            mu_n: 1.0,
            mu_p: 1.0,
        }
    }

    /// Environment as seen by the NMOS device.
    #[must_use]
    pub fn nmos_env(&self) -> DeviceEnv {
        DeviceEnv {
            temp: self.temp,
            delta_vt: self.d_vtn,
            mu_factor: self.mu_n,
        }
    }

    /// Environment as seen by the PMOS device.
    #[must_use]
    pub fn pmos_env(&self) -> DeviceEnv {
        DeviceEnv {
            temp: self.temp,
            delta_vt: self.d_vtp,
            mu_factor: self.mu_p,
        }
    }

    /// Copy of `self` at a different temperature.
    #[must_use]
    pub fn with_temp(mut self, temp: Celsius) -> Self {
        self.temp = temp;
        self
    }
}

impl Default for CmosEnv {
    fn default() -> Self {
        CmosEnv::nominal()
    }
}

/// A static CMOS inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    nmos: Mosfet,
    pmos: Mosfet,
}

impl Inverter {
    /// Builds an inverter from explicit devices.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the polarities are wrong
    /// (the first argument must be the NMOS, the second the PMOS).
    pub fn new(nmos: Mosfet, pmos: Mosfet) -> Result<Self, DeviceError> {
        if nmos.polarity() != MosPolarity::Nmos {
            return Err(DeviceError::InvalidParameter {
                name: "nmos.polarity",
                value: 1.0,
            });
        }
        if pmos.polarity() != MosPolarity::Pmos {
            return Err(DeviceError::InvalidParameter {
                name: "pmos.polarity",
                value: 0.0,
            });
        }
        Ok(Inverter { nmos, pmos })
    }

    /// Balanced minimum-length inverter: PMOS is `beta` times wider than the
    /// NMOS to compensate its weaker mobility (`beta ≈ 2` balances edges in
    /// this technology).
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`Mosfet::new`].
    pub fn balanced(wn: Micron, beta: f64, tech: &Technology) -> Result<Self, DeviceError> {
        if !(beta.is_finite() && beta > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "beta",
                value: beta,
            });
        }
        let nmos = Mosfet::min_length(MosPolarity::Nmos, wn, tech)?;
        let pmos = Mosfet::min_length(MosPolarity::Pmos, Micron(wn.0 * beta), tech)?;
        Inverter::new(nmos, pmos)
    }

    /// NMOS device.
    #[must_use]
    pub fn nmos(&self) -> &Mosfet {
        &self.nmos
    }

    /// PMOS device.
    #[must_use]
    pub fn pmos(&self) -> &Mosfet {
        &self.pmos
    }

    /// Input gate capacitance of this inverter.
    #[must_use]
    pub fn input_cap(&self, tech: &Technology) -> Farad {
        self.nmos.gate_cap(tech) + self.pmos.gate_cap(tech)
    }

    /// Self-loading at the output node (junction capacitances).
    #[must_use]
    pub fn output_cap(&self, tech: &Technology) -> Farad {
        self.nmos.junction_cap(tech) + self.pmos.junction_cap(tech)
    }

    /// High-to-low propagation delay driving `load` (NMOS discharges).
    ///
    /// Uses the classic average-current approximation
    /// `tpHL ≈ C·VDD / (2·Ion,n)`.
    #[must_use]
    pub fn tphl(&self, tech: &Technology, vdd: Volt, load: Farad, env: &CmosEnv) -> Seconds {
        let ion = self.nmos.on_current(tech, vdd, &env.nmos_env());
        Seconds(load.0 * vdd.0 / (2.0 * ion.0))
    }

    /// Low-to-high propagation delay driving `load` (PMOS charges).
    #[must_use]
    pub fn tplh(&self, tech: &Technology, vdd: Volt, load: Farad, env: &CmosEnv) -> Seconds {
        let ion = self.pmos.on_current(tech, vdd, &env.pmos_env());
        Seconds(load.0 * vdd.0 / (2.0 * ion.0))
    }

    /// Average stage propagation delay `(tpHL + tpLH)/2`.
    #[must_use]
    pub fn stage_delay(&self, tech: &Technology, vdd: Volt, load: Farad, env: &CmosEnv) -> Seconds {
        let hl = self.tphl(tech, vdd, load, env);
        let lh = self.tplh(tech, vdd, load, env);
        Seconds(0.5 * (hl.0 + lh.0))
    }

    /// Dynamic energy for one full output cycle (one rise + one fall):
    /// `C·VDD²`.
    #[must_use]
    pub fn switching_energy(&self, vdd: Volt, load: Farad) -> Joule {
        Joule(load.0 * vdd.0 * vdd.0)
    }

    /// Static leakage current (average of the two off-state devices; at any
    /// moment exactly one device is off).
    #[must_use]
    pub fn leakage_current(&self, tech: &Technology, vdd: Volt, env: &CmosEnv) -> Ampere {
        let in_off = self.nmos.off_current(tech, vdd, &env.nmos_env());
        let ip_off = self.pmos.off_current(tech, vdd, &env.pmos_env());
        Ampere(0.5 * (in_off.0 + ip_off.0))
    }

    /// Static leakage power at `vdd`.
    #[must_use]
    pub fn leakage_power(&self, tech: &Technology, vdd: Volt, env: &CmosEnv) -> Watt {
        vdd * self.leakage_current(tech, vdd, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::n65()
    }

    fn inv() -> Inverter {
        Inverter::balanced(Micron(0.5), 2.0, &tech()).unwrap()
    }

    #[test]
    fn constructor_enforces_polarity_order() {
        let t = tech();
        let n = Mosfet::min_length(MosPolarity::Nmos, Micron(0.5), &t).unwrap();
        let p = Mosfet::min_length(MosPolarity::Pmos, Micron(1.0), &t).unwrap();
        assert!(Inverter::new(n, p).is_ok());
        assert!(Inverter::new(p, n).is_err());
    }

    #[test]
    fn balanced_rejects_bad_beta() {
        assert!(Inverter::balanced(Micron(0.5), 0.0, &tech()).is_err());
        assert!(Inverter::balanced(Micron(0.5), f64::NAN, &tech()).is_err());
    }

    #[test]
    fn stage_delay_is_picoseconds_scale() {
        let t = tech();
        let i = inv();
        let load = i.input_cap(&t) + i.output_cap(&t); // FO1
        let d = i.stage_delay(&t, Volt(1.0), load, &CmosEnv::nominal());
        assert!(
            d.0 > 1e-12 && d.0 < 100e-12,
            "FO1 delay should be ps-scale, got {d}"
        );
    }

    #[test]
    fn balanced_inverter_has_similar_edges() {
        let t = tech();
        let i = inv();
        let load = Farad(5e-15);
        let env = CmosEnv::nominal();
        let hl = i.tphl(&t, Volt(1.0), load, &env).0;
        let lh = i.tplh(&t, Volt(1.0), load, &env).0;
        let ratio = lh / hl;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "edges should be within 2x, ratio {ratio}"
        );
    }

    #[test]
    fn delay_increases_at_lower_vdd() {
        let t = tech();
        let i = inv();
        let load = Farad(5e-15);
        let env = CmosEnv::nominal();
        let fast = i.stage_delay(&t, Volt(1.0), load, &env).0;
        let slow = i.stage_delay(&t, Volt(0.6), load, &env).0;
        assert!(slow > fast);
    }

    #[test]
    fn nmos_vt_shift_only_slows_falling_edge() {
        let t = tech();
        let i = inv();
        let load = Farad(5e-15);
        let nominal = CmosEnv::nominal();
        let skewed = CmosEnv {
            d_vtn: Volt(0.05),
            ..nominal
        };
        let hl_nom = i.tphl(&t, Volt(1.0), load, &nominal).0;
        let hl_skew = i.tphl(&t, Volt(1.0), load, &skewed).0;
        let lh_nom = i.tplh(&t, Volt(1.0), load, &nominal).0;
        let lh_skew = i.tplh(&t, Volt(1.0), load, &skewed).0;
        assert!(hl_skew > hl_nom * 1.01);
        assert!((lh_skew - lh_nom).abs() / lh_nom < 1e-9);
    }

    #[test]
    fn switching_energy_quadratic_in_vdd() {
        let i = inv();
        let e1 = i.switching_energy(Volt(1.0), Farad(1e-15)).0;
        let e2 = i.switching_energy(Volt(0.5), Farad(1e-15)).0;
        assert!((e1 / e2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_positive_and_grows_with_temperature() {
        let t = tech();
        let i = inv();
        let cold = i.leakage_power(&t, Volt(1.0), &CmosEnv::at(Celsius(0.0))).0;
        let hot = i
            .leakage_power(&t, Volt(1.0), &CmosEnv::at(Celsius(100.0)))
            .0;
        assert!(cold > 0.0);
        assert!(hot > 3.0 * cold);
    }

    #[test]
    fn cmos_env_device_views() {
        let env = CmosEnv {
            temp: Celsius(85.0),
            d_vtn: Volt(0.01),
            d_vtp: Volt(-0.02),
            mu_n: 1.05,
            mu_p: 0.95,
        };
        assert_eq!(env.nmos_env().delta_vt, Volt(0.01));
        assert_eq!(env.pmos_env().delta_vt, Volt(-0.02));
        assert_eq!(env.nmos_env().mu_factor, 1.05);
        assert_eq!(env.pmos_env().temp, Celsius(85.0));
        assert_eq!(env.with_temp(Celsius(10.0)).temp, Celsius(10.0));
    }

    #[test]
    fn input_cap_scales_with_device_widths() {
        let t = tech();
        let small = Inverter::balanced(Micron(0.5), 2.0, &t).unwrap();
        let big = Inverter::balanced(Micron(1.0), 2.0, &t).unwrap();
        assert!((big.input_cap(&t).0 / small.input_cap(&t).0 - 2.0).abs() < 1e-9);
    }
}
