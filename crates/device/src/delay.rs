//! Exact-memoized inverter evaluation — the conversion hot path.
//!
//! A [`DelayCache`] hoists every temperature-independent quantity of one
//! [`Inverter`] out of [`Inverter::stage_delay`] / [`Inverter::leakage_current`]
//! (threshold/transconductance lookups, the `W/L` division, the
//! velocity-saturation critical voltage, the `2·n` subthreshold prefix), and
//! a [`ThermalPoint`] hoists every quantity that depends only on the
//! evaluation temperature (thermal voltage, the `T^-1.5` mobility power law —
//! the single most expensive transcendental of the device model, shared by
//! both devices and every ring at that temperature).
//!
//! **Bit-identity contract.** The cached path is *exact memoization*, not an
//! approximation: every floating-point operation that remains per-sample is
//! written in the same order and association as the uncached
//! [`Mosfet::drain_current`](crate::mosfet::Mosfet::drain_current) chain, and
//! every hoisted value is produced by the identical expression the uncached
//! path evaluates (e.g. the `2.0 * n` prefix of the long-channel current is a
//! left-associated prefix of the original product, so pre-multiplying it is
//! legal; folding `kp·W/L` would not be). Property tests in this module and
//! in `ptsim-core` assert agreement to the last bit across random
//! temperature/variation/supply points.

use crate::consts::{thermal_voltage, T_REF};
use crate::inverter::{CmosEnv, Inverter};
use crate::mosfet::softplus;
use crate::process::Technology;
use crate::units::{Ampere, Celsius, Farad, Seconds, Volt, Watt};

/// Lane width of the struct-of-arrays batch kernel: every lane-parallel
/// column is a fixed `[f64; LANES]` chunk, with a masked scalar tail for
/// batches that do not fill the last chunk. Eight lanes keep each column in
/// a single cache line and give the out-of-order core eight independent
/// dependency chains to overlap (the transcendental calls of the device
/// model are latency-bound when evaluated die-by-die).
pub const LANES: usize = 8;

/// Temperature-independent constants of one MOSFET.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DeviceConsts {
    /// Nominal threshold magnitude.
    vt0: f64,
    /// Threshold temperature coefficient.
    dvt_dt: f64,
    /// Process transconductance at the reference temperature.
    kp0: f64,
    /// Drawn aspect ratio `W/L`.
    aspect: f64,
    /// Velocity-saturation critical voltage scaled to this channel length.
    vcrit: f64,
}

impl DeviceConsts {
    fn new(m: &crate::mosfet::Mosfet, tech: &Technology) -> Self {
        DeviceConsts {
            vt0: m.polarity().vt0(tech).0,
            dvt_dt: m.polarity().dvt_dt(tech),
            kp0: m.polarity().kp(tech),
            aspect: m.aspect(),
            vcrit: tech.vcrit.0 * (m.length().0 / tech.l_min),
        }
    }
}

/// Per-temperature shared quantities (pure functions of the junction
/// temperature): computed once per evaluation point, reused by both devices
/// of an inverter and by every oscillator evaluated at that temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalPoint {
    /// Thermal voltage `kT/q`.
    vt_th: f64,
    /// Temperature offset from the reference point, `T − 25 °C`.
    dt: f64,
    /// Mobility power law `(T/T_ref)^-mu_temp_exp`.
    mu_pow: f64,
}

/// All temperature-independent quantities of one inverter, precomputed once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayCache {
    nmos: DeviceConsts,
    pmos: DeviceConsts,
    /// Subthreshold prefix `2·n` (left-associated prefix of the current chain).
    two_n: f64,
    /// Negated mobility temperature exponent (`powf` argument).
    neg_mu_exp: f64,
    /// Reference temperature in kelvin.
    t_ref_k: f64,
    input_cap: Farad,
    output_cap: Farad,
}

impl DelayCache {
    /// Hoists the temperature-independent constants of `inv` under `tech`.
    #[must_use]
    pub fn new(inv: &Inverter, tech: &Technology) -> Self {
        DelayCache {
            nmos: DeviceConsts::new(inv.nmos(), tech),
            pmos: DeviceConsts::new(inv.pmos(), tech),
            two_n: 2.0 * tech.subthreshold_n,
            neg_mu_exp: -tech.mu_temp_exp,
            t_ref_k: T_REF.to_kelvin().0,
            input_cap: inv.input_cap(tech),
            output_cap: inv.output_cap(tech),
        }
    }

    /// Precomputed [`Inverter::input_cap`].
    #[must_use]
    pub fn input_cap(&self) -> Farad {
        self.input_cap
    }

    /// Precomputed [`Inverter::output_cap`].
    #[must_use]
    pub fn output_cap(&self) -> Farad {
        self.output_cap
    }

    /// Evaluates the shared per-temperature quantities (one `powf`, reused
    /// by every subsequent evaluation at `temp`).
    #[must_use]
    pub fn thermal(&self, temp: Celsius) -> ThermalPoint {
        let tk = temp.to_kelvin();
        ThermalPoint {
            vt_th: thermal_voltage(tk).0,
            dt: temp.0 - T_REF.0,
            mu_pow: (tk.0 / self.t_ref_k).powf(self.neg_mu_exp),
        }
    }

    /// Drain current of one device with the shared drain-saturation factor
    /// already clamped. Same operation order as
    /// [`Mosfet::drain_current`](crate::mosfet::Mosfet::drain_current).
    fn current(
        c: &DeviceConsts,
        two_n: f64,
        th: &ThermalPoint,
        vgs: f64,
        delta_vt: f64,
        mu_factor: f64,
        drain: f64,
    ) -> f64 {
        let vt_eff = c.vt0 + c.dvt_dt * th.dt + delta_vt;
        let x = (vgs - vt_eff) / (two_n * th.vt_th);
        let g = softplus(x);
        let mu_scale = mu_factor * th.mu_pow;
        let kp = c.kp0 * mu_scale;
        let i_long = two_n * kp * c.aspect * th.vt_th * th.vt_th * g * g;
        let i_sat = i_long / (1.0 + (2.0 * th.vt_th * g) / c.vcrit);
        i_sat * drain
    }

    /// Drain-saturation factor at `vdd`, shared by both devices and by the
    /// on/off operating points (`vds = vdd` in all four). A pure function
    /// of `(th, vdd)`: solver loops that evaluate several model rows at one
    /// temperature and supply may compute it once and pass it to
    /// [`DelayCache::stage_delay_with_drain`] (bit-identical — the same two
    /// operands produce the same factor).
    #[inline]
    #[must_use]
    pub fn drain_factor(th: &ThermalPoint, vdd: Volt) -> f64 {
        let drain = 1.0 - (-vdd.0 / th.vt_th).exp();
        drain.max(0.0)
    }

    /// Bit-identical to [`Inverter::stage_delay`] at `env.temp == th`'s
    /// temperature.
    #[must_use]
    pub fn stage_delay(&self, th: &ThermalPoint, vdd: Volt, load: Farad, env: &CmosEnv) -> Seconds {
        self.stage_delay_with_drain(th, Self::drain_factor(th, vdd), vdd, load, env)
    }

    /// [`DelayCache::stage_delay`] with the drain-saturation factor already
    /// computed (`drain` must be `Self::drain_factor(th, vdd)`).
    #[must_use]
    pub fn stage_delay_with_drain(
        &self,
        th: &ThermalPoint,
        drain: f64,
        vdd: Volt,
        load: Farad,
        env: &CmosEnv,
    ) -> Seconds {
        let ion_n = self.nmos_current(th, vdd, env.d_vtn.0, env.mu_n, drain);
        let ion_p = self.pmos_current(th, vdd, env.d_vtp.0, env.mu_p, drain);
        self.stage_delay_from_currents(ion_n, ion_p, vdd, load)
    }

    /// NMOS on-current at gate/drain voltage `vdd` — a pure function of
    /// `(th, vdd, d_vtn, mu_n, drain)`, exactly the NMOS half of
    /// [`DelayCache::stage_delay_with_drain`]. Finite-difference Jacobian
    /// sweeps that perturb only PMOS unknowns may reuse a previously
    /// computed value (bit-identical: same operands, same expression).
    #[inline]
    #[must_use]
    pub fn nmos_current(
        &self,
        th: &ThermalPoint,
        vdd: Volt,
        d_vtn: f64,
        mu_n: f64,
        drain: f64,
    ) -> f64 {
        Self::current(&self.nmos, self.two_n, th, vdd.0, d_vtn, mu_n, drain)
    }

    /// PMOS on-current — the PMOS counterpart of
    /// [`DelayCache::nmos_current`].
    #[inline]
    #[must_use]
    pub fn pmos_current(
        &self,
        th: &ThermalPoint,
        vdd: Volt,
        d_vtp: f64,
        mu_p: f64,
        drain: f64,
    ) -> f64 {
        Self::current(&self.pmos, self.two_n, th, vdd.0, d_vtp, mu_p, drain)
    }

    /// Recombines per-device on-currents (from [`DelayCache::nmos_current`]
    /// / [`DelayCache::pmos_current`]) into the stage delay — the exact
    /// arithmetic tail of [`DelayCache::stage_delay_with_drain`].
    #[inline]
    #[must_use]
    pub fn stage_delay_from_currents(
        &self,
        ion_n: f64,
        ion_p: f64,
        vdd: Volt,
        load: Farad,
    ) -> Seconds {
        let hl = load.0 * vdd.0 / (2.0 * ion_n);
        let lh = load.0 * vdd.0 / (2.0 * ion_p);
        Seconds(0.5 * (hl + lh))
    }

    /// Lane-parallel [`DelayCache::thermal`]: one [`ThermalPoint`] per
    /// active lane, each bit-identical to the scalar evaluation at that
    /// lane's temperature. Inactive lanes keep a zero filler point — their
    /// downstream consumers are masked off the same way, so the filler is
    /// never read.
    #[must_use]
    pub fn thermal_lanes(
        &self,
        temps: &[f64; LANES],
        active: &[bool; LANES],
    ) -> [ThermalPoint; LANES] {
        let mut out = [ThermalPoint {
            vt_th: 0.0,
            dt: 0.0,
            mu_pow: 0.0,
        }; LANES];
        for l in 0..LANES {
            if active[l] {
                out[l] = self.thermal(Celsius(temps[l]));
            }
        }
        out
    }

    /// Lane-parallel [`DelayCache::drain_factor`] (per-lane thermal points,
    /// one shared supply). Inactive lanes are skipped; their `out` entries
    /// keep whatever the caller left there.
    #[inline]
    pub fn drain_factor_lanes(
        th: &[ThermalPoint; LANES],
        vdd: Volt,
        active: &[bool; LANES],
        out: &mut [f64; LANES],
    ) {
        for l in 0..LANES {
            if active[l] {
                out[l] = Self::drain_factor(&th[l], vdd);
            }
        }
    }

    /// Lane-parallel [`DelayCache::nmos_current`]: evaluates every active
    /// lane, each bit-identical to the scalar call with that lane's
    /// operands. Inactive lanes are skipped entirely (their
    /// transcendental-heavy device evaluation is the whole point of
    /// masking) and keep their previous `out` values.
    // Column-wise mirror of the scalar signature: every parameter is one
    // SoA column, so bundling them would just invent a struct for one call.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn nmos_current_lanes(
        &self,
        th: &[ThermalPoint; LANES],
        vdd: Volt,
        d_vtn: &[f64; LANES],
        mu_n: &[f64; LANES],
        drain: &[f64; LANES],
        active: &[bool; LANES],
        out: &mut [f64; LANES],
    ) {
        for l in 0..LANES {
            if active[l] {
                out[l] = Self::current(
                    &self.nmos, self.two_n, &th[l], vdd.0, d_vtn[l], mu_n[l], drain[l],
                );
            }
        }
    }

    /// Lane-parallel [`DelayCache::pmos_current`].
    // Column-wise mirror of the scalar signature: every parameter is one
    // SoA column, so bundling them would just invent a struct for one call.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn pmos_current_lanes(
        &self,
        th: &[ThermalPoint; LANES],
        vdd: Volt,
        d_vtp: &[f64; LANES],
        mu_p: &[f64; LANES],
        drain: &[f64; LANES],
        active: &[bool; LANES],
        out: &mut [f64; LANES],
    ) {
        for l in 0..LANES {
            if active[l] {
                out[l] = Self::current(
                    &self.pmos, self.two_n, &th[l], vdd.0, d_vtp[l], mu_p[l], drain[l],
                );
            }
        }
    }

    /// Bit-identical to [`Inverter::leakage_current`].
    #[must_use]
    pub fn leakage_current(&self, th: &ThermalPoint, vdd: Volt, env: &CmosEnv) -> Ampere {
        let drain = Self::drain_factor(th, vdd);
        let in_off = Self::current(
            &self.nmos,
            self.two_n,
            th,
            0.0,
            env.d_vtn.0,
            env.mu_n,
            drain,
        );
        let ip_off = Self::current(
            &self.pmos,
            self.two_n,
            th,
            0.0,
            env.d_vtp.0,
            env.mu_p,
            drain,
        );
        Ampere(0.5 * (in_off + ip_off))
    }

    /// Bit-identical to [`Inverter::leakage_power`].
    #[must_use]
    pub fn leakage_power(&self, th: &ThermalPoint, vdd: Volt, env: &CmosEnv) -> Watt {
        vdd * self.leakage_current(th, vdd, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Micron;
    use ptsim_rng::forall;

    fn fixture(wn: f64, beta: f64) -> (Technology, Inverter, DelayCache) {
        let tech = Technology::n65();
        let inv = Inverter::balanced(Micron(wn), beta, &tech).unwrap();
        let cache = DelayCache::new(&inv, &tech);
        (tech, inv, cache)
    }

    fn env(t: f64, dn: f64, dp: f64, mu_n: f64, mu_p: f64) -> CmosEnv {
        CmosEnv {
            temp: Celsius(t),
            d_vtn: Volt(dn),
            d_vtp: Volt(dp),
            mu_n,
            mu_p,
        }
    }

    forall! {
        #[test]
        fn cached_stage_delay_is_bit_identical(
            t in -55.0f64..150.0,
            dn in -0.06f64..0.06,
            dp in -0.06f64..0.06,
            mu in 0.8f64..1.25,
            vdd in 0.35f64..1.1,
        ) {
            let (tech, inv, cache) = fixture(0.2, 2.0);
            let e = env(t, dn, dp, mu, 2.05 - mu);
            let load = Farad(2.5e-15);
            let th = cache.thermal(e.temp);
            let cached = cache.stage_delay(&th, Volt(vdd), load, &e);
            let reference = inv.stage_delay(&tech, Volt(vdd), load, &e);
            assert_eq!(cached.0.to_bits(), reference.0.to_bits());
        }

        #[test]
        fn cached_leakage_is_bit_identical(
            t in -55.0f64..150.0,
            dn in -0.06f64..0.06,
            dp in -0.06f64..0.06,
            vdd in 0.35f64..1.1,
        ) {
            let (tech, inv, cache) = fixture(1.2, 1.7);
            let e = env(t, dn, dp, 1.1, 0.93);
            let th = cache.thermal(e.temp);
            let i_cached = cache.leakage_current(&th, Volt(vdd), &e);
            let i_ref = inv.leakage_current(&tech, Volt(vdd), &e);
            assert_eq!(i_cached.0.to_bits(), i_ref.0.to_bits());
            let p_cached = cache.leakage_power(&th, Volt(vdd), &e);
            let p_ref = inv.leakage_power(&tech, Volt(vdd), &e);
            assert_eq!(p_cached.0.to_bits(), p_ref.0.to_bits());
        }
    }

    #[test]
    fn caps_match_the_inverter() {
        let (tech, inv, cache) = fixture(0.15, 2.4);
        assert_eq!(cache.input_cap(), inv.input_cap(&tech));
        assert_eq!(cache.output_cap(), inv.output_cap(&tech));
    }

    forall! {
        #[test]
        fn lane_kernels_match_scalar_per_lane(
            t0 in -55.0f64..150.0,
            spread in 0.0f64..40.0,
            dn in -0.06f64..0.06,
            dp in -0.06f64..0.06,
            mu in 0.8f64..1.25,
            vdd in 0.35f64..1.1,
        ) {
            let (_, _, cache) = fixture(0.2, 2.0);
            let mut temps = [0.0; LANES];
            let mut dns = [0.0; LANES];
            let mut dps = [0.0; LANES];
            let mut mus = [0.0; LANES];
            for l in 0..LANES {
                let f = l as f64 / LANES as f64;
                temps[l] = t0 + spread * f;
                dns[l] = dn * (1.0 - f);
                dps[l] = dp * (1.0 - f);
                mus[l] = mu + 0.01 * f;
            }
            // One inactive lane: its outputs must stay at the filler values
            // while every active lane matches the scalar path bit for bit.
            let mut mask = [true; LANES];
            mask[5] = false;
            let th = cache.thermal_lanes(&temps, &mask);
            let mut drains = [0.0; LANES];
            DelayCache::drain_factor_lanes(&th, Volt(vdd), &mask, &mut drains);
            let mut ion_n = [0.0; LANES];
            let mut ion_p = [0.0; LANES];
            cache.nmos_current_lanes(&th, Volt(vdd), &dns, &mus, &drains, &mask, &mut ion_n);
            cache.pmos_current_lanes(&th, Volt(vdd), &dps, &mus, &drains, &mask, &mut ion_p);
            assert_eq!(th[5].vt_th, 0.0);
            assert_eq!(drains[5], 0.0);
            assert_eq!(ion_n[5], 0.0);
            assert_eq!(ion_p[5], 0.0);
            for l in 0..LANES {
                if l == 5 {
                    continue;
                }
                let th_s = cache.thermal(Celsius(temps[l]));
                assert_eq!(th[l], th_s);
                let d = DelayCache::drain_factor(&th_s, Volt(vdd));
                assert_eq!(drains[l].to_bits(), d.to_bits());
                assert_eq!(
                    ion_n[l].to_bits(),
                    cache.nmos_current(&th_s, Volt(vdd), dns[l], mus[l], d).to_bits(),
                );
                assert_eq!(
                    ion_p[l].to_bits(),
                    cache.pmos_current(&th_s, Volt(vdd), dps[l], mus[l], d).to_bits(),
                );
            }
        }
    }
}
