//! Technology description (65 nm-class) and global process corners.

use crate::units::Volt;
use std::fmt;

/// Global (die-to-die) process corner.
///
/// The first letter refers to the NMOS devices, the second to the PMOS
/// devices. "Fast" means lower threshold magnitude and higher mobility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Typical NMOS / typical PMOS (nominal).
    #[default]
    TT,
    /// Fast NMOS / fast PMOS.
    FF,
    /// Slow NMOS / slow PMOS.
    SS,
    /// Fast NMOS / slow PMOS.
    FS,
    /// Slow NMOS / fast PMOS.
    SF,
}

impl ProcessCorner {
    /// All five corners, in the conventional reporting order.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::TT,
        ProcessCorner::FF,
        ProcessCorner::SS,
        ProcessCorner::FS,
        ProcessCorner::SF,
    ];

    /// Signed threshold-magnitude shift of the NMOS devices at this corner.
    ///
    /// Negative means a *lower* threshold (faster device).
    #[must_use]
    pub fn vtn_shift(self, tech: &Technology) -> Volt {
        match self {
            ProcessCorner::TT => Volt::ZERO,
            ProcessCorner::FF | ProcessCorner::FS => -tech.corner_vt_shift,
            ProcessCorner::SS | ProcessCorner::SF => tech.corner_vt_shift,
        }
    }

    /// Signed threshold-magnitude shift of the PMOS devices at this corner.
    #[must_use]
    pub fn vtp_shift(self, tech: &Technology) -> Volt {
        match self {
            ProcessCorner::TT => Volt::ZERO,
            ProcessCorner::FF | ProcessCorner::SF => -tech.corner_vt_shift,
            ProcessCorner::SS | ProcessCorner::FS => tech.corner_vt_shift,
        }
    }

    /// Relative NMOS mobility multiplier at this corner (1.0 at TT).
    #[must_use]
    pub fn mu_n_factor(self, tech: &Technology) -> f64 {
        match self {
            ProcessCorner::TT => 1.0,
            ProcessCorner::FF | ProcessCorner::FS => 1.0 + tech.corner_mu_shift,
            ProcessCorner::SS | ProcessCorner::SF => 1.0 - tech.corner_mu_shift,
        }
    }

    /// Relative PMOS mobility multiplier at this corner (1.0 at TT).
    #[must_use]
    pub fn mu_p_factor(self, tech: &Technology) -> f64 {
        match self {
            ProcessCorner::TT => 1.0,
            ProcessCorner::FF | ProcessCorner::SF => 1.0 + tech.corner_mu_shift,
            ProcessCorner::SS | ProcessCorner::FS => 1.0 - tech.corner_mu_shift,
        }
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessCorner::TT => "TT",
            ProcessCorner::FF => "FF",
            ProcessCorner::SS => "SS",
            ProcessCorner::FS => "FS",
            ProcessCorner::SF => "SF",
        };
        f.write_str(s)
    }
}

/// Bulk-CMOS technology parameters.
///
/// The defaults model a generic 65 nm low-power process: they are *not* the
/// proprietary TSMC PDK values (unavailable), but published 65 nm-class
/// numbers that reproduce the first-order PVT behaviour the SOCC 2012 sensor
/// depends on (threshold tempco, mobility tempco, subthreshold slope).
///
/// ```
/// use ptsim_device::process::Technology;
/// let tech = Technology::n65();
/// assert!((tech.vtn0.0 - 0.35).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable node name, e.g. `"65nm-LP"`.
    pub name: String,
    /// Nominal supply voltage.
    pub vdd_nominal: Volt,
    /// Nominal NMOS threshold magnitude at `consts::T_REF`.
    pub vtn0: Volt,
    /// Nominal PMOS threshold magnitude at `consts::T_REF` (stored positive).
    pub vtp0: Volt,
    /// NMOS threshold temperature coefficient, V/K (typically negative).
    pub dvtn_dt: f64,
    /// PMOS threshold-magnitude temperature coefficient, V/K (negative).
    pub dvtp_dt: f64,
    /// NMOS process transconductance µn·Cox, A/V².
    pub kp_n: f64,
    /// PMOS process transconductance µp·Cox, A/V².
    pub kp_p: f64,
    /// Mobility temperature exponent: µ(T) = µ0 · (T/T0)^(-mu_temp_exp).
    pub mu_temp_exp: f64,
    /// Subthreshold slope factor `n` (S = n·kT/q·ln10).
    pub subthreshold_n: f64,
    /// Velocity-saturation critical voltage Ec·L for a minimum-length device.
    pub vcrit: Volt,
    /// Minimum drawn channel length, µm.
    pub l_min: f64,
    /// Gate capacitance per micron of width for minimum length, F/µm.
    pub cgate_per_um: f64,
    /// Drain junction capacitance per micron of width, F/µm.
    pub cjunction_per_um: f64,
    /// One-sigma die-to-die threshold spread (both polarities).
    pub sigma_vt_d2d: Volt,
    /// Pelgrom mismatch coefficient A_vt, V·µm (σΔVt = A_vt/√(WL)).
    pub avt_pelgrom: f64,
    /// Corner threshold-magnitude offset used by [`ProcessCorner`].
    pub corner_vt_shift: Volt,
    /// Corner relative mobility offset used by [`ProcessCorner`].
    pub corner_mu_shift: f64,
}

impl Technology {
    /// Generic 65 nm low-power technology (the node of the SOCC 2012 chip).
    #[must_use]
    pub fn n65() -> Self {
        Technology {
            name: "65nm-LP".to_owned(),
            vdd_nominal: Volt(1.0),
            vtn0: Volt(0.35),
            vtp0: Volt(0.33),
            dvtn_dt: -1.2e-3,
            dvtp_dt: -1.0e-3,
            kp_n: 3.0e-4,
            kp_p: 1.2e-4,
            mu_temp_exp: 1.5,
            subthreshold_n: 1.4,
            vcrit: Volt(0.40),
            l_min: 0.06,
            cgate_per_um: 1.0e-15,
            cjunction_per_um: 0.8e-15,
            sigma_vt_d2d: Volt(0.020),
            avt_pelgrom: 3.5e-3,
            corner_vt_shift: Volt(0.040),
            corner_mu_shift: 0.06,
        }
    }

    /// Generic 65 nm general-purpose flavour: lower Vt, faster, leakier.
    ///
    /// Used by ablation benches to show the sensor generalizes across
    /// threshold flavours.
    #[must_use]
    pub fn n65_gp() -> Self {
        Technology {
            name: "65nm-GP".to_owned(),
            vtn0: Volt(0.28),
            vtp0: Volt(0.26),
            vdd_nominal: Volt(1.0),
            ..Technology::n65()
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::n65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tt_corner_has_no_shift() {
        let tech = Technology::n65();
        assert_eq!(ProcessCorner::TT.vtn_shift(&tech), Volt::ZERO);
        assert_eq!(ProcessCorner::TT.vtp_shift(&tech), Volt::ZERO);
        assert_eq!(ProcessCorner::TT.mu_n_factor(&tech), 1.0);
        assert_eq!(ProcessCorner::TT.mu_p_factor(&tech), 1.0);
    }

    #[test]
    fn ff_is_faster_both() {
        let tech = Technology::n65();
        assert!(ProcessCorner::FF.vtn_shift(&tech).0 < 0.0);
        assert!(ProcessCorner::FF.vtp_shift(&tech).0 < 0.0);
        assert!(ProcessCorner::FF.mu_n_factor(&tech) > 1.0);
    }

    #[test]
    fn skewed_corners_are_opposed() {
        let tech = Technology::n65();
        assert!(ProcessCorner::FS.vtn_shift(&tech).0 < 0.0);
        assert!(ProcessCorner::FS.vtp_shift(&tech).0 > 0.0);
        assert!(ProcessCorner::SF.vtn_shift(&tech).0 > 0.0);
        assert!(ProcessCorner::SF.vtp_shift(&tech).0 < 0.0);
    }

    #[test]
    fn all_lists_five_unique_corners() {
        let mut set = std::collections::HashSet::new();
        for c in ProcessCorner::ALL {
            set.insert(format!("{c}"));
        }
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProcessCorner::FS.to_string(), "FS");
    }

    #[test]
    fn default_technology_is_lp_65() {
        let t = Technology::default();
        assert_eq!(t.name, "65nm-LP");
        assert!(t.vtn0.0 > t.vtp0.0);
        assert!(t.kp_n > t.kp_p, "NMOS mobility exceeds PMOS");
    }

    #[test]
    fn gp_flavour_has_lower_thresholds() {
        let lp = Technology::n65();
        let gp = Technology::n65_gp();
        assert!(gp.vtn0.0 < lp.vtn0.0);
        assert!(gp.vtp0.0 < lp.vtp0.0);
    }
}
