//! Fundamental physical constants and technology reference points.

use crate::units::{Celsius, Kelvin, Volt};

/// Boltzmann constant, J/K (CODATA 2018 exact value).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C (CODATA 2018 exact value).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Reference temperature at which nominal device parameters are specified.
pub const T_REF: Celsius = Celsius(25.0);

/// Thermal voltage `kT/q` at absolute temperature `t`.
///
/// ```
/// use ptsim_device::consts::thermal_voltage;
/// use ptsim_device::units::Kelvin;
/// let vt = thermal_voltage(Kelvin(300.0));
/// assert!((vt.0 - 0.02585).abs() < 1e-4);
/// ```
#[must_use]
pub fn thermal_voltage(t: Kelvin) -> Volt {
    Volt(BOLTZMANN * t.0 / ELEMENTARY_CHARGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = thermal_voltage(Celsius(26.85).to_kelvin());
        assert!((vt.0 - 0.025852).abs() < 1e-5, "vt = {vt}");
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        let v1 = thermal_voltage(Kelvin(300.0));
        let v2 = thermal_voltage(Kelvin(600.0));
        assert!((v2.0 / v1.0 - 2.0).abs() < 1e-12);
    }
}
