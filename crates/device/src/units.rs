//! Strongly-typed physical units used throughout the simulator.
//!
//! Every quantity that crosses a public API boundary is wrapped in a newtype
//! so that, e.g., a temperature can never be passed where a voltage is
//! expected (C-NEWTYPE). All wrappers are thin `f64` newtypes with `Copy`
//! semantics and arithmetic where it is physically meaningful.
//!
//! # Examples
//!
//! ```
//! use ptsim_device::units::{Celsius, Kelvin, Volt};
//!
//! let t = Celsius(25.0);
//! let k: Kelvin = t.to_kelvin();
//! assert!((k.0 - 298.15).abs() < 1e-9);
//!
//! let vdd = Volt(1.0);
//! assert_eq!((vdd + Volt(0.2)).0, 1.2);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the common boilerplate for an `f64` unit newtype.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// True if the inner value is finite (neither NaN nor infinite).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volt,
    "V"
);
unit!(
    /// Electric current in amperes.
    Ampere,
    "A"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joule,
    "J"
);
unit!(
    /// Power in watts.
    Watt,
    "W"
);
unit!(
    /// Capacitance in farads.
    Farad,
    "F"
);
unit!(
    /// Resistance in ohms.
    Ohm,
    "Ω"
);
unit!(
    /// Length in micrometres (the natural layout unit of the simulator).
    Micron,
    "µm"
);
unit!(
    /// Thermal conductance in watts per kelvin.
    WattPerKelvin,
    "W/K"
);
unit!(
    /// Heat capacity in joules per kelvin.
    JoulePerKelvin,
    "J/K"
);
unit!(
    /// Mechanical stress in pascals.
    Pascal,
    "Pa"
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);
unit!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);

impl Celsius {
    /// Offset between the Celsius and Kelvin scales.
    pub const KELVIN_OFFSET: f64 = 273.15;

    /// Converts to an absolute temperature.
    ///
    /// ```
    /// use ptsim_device::units::Celsius;
    /// assert!((Celsius(0.0).to_kelvin().0 - 273.15).abs() < 1e-12);
    /// ```
    #[inline]
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + Self::KELVIN_OFFSET)
    }
}

impl Kelvin {
    /// Converts to the Celsius scale.
    ///
    /// ```
    /// use ptsim_device::units::Kelvin;
    /// assert!((Kelvin(300.0).to_celsius().0 - 26.85).abs() < 1e-12);
    /// ```
    #[inline]
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - Celsius::KELVIN_OFFSET)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

// --- Cross-unit physics relations -----------------------------------------

/// `P = V * I`
impl Mul<Ampere> for Volt {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

/// `P = I * V`
impl Mul<Volt> for Ampere {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Volt) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

/// `E = P * t`
impl Mul<Seconds> for Watt {
    type Output = Joule;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

/// `E = t * P`
impl Mul<Watt> for Seconds {
    type Output = Joule;
    #[inline]
    fn mul(self, rhs: Watt) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

/// `Q = C * V` has no dedicated coulomb type; `C * V * V` is energy-like, so
/// we provide `C * V -> CoulombVolt` indirectly via explicit f64 math where
/// needed. What we *do* provide is `V = I * R`.
impl Mul<Ohm> for Ampere {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ohm) -> Volt {
        Volt(self.0 * rhs.0)
    }
}

/// `V = R * I`
impl Mul<Ampere> for Ohm {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Volt {
        Volt(self.0 * rhs.0)
    }
}

/// `I = V / R`
impl Div<Ohm> for Volt {
    type Output = Ampere;
    #[inline]
    fn div(self, rhs: Ohm) -> Ampere {
        Ampere(self.0 / rhs.0)
    }
}

/// `f = 1 / t`
impl Seconds {
    /// Frequency whose period is `self`.
    ///
    /// # Panics
    ///
    /// Does not panic; an input of zero produces `Hertz(inf)`.
    #[inline]
    #[must_use]
    pub fn to_frequency(self) -> Hertz {
        Hertz(1.0 / self.0)
    }
}

impl Hertz {
    /// Period of this frequency.
    #[inline]
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }

    /// Value expressed in megahertz (for display/reporting).
    #[must_use]
    pub fn megahertz(self) -> f64 {
        self.0 / 1e6
    }
}

impl Joule {
    /// Value expressed in picojoules (for display/reporting).
    #[must_use]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Builds an energy from picojoules.
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Joule {
        Joule(pj * 1e-12)
    }
}

impl Volt {
    /// Value expressed in millivolts (for display/reporting).
    #[must_use]
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }

    /// Builds a voltage from millivolts.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Volt {
        Volt(mv * 1e-3)
    }
}

impl Watt {
    /// Value expressed in microwatts (for display/reporting).
    #[must_use]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius(25.0);
        let back = c.to_kelvin().to_celsius();
        assert!((back.0 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn kelvin_from_celsius_via_from_trait() {
        let k: Kelvin = Celsius(100.0).into();
        assert!((k.0 - 373.15).abs() < 1e-12);
        let c: Celsius = Kelvin(273.15).into();
        assert!(c.0.abs() < 1e-12);
    }

    #[test]
    fn arithmetic_add_sub_neg() {
        let v = Volt(1.0) + Volt(0.5) - Volt(0.25);
        assert!((v.0 - 1.25).abs() < 1e-12);
        assert_eq!((-v).0, -1.25);
    }

    #[test]
    fn scalar_mul_div() {
        let v = Volt(2.0) * 3.0;
        assert_eq!(v.0, 6.0);
        let w = 0.5 * v;
        assert_eq!(w.0, 3.0);
        assert_eq!((w / 3.0).0, 1.0);
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let ratio: f64 = Hertz(100.0) / Hertz(50.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn power_energy_relations() {
        let p: Watt = Volt(1.0) * Ampere(0.001);
        assert!((p.0 - 1e-3).abs() < 1e-15);
        let e: Joule = p * Seconds(2.0);
        assert!((e.0 - 2e-3).abs() < 1e-15);
        let e2: Joule = Seconds(2.0) * p;
        assert_eq!(e.0, e2.0);
    }

    #[test]
    fn ohms_law() {
        let v: Volt = Ampere(0.002) * Ohm(500.0);
        assert!((v.0 - 1.0).abs() < 1e-12);
        let i: Ampere = Volt(1.0) / Ohm(500.0);
        assert!((i.0 - 0.002).abs() < 1e-15);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Hertz(1e9);
        assert!((f.period().0 - 1e-9).abs() < 1e-21);
        assert!((f.period().to_frequency().0 - 1e9).abs() < 1e-3);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Volt(1.2345)), "1.23 V");
        assert_eq!(format!("{:.1}", Celsius(25.04)), "25.0 °C");
    }

    #[test]
    fn unit_helpers() {
        assert!((Joule::from_picojoules(367.5).picojoules() - 367.5).abs() < 1e-9);
        assert!((Volt::from_millivolts(350.0).0 - 0.35).abs() < 1e-12);
        assert!((Hertz(2.5e8).megahertz() - 250.0).abs() < 1e-9);
        assert!((Watt(2.3e-6).microwatts() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn min_max_clamp_abs() {
        assert_eq!(Volt(-1.0).abs().0, 1.0);
        assert_eq!(Volt(1.0).max(Volt(2.0)).0, 2.0);
        assert_eq!(Volt(1.0).min(Volt(2.0)).0, 1.0);
        assert_eq!(Volt(3.0).clamp(Volt(0.0), Volt(2.0)).0, 2.0);
    }

    #[test]
    fn sum_iterator() {
        let total: Volt = vec![Volt(0.1), Volt(0.2), Volt(0.3)].into_iter().sum();
        assert!((total.0 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn finite_check() {
        assert!(Volt(1.0).is_finite());
        assert!(!Volt(f64::NAN).is_finite());
        assert!(!Volt(f64::INFINITY).is_finite());
    }
}
