//! Transistor aging (BTI / hot-carrier) threshold drift.
//!
//! The sensor's headline ability — tracking mV-scale threshold drift *after*
//! deployment — matters because thresholds move over the product lifetime:
//!
//! * **BTI** (negative-bias temperature instability on PMOS, its positive
//!   counterpart on NMOS): a power-law-in-time, Arrhenius-in-temperature,
//!   exponential-in-overdrive threshold increase. Partially recoverable,
//!   modelled here as a duty-cycle factor.
//! * **HCI** (hot-carrier injection): switching-activity-driven power-law
//!   drift, significant on NMOS at high supply.
//!
//! The model is the standard reaction–diffusion-flavoured compact form used
//! in reliability sign-off:
//!
//! `ΔVt(t) = A · duty^n · exp(−Ea/kT) · exp(γ·Vov) · t^n`

use crate::consts::{BOLTZMANN, ELEMENTARY_CHARGE};
use crate::units::{Celsius, Seconds, Volt};

/// Stress conditions a device ages under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressCondition {
    /// Junction temperature during stress.
    pub temp: Celsius,
    /// Gate overdrive magnitude during the ON state.
    pub overdrive: Volt,
    /// Fraction of time the device is under stress (0..=1).
    pub duty: f64,
    /// Switching activity factor for the HCI term (0..=1).
    pub activity: f64,
}

impl StressCondition {
    /// Typical always-on logic at nominal conditions.
    #[must_use]
    pub fn nominal_logic() -> Self {
        StressCondition {
            temp: Celsius(70.0),
            overdrive: Volt(0.65),
            duty: 0.5,
            activity: 0.1,
        }
    }

    fn clamped(self) -> Self {
        StressCondition {
            duty: self.duty.clamp(0.0, 1.0),
            activity: self.activity.clamp(0.0, 1.0),
            ..self
        }
    }
}

impl Default for StressCondition {
    fn default() -> Self {
        StressCondition::nominal_logic()
    }
}

/// Compact BTI + HCI aging model for one device polarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// BTI prefactor, volts at 1 s / unity acceleration.
    pub bti_prefactor: f64,
    /// BTI time exponent (classically ≈ 1/6 for R–D, 0.1–0.25 measured).
    pub bti_time_exp: f64,
    /// BTI activation energy, eV.
    pub bti_ea_ev: f64,
    /// BTI overdrive acceleration, 1/V.
    pub bti_gamma: f64,
    /// HCI prefactor, volts at 1 s of continuous switching.
    pub hci_prefactor: f64,
    /// HCI time exponent (≈ 0.45).
    pub hci_time_exp: f64,
}

impl AgingModel {
    /// 65 nm-class NBTI model (PMOS) — the dominant mechanism.
    #[must_use]
    pub fn nbti_65nm() -> Self {
        AgingModel {
            bti_prefactor: 3.0e-3,
            bti_time_exp: 0.17,
            bti_ea_ev: 0.06,
            bti_gamma: 2.2,
            hci_prefactor: 2.0e-5,
            hci_time_exp: 0.45,
        }
    }

    /// 65 nm-class PBTI + HCI model (NMOS) — weaker BTI, stronger HCI.
    #[must_use]
    pub fn pbti_65nm() -> Self {
        AgingModel {
            bti_prefactor: 1.2e-3,
            bti_time_exp: 0.17,
            bti_ea_ev: 0.06,
            bti_gamma: 2.0,
            hci_prefactor: 6.0e-5,
            hci_time_exp: 0.45,
        }
    }

    /// Threshold-magnitude increase after `age` of stress under `cond`.
    ///
    /// Always non-negative; zero at `age == 0`.
    #[must_use]
    pub fn delta_vt(&self, cond: &StressCondition, age: Seconds) -> Volt {
        let cond = cond.clamped();
        if age.0 <= 0.0 {
            return Volt::ZERO;
        }
        let tk = cond.temp.to_kelvin().0;
        let arrhenius = (-self.bti_ea_ev * ELEMENTARY_CHARGE / (BOLTZMANN * tk)).exp();
        let field = (self.bti_gamma * cond.overdrive.0).exp();
        let bti = self.bti_prefactor
            * cond.duty.powf(self.bti_time_exp)
            * arrhenius
            * field
            * age.0.powf(self.bti_time_exp);
        let hci = self.hci_prefactor
            * cond.activity
            * age.0.powf(self.hci_time_exp)
            * (cond.overdrive.0 / 0.65).max(0.0).powi(3);
        Volt(bti + hci)
    }

    /// Inverse query: the stress time at which drift reaches `target`
    /// (bisection on the monotone model; `None` if unreachable within
    /// `horizon`).
    #[must_use]
    pub fn time_to_drift(
        &self,
        cond: &StressCondition,
        target: Volt,
        horizon: Seconds,
    ) -> Option<Seconds> {
        if target.0 <= 0.0 {
            return Some(Seconds(0.0));
        }
        if self.delta_vt(cond, horizon).0 < target.0 {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, horizon.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.delta_vt(cond, Seconds(mid)).0 < target.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Seconds(hi))
    }
}

/// Ten years of continuous operation — the conventional lifetime target.
pub const TEN_YEARS: Seconds = Seconds(10.0 * 365.25 * 24.0 * 3600.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_age_no_drift() {
        let m = AgingModel::nbti_65nm();
        assert_eq!(
            m.delta_vt(&StressCondition::nominal_logic(), Seconds(0.0)),
            Volt::ZERO
        );
    }

    #[test]
    fn drift_monotone_in_time() {
        let m = AgingModel::nbti_65nm();
        let c = StressCondition::nominal_logic();
        let mut prev = 0.0;
        for years in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let d = m.delta_vt(&c, Seconds(years * 3.156e7)).0;
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn ten_year_nbti_drift_tens_of_millivolts() {
        // Canonical sign-off number: 20-50 mV of PMOS drift at EOL.
        let m = AgingModel::nbti_65nm();
        let d = m.delta_vt(&StressCondition::nominal_logic(), TEN_YEARS);
        assert!(
            d.millivolts() > 10.0 && d.millivolts() < 80.0,
            "10-year NBTI drift {d} out of published range"
        );
    }

    #[test]
    fn pmos_bti_exceeds_nmos_bti() {
        let c = StressCondition {
            activity: 0.0, // isolate BTI
            ..StressCondition::nominal_logic()
        };
        let p = AgingModel::nbti_65nm().delta_vt(&c, TEN_YEARS).0;
        let n = AgingModel::pbti_65nm().delta_vt(&c, TEN_YEARS).0;
        assert!(p > 1.5 * n);
    }

    #[test]
    fn hotter_ages_faster() {
        let m = AgingModel::nbti_65nm();
        let cool = StressCondition {
            temp: Celsius(40.0),
            ..StressCondition::nominal_logic()
        };
        let hot = StressCondition {
            temp: Celsius(110.0),
            ..StressCondition::nominal_logic()
        };
        assert!(m.delta_vt(&hot, TEN_YEARS).0 > m.delta_vt(&cool, TEN_YEARS).0);
    }

    #[test]
    fn higher_overdrive_ages_faster() {
        let m = AgingModel::nbti_65nm();
        let lo = StressCondition {
            overdrive: Volt(0.45),
            ..StressCondition::nominal_logic()
        };
        let hi = StressCondition {
            overdrive: Volt(0.75),
            ..StressCondition::nominal_logic()
        };
        assert!(m.delta_vt(&hi, TEN_YEARS).0 > 1.5 * m.delta_vt(&lo, TEN_YEARS).0);
    }

    #[test]
    fn duty_cycle_reduces_drift() {
        let m = AgingModel::nbti_65nm();
        let always = StressCondition {
            duty: 1.0,
            ..StressCondition::nominal_logic()
        };
        let half = StressCondition {
            duty: 0.5,
            ..StressCondition::nominal_logic()
        };
        assert!(m.delta_vt(&half, TEN_YEARS).0 < m.delta_vt(&always, TEN_YEARS).0);
    }

    #[test]
    fn hci_scales_with_activity() {
        let m = AgingModel::pbti_65nm();
        let idle = StressCondition {
            activity: 0.0,
            ..StressCondition::nominal_logic()
        };
        let busy = StressCondition {
            activity: 1.0,
            ..StressCondition::nominal_logic()
        };
        assert!(m.delta_vt(&busy, TEN_YEARS).0 > m.delta_vt(&idle, TEN_YEARS).0);
    }

    #[test]
    fn time_to_drift_inverts_delta_vt() {
        let m = AgingModel::nbti_65nm();
        let c = StressCondition::nominal_logic();
        let target = Volt(0.010);
        let t = m.time_to_drift(&c, target, TEN_YEARS).expect("reachable");
        let back = m.delta_vt(&c, t);
        assert!((back.0 - target.0).abs() < 1e-5, "round trip {back}");
        assert!(m.time_to_drift(&c, Volt(10.0), TEN_YEARS).is_none());
        assert_eq!(
            m.time_to_drift(&c, Volt::ZERO, TEN_YEARS),
            Some(Seconds(0.0))
        );
    }

    #[test]
    fn stress_condition_clamps() {
        let m = AgingModel::nbti_65nm();
        let weird = StressCondition {
            duty: 7.0,
            activity: -3.0,
            ..StressCondition::nominal_logic()
        };
        let sane = StressCondition {
            duty: 1.0,
            activity: 0.0,
            ..StressCondition::nominal_logic()
        };
        assert_eq!(
            m.delta_vt(&weird, TEN_YEARS).0,
            m.delta_vt(&sane, TEN_YEARS).0
        );
    }
}
