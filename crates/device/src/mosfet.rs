//! MOSFET compact model.
//!
//! The model is an EKV-style single-expression formulation that is valid
//! continuously from weak inversion (subthreshold) through strong inversion,
//! with a first-order velocity-saturation correction. This captures exactly
//! the effects the SOCC 2012 sensor exploits:
//!
//! * **strong inversion** — current ∝ µ(T)·(Vgs−Vt(T))^≈1.3…2, where the
//!   decreasing mobility and decreasing threshold fight each other over
//!   temperature (weak net tempco → process-sensitive ring oscillators);
//! * **weak inversion** — current ∝ exp((Vgs−Vt)/(n·kT/q)), i.e. strongly and
//!   monotonically temperature-dependent (→ temperature-sensitive ring
//!   oscillators).
//!
//! All voltages are handled as *magnitudes*: a PMOS device with
//! `Vgs = −1.0 V` is queried with `vgs = Volt(1.0)`.

use crate::consts::{thermal_voltage, T_REF};
use crate::error::DeviceError;
use crate::process::Technology;
use crate::units::{Ampere, Celsius, Farad, Micron, Volt};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosPolarity {
    /// Nominal threshold magnitude for this polarity in `tech`.
    #[must_use]
    pub fn vt0(self, tech: &Technology) -> Volt {
        match self {
            MosPolarity::Nmos => tech.vtn0,
            MosPolarity::Pmos => tech.vtp0,
        }
    }

    /// Threshold-magnitude temperature coefficient (V/K) for this polarity.
    #[must_use]
    pub fn dvt_dt(self, tech: &Technology) -> f64 {
        match self {
            MosPolarity::Nmos => tech.dvtn_dt,
            MosPolarity::Pmos => tech.dvtp_dt,
        }
    }

    /// Process transconductance µ·Cox (A/V²) for this polarity.
    #[must_use]
    pub fn kp(self, tech: &Technology) -> f64 {
        match self {
            MosPolarity::Nmos => tech.kp_n,
            MosPolarity::Pmos => tech.kp_p,
        }
    }
}

/// Per-device environmental/variation state at evaluation time.
///
/// `delta_vt` is the signed shift of the threshold *magnitude* (a positive
/// value always makes the device slower, for either polarity); it aggregates
/// die-to-die variation, local mismatch, and TSV-stress-induced shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEnv {
    /// Junction temperature.
    pub temp: Celsius,
    /// Signed threshold-magnitude shift.
    pub delta_vt: Volt,
    /// Relative mobility multiplier (1.0 = nominal).
    pub mu_factor: f64,
}

impl DeviceEnv {
    /// Nominal environment: 25 °C, no variation.
    #[must_use]
    pub fn nominal() -> Self {
        DeviceEnv {
            temp: T_REF,
            delta_vt: Volt::ZERO,
            mu_factor: 1.0,
        }
    }

    /// Nominal process at an arbitrary temperature.
    #[must_use]
    pub fn at(temp: Celsius) -> Self {
        DeviceEnv {
            temp,
            ..DeviceEnv::nominal()
        }
    }
}

impl Default for DeviceEnv {
    fn default() -> Self {
        DeviceEnv::nominal()
    }
}

/// A sized MOSFET instance.
///
/// ```
/// use ptsim_device::mosfet::{DeviceEnv, MosPolarity, Mosfet};
/// use ptsim_device::process::Technology;
/// use ptsim_device::units::{Micron, Volt};
///
/// let tech = Technology::n65();
/// let m = Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(0.06))?;
/// let ion = m.on_current(&tech, Volt(1.0), &DeviceEnv::nominal());
/// assert!(ion.0 > 1e-4 && ion.0 < 2e-3, "65nm-class on-current, got {ion}");
/// # Ok::<(), ptsim_device::error::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    polarity: MosPolarity,
    w: Micron,
    l: Micron,
}

/// Numerically-stable softplus: `ln(1 + e^x)`.
pub(crate) fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

impl Mosfet {
    /// Creates a device with the given drawn width and length.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidGeometry`] if either dimension is not a
    /// strictly positive finite number.
    pub fn new(polarity: MosPolarity, w: Micron, l: Micron) -> Result<Self, DeviceError> {
        if !(w.0.is_finite() && w.0 > 0.0 && l.0.is_finite() && l.0 > 0.0) {
            return Err(DeviceError::InvalidGeometry { w, l });
        }
        Ok(Mosfet { polarity, w, l })
    }

    /// Minimum-length device of width `w`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mosfet::new`].
    pub fn min_length(
        polarity: MosPolarity,
        w: Micron,
        tech: &Technology,
    ) -> Result<Self, DeviceError> {
        Mosfet::new(polarity, w, Micron(tech.l_min))
    }

    /// Channel polarity.
    #[must_use]
    pub fn polarity(&self) -> MosPolarity {
        self.polarity
    }

    /// Drawn width.
    #[must_use]
    pub fn width(&self) -> Micron {
        self.w
    }

    /// Drawn length.
    #[must_use]
    pub fn length(&self) -> Micron {
        self.l
    }

    /// Aspect ratio W/L.
    #[must_use]
    pub fn aspect(&self) -> f64 {
        self.w.0 / self.l.0
    }

    /// Gate area W·L in µm².
    #[must_use]
    pub fn gate_area(&self) -> f64 {
        self.w.0 * self.l.0
    }

    /// Effective threshold magnitude under `env`.
    #[must_use]
    pub fn vt_eff(&self, tech: &Technology, env: &DeviceEnv) -> Volt {
        let dt = env.temp.0 - T_REF.0;
        Volt(self.polarity.vt0(tech).0 + self.polarity.dvt_dt(tech) * dt + env.delta_vt.0)
    }

    /// Drain current for gate-source and drain-source voltage *magnitudes*.
    ///
    /// Continuous across weak/strong inversion; includes mobility temperature
    /// dependence µ∝T^−1.5, velocity saturation, and the drain-saturation
    /// factor `(1 − e^(−Vds/vT))` for small `Vds`.
    #[must_use]
    pub fn drain_current(
        &self,
        tech: &Technology,
        vgs: Volt,
        vds: Volt,
        env: &DeviceEnv,
    ) -> Ampere {
        let tk = env.temp.to_kelvin();
        let vt_th = thermal_voltage(tk);
        let n = tech.subthreshold_n;
        let vt_eff = self.vt_eff(tech, env);

        // Normalized inversion charge.
        let x = (vgs.0 - vt_eff.0) / (2.0 * n * vt_th.0);
        let g = softplus(x);

        // Mobility with temperature dependence and variation.
        let mu_scale = env.mu_factor * (tk.0 / T_REF.to_kelvin().0).powf(-tech.mu_temp_exp);
        let kp = self.polarity.kp(tech) * mu_scale;

        let i_long = 2.0 * n * kp * self.aspect() * vt_th.0 * vt_th.0 * g * g;

        // Velocity saturation: critical voltage scales with channel length.
        let vcrit = tech.vcrit.0 * (self.l.0 / tech.l_min);
        let i_sat = i_long / (1.0 + (2.0 * vt_th.0 * g) / vcrit);

        // Drain saturation factor (≈1 for Vds ≫ vT).
        let drain = 1.0 - (-vds.0 / vt_th.0).exp();

        Ampere(i_sat * drain.max(0.0))
    }

    /// On-current: `|Id|` at `Vgs = Vds = vdd`.
    #[must_use]
    pub fn on_current(&self, tech: &Technology, vdd: Volt, env: &DeviceEnv) -> Ampere {
        self.drain_current(tech, vdd, vdd, env)
    }

    /// Off-state (subthreshold leakage) current: `|Id|` at `Vgs = 0`,
    /// `Vds = vdd`.
    #[must_use]
    pub fn off_current(&self, tech: &Technology, vdd: Volt, env: &DeviceEnv) -> Ampere {
        self.drain_current(tech, Volt::ZERO, vdd, env)
    }

    /// Total gate capacitance (oxide, scaled by drawn area).
    #[must_use]
    pub fn gate_cap(&self, tech: &Technology) -> Farad {
        Farad(tech.cgate_per_um * self.w.0 * (self.l.0 / tech.l_min))
    }

    /// Drain junction capacitance (scales with width).
    #[must_use]
    pub fn junction_cap(&self, tech: &Technology) -> Farad {
        Farad(tech.cjunction_per_um * self.w.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(0.06)).unwrap()
    }

    fn pmos() -> Mosfet {
        Mosfet::new(MosPolarity::Pmos, Micron(2.0), Micron(0.06)).unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Mosfet::new(MosPolarity::Nmos, Micron(0.0), Micron(0.06)).is_err());
        assert!(Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(-1.0)).is_err());
        assert!(Mosfet::new(MosPolarity::Nmos, Micron(f64::NAN), Micron(0.06)).is_err());
    }

    #[test]
    fn on_current_in_65nm_ballpark() {
        let tech = Technology::n65();
        let ion = nmos().on_current(&tech, Volt(1.0), &DeviceEnv::nominal());
        // 65nm-class NMOS: a few hundred µA per µm at VDD=1.0.
        assert!(
            ion.0 > 1.0e-4 && ion.0 < 1.5e-3,
            "unexpected on-current {ion}"
        );
    }

    #[test]
    fn pmos_weaker_than_nmos_per_width() {
        let tech = Technology::n65();
        let env = DeviceEnv::nominal();
        let in_per_um = nmos().on_current(&tech, Volt(1.0), &env).0 / nmos().width().0;
        let ip_per_um = pmos().on_current(&tech, Volt(1.0), &env).0 / pmos().width().0;
        assert!(in_per_um > 1.5 * ip_per_um);
    }

    #[test]
    fn current_monotonic_in_vgs() {
        let tech = Technology::n65();
        let env = DeviceEnv::nominal();
        let m = nmos();
        let mut prev = 0.0;
        for step in 0..=20 {
            let vgs = Volt(step as f64 * 0.05);
            let i = m.drain_current(&tech, vgs, Volt(1.0), &env).0;
            assert!(i >= prev, "current must grow with vgs");
            prev = i;
        }
    }

    #[test]
    fn subthreshold_slope_close_to_theory() {
        // One decade of current per n·vT·ln(10) of gate drive in deep
        // subthreshold.
        let tech = Technology::n65();
        let env = DeviceEnv::nominal();
        let m = nmos();
        let i1 = m.drain_current(&tech, Volt(0.10), Volt(1.0), &env).0;
        let i2 = m.drain_current(&tech, Volt(0.16), Volt(1.0), &env).0;
        let decades = (i2 / i1).log10();
        let s_mv_per_dec = 60.0 / decades; // 60 mV step / decades observed
        let expected = tech.subthreshold_n * 25.85 * std::f64::consts::LN_10;
        assert!(
            (s_mv_per_dec - expected).abs() / expected < 0.05,
            "slope {s_mv_per_dec} mV/dec vs expected {expected}"
        );
    }

    #[test]
    fn strong_inversion_current_drops_with_temperature() {
        // Mobility degradation wins over threshold reduction at high Vov.
        let tech = Technology::n65();
        let m = nmos();
        let cold = m
            .on_current(&tech, Volt(1.0), &DeviceEnv::at(Celsius(0.0)))
            .0;
        let hot = m
            .on_current(&tech, Volt(1.0), &DeviceEnv::at(Celsius(100.0)))
            .0;
        assert!(cold > hot, "cold {cold} vs hot {hot}");
    }

    #[test]
    fn subthreshold_current_rises_with_temperature() {
        let tech = Technology::n65();
        let m = nmos();
        let cold = m
            .drain_current(&tech, Volt(0.2), Volt(0.3), &DeviceEnv::at(Celsius(0.0)))
            .0;
        let hot = m
            .drain_current(&tech, Volt(0.2), Volt(0.3), &DeviceEnv::at(Celsius(100.0)))
            .0;
        assert!(hot > 2.0 * cold, "cold {cold} vs hot {hot}");
    }

    #[test]
    fn positive_delta_vt_slows_device() {
        let tech = Technology::n65();
        let m = nmos();
        let slow = DeviceEnv {
            delta_vt: Volt(0.05),
            ..DeviceEnv::nominal()
        };
        let i_nom = m.on_current(&tech, Volt(1.0), &DeviceEnv::nominal()).0;
        let i_slow = m.on_current(&tech, Volt(1.0), &slow).0;
        assert!(i_slow < i_nom);
    }

    #[test]
    fn vt_decreases_with_temperature() {
        let tech = Technology::n65();
        let m = nmos();
        let v25 = m.vt_eff(&tech, &DeviceEnv::at(Celsius(25.0)));
        let v100 = m.vt_eff(&tech, &DeviceEnv::at(Celsius(100.0)));
        let slope = (v100.0 - v25.0) / 75.0;
        assert!((slope - tech.dvtn_dt).abs() < 1e-12);
    }

    #[test]
    fn off_current_small_but_nonzero() {
        let tech = Technology::n65();
        let ioff = nmos().off_current(&tech, Volt(1.0), &DeviceEnv::nominal());
        assert!(ioff.0 > 0.0);
        let ion = nmos().on_current(&tech, Volt(1.0), &DeviceEnv::nominal());
        assert!(ion.0 / ioff.0 > 1e3, "Ion/Ioff ratio {}", ion.0 / ioff.0);
    }

    #[test]
    fn drain_factor_suppresses_small_vds() {
        let tech = Technology::n65();
        let env = DeviceEnv::nominal();
        let m = nmos();
        let sat = m.drain_current(&tech, Volt(1.0), Volt(1.0), &env).0;
        let lin = m.drain_current(&tech, Volt(1.0), Volt(0.01), &env).0;
        assert!(lin < 0.5 * sat);
    }

    #[test]
    fn caps_scale_with_width() {
        let tech = Technology::n65();
        let small = Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(0.06)).unwrap();
        let big = Mosfet::new(MosPolarity::Nmos, Micron(2.0), Micron(0.06)).unwrap();
        assert!((big.gate_cap(&tech).0 / small.gate_cap(&tech).0 - 2.0).abs() < 1e-12);
        assert!((big.junction_cap(&tech).0 / small.junction_cap(&tech).0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_length_constructor_uses_tech_lmin() {
        let tech = Technology::n65();
        let m = Mosfet::min_length(MosPolarity::Pmos, Micron(1.5), &tech).unwrap();
        assert_eq!(m.length().0, tech.l_min);
        assert_eq!(m.polarity(), MosPolarity::Pmos);
    }

    #[test]
    fn softplus_stable_at_extremes() {
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-20);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
