//! # ptsim-device
//!
//! Device-physics substrate for the SOCC 2012 TSV process–temperature sensor
//! reproduction: strongly-typed units, a 65 nm-class technology description,
//! an EKV-style MOSFET compact model valid from weak through strong
//! inversion, and a CMOS inverter delay/energy model.
//!
//! This crate replaces the proprietary TSMC 65 nm PDK + silicon the paper
//! used: ring-oscillator behaviour versus process (Vtn/Vtp), temperature and
//! supply depends only on the first-order physics modelled here (threshold
//! tempco, mobility tempco, subthreshold conduction, velocity saturation).
//!
//! ## Example
//!
//! ```
//! use ptsim_device::inverter::{CmosEnv, Inverter};
//! use ptsim_device::process::Technology;
//! use ptsim_device::units::{Celsius, Micron, Volt};
//!
//! # fn main() -> Result<(), ptsim_device::error::DeviceError> {
//! let tech = Technology::n65();
//! let inv = Inverter::balanced(Micron(0.5), 2.0, &tech)?;
//! let load = inv.input_cap(&tech);
//! let d25 = inv.stage_delay(&tech, Volt(1.0), load, &CmosEnv::at(Celsius(25.0)));
//! let d85 = inv.stage_delay(&tech, Volt(1.0), load, &CmosEnv::at(Celsius(85.0)));
//! assert!(d25.is_finite() && d85.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod aging;
pub mod consts;
pub mod delay;
pub mod error;
pub mod inverter;
pub mod mosfet;
pub mod process;
pub mod units;

pub use aging::{AgingModel, StressCondition};
pub use delay::{DelayCache, ThermalPoint};
pub use error::DeviceError;
pub use inverter::{CmosEnv, Inverter};
pub use mosfet::{DeviceEnv, MosPolarity, Mosfet};
pub use process::{ProcessCorner, Technology};
