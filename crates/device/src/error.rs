//! Error type for the device crate.

use crate::units::{Micron, Volt};
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating devices.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A device was constructed with non-positive or non-finite dimensions.
    InvalidGeometry {
        /// Offending width.
        w: Micron,
        /// Offending length.
        l: Micron,
    },
    /// A supply/bias voltage outside the supported range was requested.
    InvalidVoltage {
        /// Offending value.
        value: Volt,
        /// Human-readable description of what the voltage was for.
        what: &'static str,
    },
    /// A configuration parameter was out of its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidGeometry { w, l } => {
                write!(f, "invalid device geometry: W = {w}, L = {l}")
            }
            DeviceError::InvalidVoltage { value, what } => {
                write!(f, "invalid {what} voltage: {value}")
            }
            DeviceError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DeviceError::InvalidGeometry {
            w: Micron(0.0),
            l: Micron(0.06),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("invalid"));
        assert!(msg.contains("0.06"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
