//! Property-based tests of the device-model invariants.

use ptsim_device::aging::{AgingModel, StressCondition};
use ptsim_device::inverter::{CmosEnv, Inverter};
use ptsim_device::mosfet::{DeviceEnv, MosPolarity, Mosfet};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Micron, Seconds, Volt};
use ptsim_rng::forall;

forall! {
    #[test]
    fn drain_current_nonnegative_everywhere(
        vgs in 0.0f64..1.3,
        vds in 0.0f64..1.3,
        t in -40.0f64..130.0,
        dvt in -0.08f64..0.08,
        mu in 0.7f64..1.3,
    ) {
        let tech = Technology::n65();
        let m = Mosfet::new(MosPolarity::Nmos, Micron(0.3), Micron(0.06)).unwrap();
        let env = DeviceEnv { temp: Celsius(t), delta_vt: Volt(dvt), mu_factor: mu };
        let i = m.drain_current(&tech, Volt(vgs), Volt(vds), &env);
        assert!(i.0 >= 0.0 && i.0.is_finite());
    }

    #[test]
    fn current_scales_linearly_with_width(
        w in 0.1f64..5.0,
        vgs in 0.3f64..1.2,
    ) {
        let tech = Technology::n65();
        let env = DeviceEnv::nominal();
        let m1 = Mosfet::new(MosPolarity::Nmos, Micron(w), Micron(0.06)).unwrap();
        let m2 = Mosfet::new(MosPolarity::Nmos, Micron(2.0 * w), Micron(0.06)).unwrap();
        let i1 = m1.drain_current(&tech, Volt(vgs), Volt(1.0), &env).0;
        let i2 = m2.drain_current(&tech, Volt(vgs), Volt(1.0), &env).0;
        assert!((i2 / i1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mobility_factor_scales_current(
        mu in 0.6f64..1.4,
        vgs in 0.5f64..1.2,
    ) {
        let tech = Technology::n65();
        let m = Mosfet::new(MosPolarity::Pmos, Micron(1.0), Micron(0.06)).unwrap();
        let base = m.drain_current(&tech, Volt(vgs), Volt(1.0), &DeviceEnv::nominal()).0;
        let env = DeviceEnv { mu_factor: mu, ..DeviceEnv::nominal() };
        let scaled = m.drain_current(&tech, Volt(vgs), Volt(1.0), &env).0;
        assert!((scaled / base - mu).abs() < 1e-9,
            "current must scale exactly with the mobility factor");
    }

    #[test]
    fn inverter_delay_positive_and_finite(
        wn in 0.1f64..2.0,
        beta in 0.5f64..4.0,
        vdd in 0.35f64..1.2,
        t in -40.0f64..125.0,
    ) {
        let tech = Technology::n65();
        let inv = Inverter::balanced(Micron(wn), beta, &tech).unwrap();
        let load = inv.input_cap(&tech);
        let d = inv.stage_delay(&tech, Volt(vdd), load, &CmosEnv::at(Celsius(t)));
        assert!(d.0 > 0.0 && d.0.is_finite());
    }

    #[test]
    fn leakage_always_grows_with_temperature(
        t in -30.0f64..100.0,
        dt in 5.0f64..40.0,
    ) {
        let tech = Technology::n65();
        let inv = Inverter::balanced(Micron(0.5), 2.0, &tech).unwrap();
        let cold = inv.leakage_power(&tech, Volt(1.0), &CmosEnv::at(Celsius(t))).0;
        let hot = inv.leakage_power(&tech, Volt(1.0), &CmosEnv::at(Celsius(t + dt))).0;
        assert!(hot > cold);
    }

    #[test]
    fn aging_monotone_and_nonnegative(
        years_a in 0.01f64..5.0,
        extra in 0.01f64..5.0,
        duty in 0.05f64..1.0,
        temp in 25.0f64..125.0,
    ) {
        let m = AgingModel::nbti_65nm();
        let cond = StressCondition {
            temp: Celsius(temp),
            duty,
            ..StressCondition::nominal_logic()
        };
        let year = 3.156e7;
        let d1 = m.delta_vt(&cond, Seconds(years_a * year));
        let d2 = m.delta_vt(&cond, Seconds((years_a + extra) * year));
        assert!(d1.0 >= 0.0);
        assert!(d2.0 >= d1.0);
    }

    #[test]
    fn vt_tempco_is_linear(
        t1 in -40.0f64..120.0,
        t2 in -40.0f64..120.0,
    ) {
        let tech = Technology::n65();
        let m = Mosfet::new(MosPolarity::Nmos, Micron(1.0), Micron(0.06)).unwrap();
        let v1 = m.vt_eff(&tech, &DeviceEnv::at(Celsius(t1))).0;
        let v2 = m.vt_eff(&tech, &DeviceEnv::at(Celsius(t2))).0;
        assert!((v2 - v1 - tech.dvtn_dt * (t2 - t1)).abs() < 1e-12);
    }
}
