//! Wire protocol v2: fixed-width binary frames negotiated at connect.
//!
//! JSON (v1, [`crate::protocol`]) spends a large share of each request's
//! budget formatting and re-parsing floats. v2 keeps the outer framing —
//! the same 4-byte big-endian length prefix, bounded by
//! [`MAX_FRAME`] before any allocation — but the payload is a tag byte
//! followed by fixed-width **little-endian** fields, so a `read` request
//! is 26 bytes encoded and decoded with no intermediate tree.
//!
//! # Negotiation
//!
//! A v2 client opens with a 5-byte hello: [`WIRE_MAGIC`] (`b"PTSV"`) then
//! the version byte it wants. The server answers with the same 4-byte
//! magic and the version it accepts (its highest supported version, capped
//! at the client's request, floored at [`WIRE_V2`]), after which both
//! sides speak binary frames. A legitimate JSON frame can never collide
//! with the hello: its length prefix is at most `MAX_FRAME` = 64 KiB, so
//! its first byte on the wire is always `0x00`, while the magic starts
//! with `b'P'`. Clients that skip the hello — the python CI smoke, older
//! tooling — are therefore detected on their first frame and served JSON
//! for the life of the connection.
//!
//! # Hardening
//!
//! Decoding enforces the exact bounds of the JSON parser
//! ([`MAX_PRIORITY`], [`MAX_DEADLINE_MS`], [`TEMP_BOUNDS`], [`MAX_PAD`],
//! [`MAX_BATCH`]) plus binary-specific checks: every field read is
//! bounds-checked against the payload, string lengths are explicit and
//! verified UTF-8, and trailing bytes after a complete message are
//! refused. No byte sequence may panic the decoder (see
//! `tests/wire.rs`). Encoding into a caller-owned buffer allocates
//! nothing for string-free messages, which is what keeps the warm
//! connection path of `server.rs`/`client.rs` allocation-free.

use crate::protocol::{
    BatchItem, HealthWire, InjectKind, ProtoError, Quality, Rejection, Request, Response,
    ShardHealthWire, MAX_BATCH, MAX_DEADLINE_MS, MAX_PAD, MAX_PRIORITY, TEMP_BOUNDS,
};

#[cfg(doc)]
use crate::protocol::MAX_FRAME;

/// Connection-opening magic of a binary-capable client. First byte is
/// non-zero, so it can never be mistaken for a bounded JSON length
/// prefix.
pub const WIRE_MAGIC: [u8; 4] = *b"PTSV";

/// The JSON protocol, as a version number (never sent in a hello — it is
/// what a connection speaks when no hello arrives).
pub const WIRE_V1: u8 = 1;

/// The binary protocol introduced here.
pub const WIRE_V2: u8 = 2;

// ---- request tags ----
const REQ_READ: u8 = 1;
const REQ_BATCH_READ: u8 = 2;
const REQ_CALIBRATE: u8 = 3;
const REQ_HEALTH: u8 = 4;
const REQ_PING: u8 = 5;
const REQ_INJECT: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

// ---- response tags ----
const RSP_READING: u8 = 1;
const RSP_BATCH: u8 = 2;
const RSP_CALIBRATED: u8 = 3;
const RSP_HEALTH: u8 = 4;
const RSP_PONG: u8 = 5;
const RSP_INJECTED: u8 = 6;
const RSP_REJECTED: u8 = 7;
const RSP_SHUTTING_DOWN: u8 = 8;

// ---- enum codes shared by both directions ----
const QUALITY_NOMINAL: u8 = 0;
const QUALITY_RECOVERED: u8 = 1;
const QUALITY_DEGRADED: u8 = 2;

const INJECT_DEGRADE: u8 = 0;
const INJECT_HEAL: u8 = 1;
const INJECT_PANIC_CONVERSION: u8 = 2;
const INJECT_PANIC_WORKER: u8 = 3;
const INJECT_STALL: u8 = 4;

fn quality_code(q: Quality) -> u8 {
    match q {
        Quality::Nominal => QUALITY_NOMINAL,
        Quality::Recovered => QUALITY_RECOVERED,
        Quality::Degraded => QUALITY_DEGRADED,
    }
}

fn quality_from(code: u8) -> Result<Quality, ProtoError> {
    match code {
        QUALITY_NOMINAL => Ok(Quality::Nominal),
        QUALITY_RECOVERED => Ok(Quality::Recovered),
        QUALITY_DEGRADED => Ok(Quality::Degraded),
        _ => Err(ProtoError::BadField("quality")),
    }
}

fn rejection_code(r: Rejection) -> u8 {
    match r {
        Rejection::Timeout => 0,
        Rejection::Overloaded => 1,
        Rejection::ShardDown => 2,
        Rejection::BadRequest => 3,
        Rejection::WorkerPanicked => 4,
        Rejection::ConversionFailed => 5,
    }
}

fn rejection_from(code: u8) -> Result<Rejection, ProtoError> {
    match code {
        0 => Ok(Rejection::Timeout),
        1 => Ok(Rejection::Overloaded),
        2 => Ok(Rejection::ShardDown),
        3 => Ok(Rejection::BadRequest),
        4 => Ok(Rejection::WorkerPanicked),
        5 => Ok(Rejection::ConversionFailed),
        _ => Err(ProtoError::BadField("error")),
    }
}

// ---- encoding primitives ----

fn put_u8(buf: &mut Vec<u8>, x: u8) {
    buf.push(x);
}

fn put_u16(buf: &mut Vec<u8>, x: u16) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Strings ride as a `u16` little-endian byte length plus UTF-8 bytes.
/// Every in-tree producer stays far under the 64 KiB cap (a longer string
/// would blow the frame bound anyway); defensively, over-long strings are
/// truncated at a char boundary rather than corrupting the stream.
fn put_str(buf: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(usize::from(u16::MAX));
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    put_u16(buf, end as u16);
    buf.extend_from_slice(&s.as_bytes()[..end]);
}

// ---- decoding primitives ----

/// Bounds-checked reader over one frame payload. Every accessor returns a
/// typed [`ProtoError`] on underrun; nothing here can panic on adversarial
/// input.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::BadField(field))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtoError::BadField(field))?;
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, ProtoError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtoError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtoError> {
        let b = self.take(8, field)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, ProtoError> {
        let b = self.take(8, field)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(f64::from_le_bytes(raw))
    }

    fn str(&mut self, field: &'static str) -> Result<String, ProtoError> {
        let len = usize::from(self.u16(field)?);
        let bytes = self.take(len, field)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| ProtoError::BadField(field))
    }

    /// A complete message must consume the whole payload; trailing bytes
    /// mean a desynchronized or malicious peer.
    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::OutOfBounds {
                field: "frame",
                bound: format!("{} trailing bytes", self.buf.len() - self.pos),
            })
        }
    }
}

// ---- shared bounds checks (identical outcomes to the JSON parser) ----

fn check_temp(temp_c: f64) -> Result<f64, ProtoError> {
    if (TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c) {
        Ok(temp_c)
    } else {
        Err(ProtoError::OutOfBounds {
            field: "temp_c",
            bound: format!("{temp_c} outside {TEMP_BOUNDS:?}"),
        })
    }
}

fn check_max(x: u64, max: u64, field: &'static str) -> Result<u64, ProtoError> {
    if x > max {
        Err(ProtoError::OutOfBounds {
            field,
            bound: format!("{x} > {max}"),
        })
    } else {
        Ok(x)
    }
}

// ---- requests ----

/// Appends the binary encoding of a request to `buf` (which usually holds
/// a frame started with [`crate::protocol::begin_frame`]). Allocates
/// nothing beyond the buffer's own growth.
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Read {
            die,
            temp_c,
            priority,
            deadline_ms,
        } => {
            put_u8(buf, REQ_READ);
            put_u64(buf, *die);
            put_f64(buf, *temp_c);
            put_u8(buf, *priority);
            put_u64(buf, *deadline_ms);
        }
        Request::BatchRead {
            die0,
            count,
            temp_c,
            priority,
            deadline_ms,
        } => {
            put_u8(buf, REQ_BATCH_READ);
            put_u64(buf, *die0);
            put_u64(buf, *count);
            put_f64(buf, *temp_c);
            put_u8(buf, *priority);
            put_u64(buf, *deadline_ms);
        }
        Request::Calibrate { die, deadline_ms } => {
            put_u8(buf, REQ_CALIBRATE);
            put_u64(buf, *die);
            put_u64(buf, *deadline_ms);
        }
        Request::Health => put_u8(buf, REQ_HEALTH),
        Request::Ping { pad } => {
            put_u8(buf, REQ_PING);
            put_u64(buf, *pad);
        }
        Request::Inject { die, kind } => {
            put_u8(buf, REQ_INJECT);
            put_u64(buf, *die);
            let (code, ms) = match kind {
                InjectKind::DegradeDie => (INJECT_DEGRADE, 0),
                InjectKind::HealDie => (INJECT_HEAL, 0),
                InjectKind::PanicConversion => (INJECT_PANIC_CONVERSION, 0),
                InjectKind::PanicWorker => (INJECT_PANIC_WORKER, 0),
                InjectKind::StallMs(ms) => (INJECT_STALL, *ms),
            };
            put_u8(buf, code);
            put_u64(buf, ms);
        }
        Request::Shutdown => put_u8(buf, REQ_SHUTDOWN),
    }
}

/// Decodes and bounds-checks one binary request payload.
///
/// # Errors
///
/// Returns a typed [`ProtoError`] for unknown tags, truncated fields,
/// trailing bytes, or bound violations — the same violations the JSON
/// parser refuses. Never panics.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut r = Reader::new(payload);
    let req = match r.u8("tag")? {
        REQ_READ => {
            let die = r.u64("die")?;
            let temp_c = check_temp(r.f64("temp_c")?)?;
            let priority = check_max(
                u64::from(r.u8("priority")?),
                u64::from(MAX_PRIORITY),
                "priority",
            )? as u8;
            let deadline_ms = check_max(r.u64("deadline_ms")?, MAX_DEADLINE_MS, "deadline_ms")?;
            Request::Read {
                die,
                temp_c,
                priority,
                deadline_ms,
            }
        }
        REQ_BATCH_READ => {
            let die0 = r.u64("die0")?;
            let count = r.u64("count")?;
            if count == 0 || count > MAX_BATCH {
                return Err(ProtoError::OutOfBounds {
                    field: "count",
                    bound: format!("{count} outside 1..={MAX_BATCH}"),
                });
            }
            if die0.checked_add(count).is_none() {
                return Err(ProtoError::OutOfBounds {
                    field: "die0",
                    bound: format!("{die0} + {count} overflows the die index space"),
                });
            }
            let temp_c = check_temp(r.f64("temp_c")?)?;
            let priority = check_max(
                u64::from(r.u8("priority")?),
                u64::from(MAX_PRIORITY),
                "priority",
            )? as u8;
            let deadline_ms = check_max(r.u64("deadline_ms")?, MAX_DEADLINE_MS, "deadline_ms")?;
            Request::BatchRead {
                die0,
                count,
                temp_c,
                priority,
                deadline_ms,
            }
        }
        REQ_CALIBRATE => Request::Calibrate {
            die: r.u64("die")?,
            deadline_ms: check_max(r.u64("deadline_ms")?, MAX_DEADLINE_MS, "deadline_ms")?,
        },
        REQ_HEALTH => Request::Health,
        REQ_PING => Request::Ping {
            pad: check_max(r.u64("pad")?, MAX_PAD, "pad")?,
        },
        REQ_INJECT => {
            let die = r.u64("die")?;
            let code = r.u8("fault")?;
            let ms = check_max(r.u64("ms")?, MAX_DEADLINE_MS, "ms")?;
            let kind = match code {
                INJECT_DEGRADE => InjectKind::DegradeDie,
                INJECT_HEAL => InjectKind::HealDie,
                INJECT_PANIC_CONVERSION => InjectKind::PanicConversion,
                INJECT_PANIC_WORKER => InjectKind::PanicWorker,
                INJECT_STALL => InjectKind::StallMs(ms),
                _ => return Err(ProtoError::BadField("fault")),
            };
            Request::Inject { die, kind }
        }
        REQ_SHUTDOWN => Request::Shutdown,
        other => return Err(ProtoError::UnknownOp(format!("binary tag {other}"))),
    };
    r.finish()?;
    Ok(req)
}

// ---- responses ----

fn encode_batch_item(item: &BatchItem, buf: &mut Vec<u8>) {
    match item {
        BatchItem::Reading {
            die,
            temp_c,
            d_vtn_mv,
            d_vtp_mv,
            energy_pj,
            quality,
        } => {
            put_u8(buf, 1);
            put_u64(buf, *die);
            put_f64(buf, *temp_c);
            put_f64(buf, *d_vtn_mv);
            put_f64(buf, *d_vtp_mv);
            put_f64(buf, *energy_pj);
            put_u8(buf, quality_code(*quality));
        }
        BatchItem::Rejected {
            die,
            rejection,
            detail,
        } => {
            put_u8(buf, 0);
            put_u64(buf, *die);
            put_u8(buf, rejection_code(*rejection));
            put_str(buf, detail);
        }
    }
}

fn decode_batch_item(r: &mut Reader<'_>) -> Result<BatchItem, ProtoError> {
    match r.u8("items")? {
        1 => Ok(BatchItem::Reading {
            die: r.u64("die")?,
            temp_c: r.f64("temp_c")?,
            d_vtn_mv: r.f64("d_vtn_mv")?,
            d_vtp_mv: r.f64("d_vtp_mv")?,
            energy_pj: r.f64("energy_pj")?,
            quality: quality_from(r.u8("quality")?)?,
        }),
        0 => Ok(BatchItem::Rejected {
            die: r.u64("die")?,
            rejection: rejection_from(r.u8("error")?)?,
            detail: r.str("detail")?,
        }),
        _ => Err(ProtoError::BadField("items")),
    }
}

/// Appends the binary encoding of a response to `buf`. String-free
/// responses (notably [`Response::Reading`]) allocate nothing beyond the
/// buffer's own growth — the warm single-read path never touches the
/// allocator.
pub fn encode_response(rsp: &Response, buf: &mut Vec<u8>) {
    match rsp {
        Response::Reading {
            die,
            temp_c,
            d_vtn_mv,
            d_vtp_mv,
            energy_pj,
            quality,
        } => {
            put_u8(buf, RSP_READING);
            put_u64(buf, *die);
            put_f64(buf, *temp_c);
            put_f64(buf, *d_vtn_mv);
            put_f64(buf, *d_vtp_mv);
            put_f64(buf, *energy_pj);
            put_u8(buf, quality_code(*quality));
        }
        Response::Batch { items } => {
            put_u8(buf, RSP_BATCH);
            put_u32(buf, items.len() as u32);
            for item in items {
                encode_batch_item(item, buf);
            }
        }
        Response::Calibrated { die, quality } => {
            put_u8(buf, RSP_CALIBRATED);
            put_u64(buf, *die);
            put_u8(buf, quality_code(*quality));
        }
        Response::Health(h) => {
            put_u8(buf, RSP_HEALTH);
            put_u64(buf, h.uptime_ms);
            put_u64(buf, h.coalesce_max);
            put_u64(buf, h.wire_version);
            put_u32(buf, h.shards.len() as u32);
            for s in &h.shards {
                put_u64(buf, s.id);
                put_str(buf, &s.state);
                put_u64(buf, s.restarts);
                put_u64(buf, s.queue_len);
                put_u64(buf, s.dies);
            }
            put_u32(buf, h.counters.len() as u32);
            for (name, value) in &h.counters {
                put_str(buf, name);
                put_u64(buf, *value);
            }
        }
        Response::Pong { pad } => {
            put_u8(buf, RSP_PONG);
            put_str(buf, pad);
        }
        Response::Injected { die } => {
            put_u8(buf, RSP_INJECTED);
            put_u64(buf, *die);
        }
        Response::Rejected { rejection, detail } => {
            put_u8(buf, RSP_REJECTED);
            put_u8(buf, rejection_code(*rejection));
            put_str(buf, detail);
        }
        Response::ShuttingDown => put_u8(buf, RSP_SHUTTING_DOWN),
    }
}

/// Decodes one binary response payload (the client side).
///
/// # Errors
///
/// Returns a typed [`ProtoError`] for unknown tags, truncated fields,
/// malformed strings, or trailing bytes. Never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut r = Reader::new(payload);
    let rsp = match r.u8("tag")? {
        RSP_READING => Response::Reading {
            die: r.u64("die")?,
            temp_c: r.f64("temp_c")?,
            d_vtn_mv: r.f64("d_vtn_mv")?,
            d_vtp_mv: r.f64("d_vtp_mv")?,
            energy_pj: r.f64("energy_pj")?,
            quality: quality_from(r.u8("quality")?)?,
        },
        RSP_BATCH => {
            let count = r.u32("items")? as usize;
            // An item is ≥ 10 bytes encoded; an advertised count that
            // cannot fit the remaining payload is refused before the
            // allocation, same discipline as the frame length prefix.
            if count > payload.len() / 10 + 1 {
                return Err(ProtoError::OutOfBounds {
                    field: "items",
                    bound: format!("{count} items cannot fit the frame"),
                });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_batch_item(&mut r)?);
            }
            Response::Batch { items }
        }
        RSP_CALIBRATED => Response::Calibrated {
            die: r.u64("die")?,
            quality: quality_from(r.u8("quality")?)?,
        },
        RSP_HEALTH => {
            let uptime_ms = r.u64("uptime_ms")?;
            let coalesce_max = r.u64("coalesce_max")?;
            let wire_version = r.u64("wire_version")?;
            let n_shards = r.u32("shards")? as usize;
            if n_shards > payload.len() / 34 + 1 {
                return Err(ProtoError::OutOfBounds {
                    field: "shards",
                    bound: format!("{n_shards} shards cannot fit the frame"),
                });
            }
            let mut shards = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                shards.push(ShardHealthWire {
                    id: r.u64("id")?,
                    state: r.str("state")?,
                    restarts: r.u64("restarts")?,
                    queue_len: r.u64("queue_len")?,
                    dies: r.u64("dies")?,
                });
            }
            let n_counters = r.u32("counters")? as usize;
            if n_counters > payload.len() / 10 + 1 {
                return Err(ProtoError::OutOfBounds {
                    field: "counters",
                    bound: format!("{n_counters} counters cannot fit the frame"),
                });
            }
            let mut counters = Vec::with_capacity(n_counters);
            for _ in 0..n_counters {
                let name = r.str("counters")?;
                let value = r.u64("counters")?;
                counters.push((name, value));
            }
            Response::Health(HealthWire {
                shards,
                counters,
                uptime_ms,
                coalesce_max,
                wire_version,
            })
        }
        RSP_PONG => Response::Pong { pad: r.str("pad")? },
        RSP_INJECTED => Response::Injected { die: r.u64("die")? },
        RSP_REJECTED => Response::Rejected {
            rejection: rejection_from(r.u8("error")?)?,
            detail: r.str("detail")?,
        },
        RSP_SHUTTING_DOWN => Response::ShuttingDown,
        other => return Err(ProtoError::UnknownOp(format!("binary tag {other}"))),
    };
    r.finish()?;
    Ok(rsp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let mut buf = Vec::new();
        encode_request(req, &mut buf);
        assert_eq!(&decode_request(&buf).unwrap(), req);
    }

    fn round_trip_response(rsp: &Response) {
        let mut buf = Vec::new();
        encode_response(rsp, &mut buf);
        assert_eq!(&decode_response(&buf).unwrap(), rsp);
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(&Request::Read {
            die: 17,
            temp_c: 85.25,
            priority: 2,
            deadline_ms: 1500,
        });
        round_trip_request(&Request::BatchRead {
            die0: 3,
            count: 16,
            temp_c: -40.0,
            priority: 0,
            deadline_ms: 250,
        });
        round_trip_request(&Request::Calibrate {
            die: 9,
            deadline_ms: 5000,
        });
        round_trip_request(&Request::Health);
        round_trip_request(&Request::Ping { pad: 1024 });
        round_trip_request(&Request::Inject {
            die: 5,
            kind: InjectKind::StallMs(40),
        });
        round_trip_request(&Request::Shutdown);
    }

    #[test]
    fn response_round_trips() {
        round_trip_response(&Response::Reading {
            die: 17,
            temp_c: 85.014,
            d_vtn_mv: 12.5,
            d_vtp_mv: -9.25,
            energy_pj: 120.75,
            quality: Quality::Recovered,
        });
        round_trip_response(&Response::Batch {
            items: vec![
                BatchItem::Reading {
                    die: 1,
                    temp_c: 25.0,
                    d_vtn_mv: 0.0,
                    d_vtp_mv: 0.0,
                    energy_pj: 100.0,
                    quality: Quality::Nominal,
                },
                BatchItem::Rejected {
                    die: 5,
                    rejection: Rejection::ConversionFailed,
                    detail: "psro bank dead".into(),
                },
            ],
        });
        round_trip_response(&Response::Health(HealthWire {
            shards: vec![ShardHealthWire {
                id: 0,
                state: "up".into(),
                restarts: 1,
                queue_len: 3,
                dies: 16,
            }],
            counters: vec![("svc.reads_served".into(), 42)],
            uptime_ms: 12345,
            coalesce_max: 64,
            wire_version: u64::from(WIRE_V2),
        }));
        round_trip_response(&Response::Rejected {
            rejection: Rejection::Overloaded,
            detail: "queue full".into(),
        });
        round_trip_response(&Response::ShuttingDown);
    }

    #[test]
    fn binary_bounds_match_json() {
        // Same violations the JSON parser refuses: NaN/out-of-range temp,
        // over-limit priority and deadline.
        let mut buf = Vec::new();
        encode_request(
            &Request::Read {
                die: 0,
                temp_c: f64::NAN,
                priority: 1,
                deadline_ms: 100,
            },
            &mut buf,
        );
        assert!(matches!(
            decode_request(&buf),
            Err(ProtoError::OutOfBounds {
                field: "temp_c",
                ..
            })
        ));

        buf.clear();
        encode_request(
            &Request::Read {
                die: 0,
                temp_c: 25.0,
                priority: MAX_PRIORITY + 1,
                deadline_ms: 100,
            },
            &mut buf,
        );
        assert!(matches!(
            decode_request(&buf),
            Err(ProtoError::OutOfBounds {
                field: "priority",
                ..
            })
        ));

        buf.clear();
        encode_request(&Request::Ping { pad: MAX_PAD + 1 }, &mut buf);
        assert!(matches!(
            decode_request(&buf),
            Err(ProtoError::OutOfBounds { field: "pad", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut buf = Vec::new();
        encode_request(&Request::Health, &mut buf);
        buf.push(0);
        assert!(decode_request(&buf).is_err());

        let mut buf = Vec::new();
        encode_response(&Response::ShuttingDown, &mut buf);
        buf.push(0);
        assert!(decode_response(&buf).is_err());
    }

    #[test]
    fn truncated_fields_are_refused() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Read {
                die: 1,
                temp_c: 25.0,
                priority: 1,
                deadline_ms: 100,
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            assert!(decode_request(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }
}
