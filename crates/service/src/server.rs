//! The TCP front-end: hardened framing over `std::net`, one thread per
//! connection, idle reaping, slow-client write timeouts, and a strike
//! budget for malformed frames.
//!
//! Nothing a client sends can take the daemon down: oversize length
//! prefixes are refused before allocation, malformed payloads are
//! answered with typed `bad_request` rejections (up to a strike budget,
//! then the connection is closed), a stalled sender is dropped at the
//! first mid-frame timeout, and a client that stops reading its replies
//! hits the write timeout and is disconnected — the fleet never blocks on
//! one peer.

use crate::fleet::Fleet;
use crate::protocol::{
    begin_frame, finish_frame, read_body_into, read_byte, read_frame_into, read_prefix, FrameError,
    Rejection, Request, Response, MAX_FRAME,
};
use crate::shard::recover;
use crate::wire::{self, WIRE_MAGIC, WIRE_V1, WIRE_V2};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Front-end tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Drop a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Drop a connection whose peer reads replies slower than this.
    pub write_timeout: Duration,
    /// Malformed frames tolerated per connection before it is closed.
    pub bad_frame_strikes: u32,
    /// Per-`read` poll granularity (bounds shutdown latency).
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(2),
            bad_frame_strikes: 8,
            poll: Duration::from_millis(100),
        }
    }
}

/// A running daemon: the fleet plus its TCP accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: thread::JoinHandle<()>,
    fleet: Arc<Fleet>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(fleet: Fleet, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = Arc::new(fleet);
        let accept = {
            let stop = Arc::clone(&stop);
            let fleet = Arc::clone(&fleet);
            thread::Builder::new()
                .name("ptsim-accept".into())
                .spawn(move || accept_loop(&listener, &fleet, &stop, cfg))
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr: local,
            stop,
            accept,
            fleet,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without blocking (the accept loop notices within
    /// one poll interval; a `shutdown` request frame does this too).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop (and every connection thread) exits,
    /// then shuts the fleet down gracefully.
    pub fn join(self) {
        let _ = self.accept.join();
        if let Ok(fleet) = Arc::try_unwrap(self.fleet) {
            fleet.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    fleet: &Arc<Fleet>,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Everything per-connection — metrics included — happens on
                // the connection thread: the accept loop only spawns, so a
                // burst of setup work (or a contended front-metrics lock)
                // never delays the next accept. This is what keeps the
                // health-probe tail flat under load.
                let fleet = Arc::clone(fleet);
                let stop = Arc::clone(stop);
                let handle = thread::Builder::new()
                    .name(format!("ptsim-conn-{next_id}"))
                    .spawn(move || serve_conn(stream, &fleet, &stop, cfg))
                    .expect("spawn connection thread");
                next_id += 1;
                let mut guard = recover(conns.lock());
                guard.push(handle);
                // Opportunistically reap finished connection threads so a
                // long-lived daemon does not accumulate handles.
                guard.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // 1 ms, not 10: the accept-poll gap is the floor of every
                // fresh connection's first-byte latency, and a coarse sleep
                // here was the dominant term of the health p99 tail.
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in recover(conns.lock()).drain(..) {
        let _ = h.join();
    }
}

/// Encodes `resp` into the connection's reusable write buffer (binary for
/// a v2 connection, JSON otherwise) and sends it as one frame. On a warm
/// connection the v2 path allocates nothing: the payload is encoded
/// directly behind the reserved length slot and shipped with a single
/// `write_all`.
fn send_response(
    stream: &mut TcpStream,
    wbuf: &mut Vec<u8>,
    resp: &Response,
    v2: bool,
) -> io::Result<()> {
    begin_frame(wbuf);
    if v2 {
        wire::encode_response(resp, wbuf);
    } else {
        wbuf.extend_from_slice(resp.to_json().as_bytes());
    }
    finish_frame(wbuf)?;
    stream.write_all(wbuf)?;
    stream.flush()
}

fn serve_conn(
    mut stream: TcpStream,
    fleet: &Arc<Fleet>,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.poll));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut strikes = 0u32;
    let mut last_frame = Instant::now();
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    let count = |pick: fn(&crate::shard::SvcMetrics) -> ptsim_obs::CounterId| {
        let mut m = recover(fleet.front_metrics.lock());
        let id = pick(&m);
        m.reg.inc(id);
    };
    count(|m| m.conns);

    // Version negotiation on the first four bytes. A binary-capable client
    // opens with `WIRE_MAGIC` + the version it wants; anything else is a
    // JSON frame's length prefix (always `0x00`-leading, since MAX_FRAME
    // fits 17 bits) and locks the connection to v1 — the header already
    // consumed becomes the first frame's prefix.
    let mut v2 = false;
    let mut consumed_header: Option<[u8; 4]> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_prefix(&mut stream) {
            Ok(header) if header == WIRE_MAGIC => {
                let wanted = match read_byte(&mut stream) {
                    Ok(b) => b,
                    Err(_) => {
                        count(|m| m.bad_frames);
                        return;
                    }
                };
                let accepted = if wanted >= WIRE_V2 { WIRE_V2 } else { WIRE_V1 };
                let mut hello = [0u8; 5];
                hello[..4].copy_from_slice(&WIRE_MAGIC);
                hello[4] = accepted;
                if stream
                    .write_all(&hello)
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    return;
                }
                v2 = accepted == WIRE_V2;
                if v2 {
                    count(|m| m.wire_v2_conns);
                }
                last_frame = Instant::now();
                break;
            }
            Ok(header) => {
                consumed_header = Some(header);
                break;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= cfg.idle_timeout {
                    count(|m| m.idle_reaps);
                    return;
                }
            }
            Err(FrameError::Truncated { .. }) => {
                count(|m| m.bad_frames);
                return;
            }
            // read_prefix never length-checks, so Oversize cannot occur.
            Err(FrameError::Oversize { .. }) | Err(FrameError::Io(_)) => return,
        }
    }

    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // The negotiation loop may have consumed the first frame's prefix.
        let read = match consumed_header.take() {
            Some(header) => read_body_into(&mut stream, header, MAX_FRAME, &mut rbuf),
            None => read_frame_into(&mut stream, MAX_FRAME, &mut rbuf),
        };
        match read {
            Ok(()) => {
                last_frame = Instant::now();
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= cfg.idle_timeout {
                    count(|m| m.idle_reaps);
                    return;
                }
                continue;
            }
            Err(FrameError::Oversize { advertised, max }) => {
                // The stream is desynchronized after a refused prefix:
                // answer once, then close.
                count(|m| m.oversize_frames);
                count(|m| m.bad_frames);
                let resp = Response::rejected(
                    Rejection::BadRequest,
                    format!("frame of {advertised} bytes exceeds the {max}-byte bound"),
                );
                let _ = send_response(&mut stream, &mut wbuf, &resp, v2);
                return;
            }
            Err(FrameError::Truncated { .. }) => {
                count(|m| m.bad_frames);
                return;
            }
            Err(FrameError::Io(_)) => return,
        }

        let parsed = if v2 {
            count(|m| m.wire_v2_frames);
            wire::decode_request(&rbuf)
        } else {
            Request::from_json_bytes(&rbuf)
        };
        let response = match parsed {
            Err(e) => {
                count(|m| m.bad_frames);
                strikes += 1;
                Response::rejected(Rejection::BadRequest, e.to_string())
            }
            Ok(Request::Shutdown) => {
                let _ = send_response(&mut stream, &mut wbuf, &Response::ShuttingDown, v2);
                stop.store(true, Ordering::SeqCst);
                return;
            }
            Ok(req) => fleet.submit(req),
        };
        if let Response::Rejected {
            rejection: Rejection::BadRequest,
            ..
        } = &response
        {
            count(|m| m.rej_bad_request);
        }
        match send_response(&mut stream, &mut wbuf, &response, v2) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The peer stopped reading; do not let it wedge a thread.
                count(|m| m.slow_client_drops);
                return;
            }
            Err(_) => return,
        }
        if strikes >= cfg.bad_frame_strikes {
            return;
        }
    }
}
