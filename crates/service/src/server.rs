//! The TCP front-end: hardened framing over `std::net`, one thread per
//! connection, idle reaping, slow-client write timeouts, and a strike
//! budget for malformed frames.
//!
//! Nothing a client sends can take the daemon down: oversize length
//! prefixes are refused before allocation, malformed payloads are
//! answered with typed `bad_request` rejections (up to a strike budget,
//! then the connection is closed), a stalled sender is dropped at the
//! first mid-frame timeout, and a client that stops reading its replies
//! hits the write timeout and is disconnected — the fleet never blocks on
//! one peer.

use crate::fleet::Fleet;
use crate::protocol::{
    read_frame, write_frame, FrameError, Rejection, Request, Response, MAX_FRAME,
};
use crate::shard::recover;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Front-end tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Drop a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Drop a connection whose peer reads replies slower than this.
    pub write_timeout: Duration,
    /// Malformed frames tolerated per connection before it is closed.
    pub bad_frame_strikes: u32,
    /// Per-`read` poll granularity (bounds shutdown latency).
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(2),
            bad_frame_strikes: 8,
            poll: Duration::from_millis(100),
        }
    }
}

/// A running daemon: the fleet plus its TCP accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: thread::JoinHandle<()>,
    fleet: Arc<Fleet>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(fleet: Fleet, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let fleet = Arc::new(fleet);
        let accept = {
            let stop = Arc::clone(&stop);
            let fleet = Arc::clone(&fleet);
            thread::Builder::new()
                .name("ptsim-accept".into())
                .spawn(move || accept_loop(&listener, &fleet, &stop, cfg))
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr: local,
            stop,
            accept,
            fleet,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without blocking (the accept loop notices within
    /// one poll interval; a `shutdown` request frame does this too).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop (and every connection thread) exits,
    /// then shuts the fleet down gracefully.
    pub fn join(self) {
        let _ = self.accept.join();
        if let Ok(fleet) = Arc::try_unwrap(self.fleet) {
            fleet.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    fleet: &Arc<Fleet>,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let conns: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                {
                    let mut m = recover(fleet.front_metrics.lock());
                    let id = m.conns;
                    m.reg.inc(id);
                }
                let fleet = Arc::clone(fleet);
                let stop = Arc::clone(stop);
                let handle = thread::Builder::new()
                    .name(format!("ptsim-conn-{next_id}"))
                    .spawn(move || serve_conn(stream, &fleet, &stop, cfg))
                    .expect("spawn connection thread");
                next_id += 1;
                let mut guard = recover(conns.lock());
                guard.push(handle);
                // Opportunistically reap finished connection threads so a
                // long-lived daemon does not accumulate handles.
                guard.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in recover(conns.lock()).drain(..) {
        let _ = h.join();
    }
}

fn serve_conn(
    mut stream: TcpStream,
    fleet: &Arc<Fleet>,
    stop: &Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(cfg.poll));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut strikes = 0u32;
    let mut last_frame = Instant::now();
    let count = |pick: fn(&crate::shard::SvcMetrics) -> ptsim_obs::CounterId| {
        let mut m = recover(fleet.front_metrics.lock());
        let id = pick(&m);
        m.reg.inc(id);
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream, MAX_FRAME) {
            Ok(p) => {
                last_frame = Instant::now();
                p
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_frame.elapsed() >= cfg.idle_timeout {
                    count(|m| m.idle_reaps);
                    return;
                }
                continue;
            }
            Err(FrameError::Oversize { advertised, max }) => {
                // The stream is desynchronized after a refused prefix:
                // answer once, then close.
                count(|m| m.oversize_frames);
                count(|m| m.bad_frames);
                let resp = Response::rejected(
                    Rejection::BadRequest,
                    format!("frame of {advertised} bytes exceeds the {max}-byte bound"),
                );
                let _ = write_frame(&mut stream, resp.to_json().as_bytes());
                return;
            }
            Err(FrameError::Truncated { .. }) => {
                count(|m| m.bad_frames);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };

        let response = match Request::from_json_bytes(&payload) {
            Err(e) => {
                count(|m| m.bad_frames);
                strikes += 1;
                Response::rejected(Rejection::BadRequest, e.to_string())
            }
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut stream, Response::ShuttingDown.to_json().as_bytes());
                stop.store(true, Ordering::SeqCst);
                return;
            }
            Ok(req) => fleet.submit(req),
        };
        if let Response::Rejected {
            rejection: Rejection::BadRequest,
            ..
        } = &response
        {
            count(|m| m.rej_bad_request);
        }
        match write_frame(&mut stream, response.to_json().as_bytes()) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The peer stopped reading; do not let it wedge a thread.
                count(|m| m.slow_client_drops);
                return;
            }
            Err(_) => return,
        }
        if strikes >= cfg.bad_frame_strikes {
            return;
        }
    }
}
