//! The fleet: N virtual dies striped across supervised shard workers.
//!
//! Each shard gets a supervisor thread that runs [`worker_loop`] inside
//! `catch_unwind`. An escaped panic marks the shard `Restarting`, backs
//! off exponentially (`backoff_base · 2^(restarts-1)`, capped), and spawns
//! the next worker incarnation with a *fresh* context — per-die state is
//! rebuilt from the deterministic seeds, so a restart changes availability
//! but never the values a die reports. Past `max_restarts` the shard goes
//! `Dead` and its queue is drained with typed `shard_down` rejections;
//! the rest of the fleet keeps serving.
//!
//! Admission control is strictly bounded: a full queue sheds the
//! *lowest-priority read* (answering it `overloaded`) to admit
//! higher-priority work, and rejects the newcomer otherwise. Replies are
//! awaited with `recv_timeout` against the request's own deadline, so a
//! stalled worker costs the caller its deadline budget, never an unbounded
//! hang.

use crate::protocol::{
    HealthWire, Rejection, Request, Response, ShardHealthWire, DEFAULT_DEADLINE_MS,
};
use crate::shard::{recover, worker_loop, ShardConfig, ShardShared, ShardState, SvcMetrics};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

/// Thread-name prefix of shard workers; the quiet panic hook uses it to
/// keep *expected* (supervised) panics off stderr while leaving every
/// other thread's panics loud.
pub const SHARD_THREAD_PREFIX: &str = "ptsim-shard-";

static QUIET_HOOK: Once = Once::new();

/// Installs a process-wide panic hook that silences panics on supervised
/// shard threads (they are caught, counted, and reported through typed
/// responses) while delegating everything else to the previous hook.
/// Idempotent.
pub fn install_supervised_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let supervised = thread::current()
                .name()
                .is_some_and(|n| n.starts_with(SHARD_THREAD_PREFIX));
            if !supervised {
                prev(info);
            }
        }));
    });
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Virtual dies owned by the fleet.
    pub n_dies: u64,
    /// Shard (worker thread) count.
    pub n_shards: u64,
    /// Bounded per-shard queue depth.
    pub queue_depth: usize,
    /// Base seed of the deterministic per-die streams.
    pub base_seed: u64,
    /// How many queued single-die reads one worker wake may coalesce into
    /// a lane-grouped conversion (1 disables coalescing). Exposed in
    /// `/health` so operators can confirm the scheduler is grouping.
    pub coalesce_max: usize,
    /// Worker restarts a shard may consume before going `Dead`.
    pub max_restarts: u64,
    /// First restart backoff; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_dies: 64,
            n_shards: 4,
            queue_depth: 64,
            base_seed: 0x5eed,
            coalesce_max: 64,
            max_restarts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// The running fleet.
pub struct Fleet {
    cfg: FleetConfig,
    shards: Vec<Arc<ShardShared>>,
    supervisors: Vec<thread::JoinHandle<()>>,
    /// Connection-level metrics (frames, reaps, bad requests) merged into
    /// `/health` alongside the per-shard registries.
    pub front_metrics: Mutex<SvcMetrics>,
    started: Instant,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("n_dies", &self.cfg.n_dies)
            .field("n_shards", &self.cfg.n_shards)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Boots the fleet: shared state plus one supervisor thread per shard.
    #[must_use]
    pub fn start(cfg: FleetConfig) -> Self {
        install_supervised_panic_hook();
        let cfg = FleetConfig {
            n_shards: cfg.n_shards.clamp(1, 64),
            queue_depth: cfg.queue_depth.max(1),
            coalesce_max: cfg.coalesce_max.max(1),
            ..cfg
        };
        let shards: Vec<Arc<ShardShared>> = (0..cfg.n_shards)
            .map(|shard_id| {
                Arc::new(ShardShared::new(ShardConfig {
                    shard_id,
                    n_shards: cfg.n_shards,
                    n_dies: cfg.n_dies,
                    queue_depth: cfg.queue_depth,
                    base_seed: cfg.base_seed,
                    coalesce_max: cfg.coalesce_max,
                }))
            })
            .collect();
        let supervisors = shards
            .iter()
            .map(|shared| {
                let shared = Arc::clone(shared);
                let sup_cfg = cfg;
                thread::Builder::new()
                    .name(format!("{SHARD_THREAD_PREFIX}{}", shared.cfg.shard_id))
                    .spawn(move || supervise(&shared, &sup_cfg))
                    .expect("spawn shard supervisor")
            })
            .collect();
        Fleet {
            cfg,
            shards,
            supervisors,
            front_metrics: Mutex::new(SvcMetrics::new()),
            started: Instant::now(),
        }
    }

    /// The fleet configuration in force.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Routes one die-addressed request: admission control, bounded queue,
    /// deadline-bounded reply wait. Always answers — with the result or a
    /// typed rejection, never a hang and never silence.
    #[must_use]
    pub fn submit(&self, req: Request) -> Response {
        let (die, priority, deadline_ms) = match &req {
            Request::Read {
                die,
                priority,
                deadline_ms,
                ..
            } => (*die, *priority, *deadline_ms),
            Request::BatchRead {
                die0,
                priority,
                deadline_ms,
                ..
            } => (*die0, *priority, *deadline_ms),
            Request::Calibrate { die, deadline_ms } => (*die, 2, *deadline_ms),
            // Chaos injections must land even under overload: top priority.
            Request::Inject { die, .. } => (*die, u8::MAX, DEFAULT_DEADLINE_MS),
            Request::Ping { .. } => (0, u8::MAX, DEFAULT_DEADLINE_MS),
            Request::Health => return Response::Health(self.health()),
            Request::Shutdown => {
                return Response::rejected(Rejection::BadRequest, "shutdown is a server-level op")
            }
        };
        if die >= self.cfg.n_dies && !matches!(req, Request::Ping { .. }) {
            return Response::rejected(
                Rejection::BadRequest,
                format!("die {die} outside fleet of {}", self.cfg.n_dies),
            );
        }
        if let Request::BatchRead { die0, count, .. } = &req {
            // The stripe `die0, die0+S, …` must stay inside the fleet; the
            // parser bounds `count` but a directly-constructed request may
            // still run off the end (or overflow).
            let last = count
                .checked_sub(1)
                .and_then(|c| c.checked_mul(self.cfg.n_shards))
                .and_then(|offset| die0.checked_add(offset));
            if last.is_none_or(|last| last >= self.cfg.n_dies) {
                return Response::rejected(
                    Rejection::BadRequest,
                    format!(
                        "batch of {count} dies striding from die {die0} leaves the fleet of {}",
                        self.cfg.n_dies
                    ),
                );
            }
        }
        let shard = &self.shards[(die % self.cfg.n_shards) as usize];
        let state = recover(shard.status.lock()).state;
        if state == ShardState::Dead {
            shard.count_pub(|m| m.rej_shard_down);
            return Response::rejected(
                Rejection::ShardDown,
                format!("shard {} is dead", shard.cfg.shard_id),
            );
        }

        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        let (tx, rx) = mpsc::channel();
        let job = crate::shard::Job {
            req,
            priority,
            deadline,
            enqueued: Instant::now(),
            reply: tx,
        };
        {
            let mut q = recover(shard.queue.lock());
            if q.len() >= shard.cfg.queue_depth {
                // Shed the lowest-priority queued *read* if it ranks below
                // the newcomer; otherwise the newcomer is the one shed.
                let victim = q
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| matches!(j.req, Request::Read { .. }))
                    .min_by_key(|(_, j)| j.priority)
                    .map(|(i, j)| (i, j.priority));
                match victim {
                    Some((i, vp)) if vp < priority => {
                        let shed = q.remove(i).expect("victim index valid under lock");
                        let _ = shed.reply.send(Response::rejected(
                            Rejection::Overloaded,
                            "shed for higher-priority work",
                        ));
                        shard.count_pub(|m| m.rej_overloaded);
                        q.push_back(job);
                    }
                    _ => {
                        drop(q);
                        shard.count_pub(|m| m.rej_overloaded);
                        return Response::rejected(
                            Rejection::Overloaded,
                            format!("shard {} queue full", shard.cfg.shard_id),
                        );
                    }
                }
            } else {
                q.push_back(job);
            }
            let depth = q.len();
            drop(q);
            let mut m = recover(shard.metrics.lock());
            let req_id = m.requests;
            m.reg.inc(req_id);
            let peak = m.queue_peak;
            m.reg.set_max(peak, depth as f64);
        }
        shard.cv.notify_one();

        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(resp) => resp,
            Err(_) => {
                shard.count_pub(|m| m.rej_timeout);
                Response::rejected(
                    Rejection::Timeout,
                    format!("deadline of {deadline_ms} ms exceeded"),
                )
            }
        }
    }

    /// Fleet-wide health. Never goes through a shard queue — it is served
    /// from shared state so it works while every shard is dead.
    #[must_use]
    pub fn health(&self) -> HealthWire {
        let mut merged = SvcMetrics::new();
        merged.reg.merge(&recover(self.front_metrics.lock()).reg);
        let shards = self
            .shards
            .iter()
            .map(|s| {
                merged.reg.merge(&recover(s.metrics.lock()).reg);
                let st = recover(s.status.lock());
                ShardHealthWire {
                    id: s.cfg.shard_id,
                    state: st.state.name().to_string(),
                    restarts: st.restarts,
                    queue_len: recover(s.queue.lock()).len() as u64,
                    dies: s.cfg.owned_dies(),
                }
            })
            .collect();
        let snap = merged.reg.snapshot();
        let mut counters: Vec<(String, u64)> = snap
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect();
        // Project the coalesce-width histogram into the counter list so a
        // plain /health poll can confirm the scheduler is actually grouping:
        // wakes = grouped worker wakes (each served ≥ 2 reads), reads = reads
        // those wakes served. Unit-width bins make the sum exact.
        if let Some(h) = snap.histogram("svc.coalesce_width") {
            let reads: u64 = h
                .counts
                .iter()
                .enumerate()
                .map(|(w, &n)| w as u64 * n)
                .sum();
            counters.push(("svc.coalesced_wakes".to_string(), h.total));
            counters.push(("svc.coalesced_reads".to_string(), reads));
        }
        HealthWire {
            shards,
            counters,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            coalesce_max: self.cfg.coalesce_max as u64,
            wire_version: u64::from(crate::wire::WIRE_V2),
        }
    }

    /// Graceful shutdown: stop admitting, wake the workers, join the
    /// supervisors. Queued jobs at shutdown are answered `shard_down`.
    pub fn shutdown(self) {
        for s in &self.shards {
            s.shutdown.store(true, Ordering::SeqCst);
            s.cv.notify_all();
        }
        for sup in self.supervisors {
            let _ = sup.join();
        }
        for s in &self.shards {
            drain_with_rejection(s, "fleet shutting down");
        }
    }
}

impl ShardShared {
    /// Public counter bump for the fleet front-end (the private helper in
    /// `shard.rs` covers the worker side).
    pub(crate) fn count_pub(&self, pick: impl Fn(&SvcMetrics) -> ptsim_obs::CounterId) {
        let mut m = recover(self.metrics.lock());
        let id = pick(&m);
        m.reg.inc(id);
    }
}

fn drain_with_rejection(shard: &ShardShared, detail: &str) {
    let drained: Vec<_> = recover(shard.queue.lock()).drain(..).collect();
    for job in drained {
        shard.count_pub(|m| m.rej_shard_down);
        let _ = job
            .reply
            .send(Response::rejected(Rejection::ShardDown, detail));
    }
}

/// The supervisor body: run the worker, and on an escaped panic back off
/// and restart it with a fresh context until the restart budget runs out.
fn supervise(shared: &Arc<ShardShared>, cfg: &FleetConfig) {
    let mut ctx = None;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, &mut ctx)));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match run {
            Ok(()) => return, // clean exit only happens on shutdown
            Err(payload) => {
                // The worker context may be mid-update; rebuild from seeds.
                ctx = None;
                let message = panic_message(payload.as_ref());
                let restarts = {
                    let mut st = recover(shared.status.lock());
                    st.restarts += 1;
                    st.last_panic = Some(message);
                    st.state = if st.restarts > cfg.max_restarts {
                        ShardState::Dead
                    } else {
                        ShardState::Restarting
                    };
                    shared.count_pub(|m| m.restarts);
                    st.restarts
                };
                if restarts > cfg.max_restarts {
                    drain_with_rejection(shared, "restart budget exhausted");
                    return;
                }
                let backoff = cfg
                    .backoff_base
                    .saturating_mul(1u32 << (restarts - 1).min(16) as u32)
                    .min(cfg.backoff_cap);
                thread::sleep(backoff);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                recover(shared.status.lock()).state = ShardState::Up;
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{InjectKind, Quality};

    fn small_fleet() -> Fleet {
        Fleet::start(FleetConfig {
            n_dies: 8,
            n_shards: 2,
            queue_depth: 16,
            base_seed: 0xfeed,
            coalesce_max: 8,
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
        })
    }

    fn read(die: u64) -> Request {
        Request::Read {
            die,
            temp_c: 60.0,
            priority: 1,
            deadline_ms: 5_000,
        }
    }

    #[test]
    fn reads_are_deterministic_per_die() {
        let fleet = small_fleet();
        let a = fleet.submit(read(3));
        let Response::Reading {
            temp_c, quality, ..
        } = a
        else {
            panic!("expected a reading, got {a:?}");
        };
        assert_eq!(quality, Quality::Nominal);
        assert!(
            (temp_c - 60.0).abs() < 2.0,
            "sensor error too large: {temp_c}"
        );
        fleet.shutdown();

        // A second fleet boot serves the same die identically.
        let fleet2 = small_fleet();
        let b = fleet2.submit(read(3));
        let Response::Reading { temp_c: t2, .. } = b else {
            panic!("expected a reading, got {b:?}");
        };
        assert_eq!(temp_c, t2, "die state must rebuild bit-identically");
        fleet2.shutdown();
    }

    #[test]
    fn out_of_range_die_is_bad_request() {
        let fleet = small_fleet();
        let r = fleet.submit(read(10_000));
        assert!(
            matches!(
                r,
                Response::Rejected {
                    rejection: Rejection::BadRequest,
                    ..
                }
            ),
            "got {r:?}"
        );
        fleet.shutdown();
    }

    #[test]
    fn degraded_die_keeps_serving_with_quality_flag() {
        let fleet = small_fleet();
        assert!(matches!(
            fleet.submit(Request::Inject {
                die: 5,
                kind: InjectKind::DegradeDie
            }),
            Response::Injected { die: 5 }
        ));
        let r = fleet.submit(read(5));
        let Response::Reading {
            quality, d_vtn_mv, ..
        } = r
        else {
            panic!("degraded die must still serve, got {r:?}");
        };
        assert_eq!(quality, Quality::Degraded);
        // Threshold shifts are frozen at calibration in degraded mode.
        let r2 = fleet.submit(read(5));
        let Response::Reading { d_vtn_mv: v2, .. } = r2 else {
            panic!("expected reading, got {r2:?}");
        };
        assert_eq!(d_vtn_mv, v2);

        // Heal restores nominal serving.
        let _ = fleet.submit(Request::Inject {
            die: 5,
            kind: InjectKind::HealDie,
        });
        let healed = fleet.submit(read(5));
        assert!(
            matches!(
                healed,
                Response::Reading {
                    quality: Quality::Nominal,
                    ..
                }
            ),
            "got {healed:?}"
        );
        fleet.shutdown();
    }

    #[test]
    fn health_is_served_without_touching_queues() {
        let fleet = small_fleet();
        let h = fleet.health();
        assert_eq!(h.shards.len(), 2);
        assert!(h.shards.iter().all(|s| s.state == "up"));
        assert_eq!(h.shards.iter().map(|s| s.dies).sum::<u64>(), 8);
        fleet.shutdown();
    }
}
