//! A minimal blocking client for the fleet daemon — used by the CI smoke,
//! the chaos campaign, and the load generator. One TCP connection, one
//! in-flight request at a time.

use crate::protocol::{
    begin_frame, finish_frame, read_frame_into, FrameError, ProtoError, Request, Response,
    MAX_FRAME,
};
use crate::wire::{self, WIRE_MAGIC, WIRE_V1, WIRE_V2};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(io::Error),
    /// The server's frame was malformed.
    Frame(FrameError),
    /// The server's payload did not parse as a response.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client framing: {e}"),
            ClientError::Proto(e) => write!(f, "client protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to the daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Negotiated wire version: [`WIRE_V2`] after a successful binary
    /// handshake, [`WIRE_V1`] (JSON) otherwise.
    version: u8,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7421"`) speaking JSON (v1) —
    /// the codec every daemon understands.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            version: WIRE_V1,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
        })
    }

    /// Connects and negotiates the v2 binary protocol: sends
    /// [`WIRE_MAGIC`] + [`WIRE_V2`] and adopts whatever version the daemon
    /// answers with (a pre-v2 daemon that rejects the hello outright
    /// surfaces as an error, not a silent downgrade — it never sent a
    /// magic back).
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures; [`ClientError::Frame`] if
    /// the server's hello is malformed.
    pub fn connect_v2(addr: &str) -> Result<Self, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut hello = [0u8; 5];
        hello[..4].copy_from_slice(&WIRE_MAGIC);
        hello[4] = WIRE_V2;
        stream.write_all(&hello)?;
        stream.flush()?;
        let mut reply = [0u8; 5];
        stream.read_exact(&mut reply)?;
        if reply[..4] != WIRE_MAGIC {
            return Err(ClientError::Frame(FrameError::Truncated { missing: 0 }));
        }
        let version = if reply[4] >= WIRE_V2 {
            WIRE_V2
        } else {
            WIRE_V1
        };
        Ok(Client {
            stream,
            version,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
        })
    }

    /// The wire version this connection negotiated ([`WIRE_V1`] or
    /// [`WIRE_V2`]).
    #[must_use]
    pub fn wire_version(&self) -> u8 {
        self.version
    }

    /// Bounds how long [`Client::call`] waits for the reply frame.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_reply_timeout(&mut self, t: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(t))?;
        Ok(())
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Typed client errors; a server-side refusal is an `Ok` carrying
    /// [`Response::Rejected`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        begin_frame(&mut self.wbuf);
        if self.version >= WIRE_V2 {
            wire::encode_request(req, &mut self.wbuf);
        } else {
            self.wbuf.extend_from_slice(req.to_json().as_bytes());
        }
        finish_frame(&mut self.wbuf)?;
        self.stream.write_all(&self.wbuf)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Writes raw bytes on the wire, bypassing framing — for fuzz/chaos
    /// tests that need to send garbage a well-formed client never would.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame without sending anything (pairs with
    /// [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// Typed client errors.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        read_frame_into(&mut self.stream, MAX_FRAME, &mut self.rbuf).map_err(ClientError::Frame)?;
        if self.version >= WIRE_V2 {
            wire::decode_response(&self.rbuf).map_err(ClientError::Proto)
        } else {
            Response::from_json_bytes(&self.rbuf).map_err(ClientError::Proto)
        }
    }
}
