//! A minimal blocking client for the fleet daemon — used by the CI smoke,
//! the chaos campaign, and the load generator. One TCP connection, one
//! in-flight request at a time.

use crate::protocol::{
    read_frame, write_frame, FrameError, ProtoError, Request, Response, MAX_FRAME,
};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(io::Error),
    /// The server's frame was malformed.
    Frame(FrameError),
    /// The server's payload did not parse as a response.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client framing: {e}"),
            ClientError::Proto(e) => write!(f, "client protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to the daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7421"`).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long [`Client::call`] waits for the reply frame.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_reply_timeout(&mut self, t: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(t))?;
        Ok(())
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// Typed client errors; a server-side refusal is an `Ok` carrying
    /// [`Response::Rejected`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, req.to_json().as_bytes())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME).map_err(ClientError::Frame)?;
        Response::from_json_bytes(&payload).map_err(ClientError::Proto)
    }

    /// Writes raw bytes on the wire, bypassing framing — for fuzz/chaos
    /// tests that need to send garbage a well-formed client never would.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        use io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame without sending anything (pairs with
    /// [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// Typed client errors.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream, MAX_FRAME).map_err(ClientError::Frame)?;
        Response::from_json_bytes(&payload).map_err(ClientError::Proto)
    }
}
