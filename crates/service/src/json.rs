//! Minimal hand-rolled JSON — the wire format of the fleet protocol.
//!
//! Zero-dependency by design (the workspace allows only `std`): a
//! recursive-descent parser with explicit depth and size bounds, and a
//! writer that escapes control characters and renders non-finite numbers
//! as `null` (JSON has no NaN/∞). Objects are ordered `(key, value)`
//! vectors — lookups are linear, which is exactly right for frames with a
//! handful of fields, and serialization is deterministic.

use std::fmt;

/// Maximum nesting depth [`parse`] accepts. Protocol frames are flat
/// (depth ≤ 3); the bound exists so a hostile frame of `[[[[…` cannot
/// overflow the parser's stack.
pub const MAX_DEPTH: usize = 16;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly
    /// (rejects fractions, negatives, and magnitudes beyond 2⁵³ where
    /// `f64` stops being exact).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&x) {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a byte sequence failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte (or end of input) at `offset`.
    Unexpected {
        /// Byte offset of the error.
        offset: usize,
        /// What the parser was looking at.
        context: &'static str,
    },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Trailing non-whitespace after the top-level value.
    TrailingData {
        /// Offset of the first trailing byte.
        offset: usize,
    },
    /// The input was not valid UTF-8 where a string required it.
    InvalidUtf8,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Unexpected { offset, context } => {
                write!(f, "malformed JSON at byte {offset} ({context})")
            }
            JsonError::TooDeep => write!(f, "JSON nesting deeper than {MAX_DEPTH}"),
            JsonError::TrailingData { offset } => {
                write!(f, "trailing data after JSON value at byte {offset}")
            }
            JsonError::InvalidUtf8 => write!(f, "invalid UTF-8 in JSON string"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value from `bytes`.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte; never
/// panics, whatever the input (see the fuzz suite in
/// `tests/protocol.rs`).
pub fn parse(bytes: &[u8]) -> Result<Value, JsonError> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(JsonError::TrailingData { offset: p.pos });
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, context: &'static str) -> JsonError {
        JsonError::Unexpected {
            offset: self.pos,
            context,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, context: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(context))
        }
    }

    fn eat_keyword(&mut self, kw: &str, context: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(context))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self
                .eat_keyword("true", "keyword")
                .map(|()| Value::Bool(true)),
            Some(b'f') => self
                .eat_keyword("false", "keyword")
                .map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", "keyword").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "object open")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "object colon")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("object separator")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "array open")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("array separator")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "string open")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.eat(b'\\', "surrogate pair")?;
                                self.eat(b'u', "surrogate pair")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // validated in one go).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(JsonError::InvalidUtf8);
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError::InvalidUtf8)?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("unicode escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("unicode escape"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::InvalidUtf8)?;
        let x: f64 = text.parse().map_err(|_| JsonError::Unexpected {
            offset: start,
            context: "number",
        })?;
        if x.is_finite() {
            Ok(Value::Num(x))
        } else {
            // "1e999" parses to +inf — reject rather than smuggle
            // non-finite values past the field bounds.
            Err(JsonError::Unexpected {
                offset: start,
                context: "non-finite number",
            })
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON (no whitespace). Non-finite numbers render as
    /// `null` — they cannot appear in frames built from checked fields.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) if x.is_finite() => write!(f, "{x}"),
            Value::Num(_) => write!(f, "null"),
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Convenience: an object from key/value pairs.
#[must_use]
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(br#"{"op":"read","die":5,"temp_c":-12.5,"deep":null,"ok":true}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("read"));
        assert_eq!(v.get("die").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("temp_c").unwrap().as_f64(), Some(-12.5));
        assert_eq!(v.get("deep"), Some(&Value::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_through_display() {
        let v = obj(vec![
            ("s", Value::Str("a\"b\\c\nd\u{1}é漢".into())),
            ("n", Value::Num(-1.25e-3)),
            ("a", Value::Arr(vec![Value::Bool(false), Value::Null])),
            ("o", obj(vec![("k", Value::Num(2.0))])),
        ]);
        assert_eq!(parse(v.to_string().as_bytes()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        for bad in [
            &b"{"[..],
            b"{\"a\":}",
            b"[1,]",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"tru",
            b"01x",
            b"1e999",
            b"\"\\u12\"",
            b"\"\\ud800\"",
            b"",
            b"\xff\xfe",
            b"{\"a\":1}extra",
        ] {
            assert!(parse(bad).is_err(), "accepted {:?}", bad);
        }
    }

    #[test]
    fn depth_bound_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(deep.as_bytes()), Err(JsonError::TooDeep));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn as_u64_rejects_inexact_integers() {
        assert_eq!(Value::Num(5.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1e300).as_u64(), None);
        assert_eq!(Value::Num(42.0).as_u64(), Some(42));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(br#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }
}
