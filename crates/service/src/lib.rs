//! Fault-tolerant wafer-fleet telemetry service.
//!
//! Exposes a population of virtual process-temperature sensor dies (the
//! SOCC 2012 design the rest of the workspace models) over a hardened TCP
//! protocol, with the failure model a production telemetry plane needs:
//!
//! * **Supervision** — dies are striped across worker threads, each run
//!   under `catch_unwind` by a supervisor that restarts it with bounded
//!   exponential backoff; a shard that exhausts its restart budget goes
//!   `Dead` and is drained with typed rejections while the rest of the
//!   fleet keeps serving ([`fleet`]).
//! * **Admission control** — bounded per-shard queues, per-request
//!   deadlines, typed `timeout`/`overloaded`/`shard_down` rejections, and
//!   priority-aware shedding (lowest-priority reads go first). A request
//!   is always *answered*; it is never dropped silently ([`fleet`],
//!   [`shard`]).
//! * **Protocol hardening** — length-prefixed frames with a hard
//!   frame-size bound enforced before allocation, per-field bounds on
//!   every request, slow-client write timeouts, and idle-connection
//!   reaping ([`protocol`], [`server`]). Two codecs share that framing:
//!   JSON (v1, the fallback every client speaks) and a fixed-width binary
//!   codec negotiated by magic at connect (v2, [`wire`]).
//! * **Graceful degradation** — a die whose process readout dies keeps
//!   serving temperature-only readings carrying an explicit
//!   `"degraded"` quality flag ([`shard`]).
//!
//! Zero dependencies beyond the workspace: `std::net` sockets, an
//! in-tree bounded JSON parser ([`json`]), and the in-tree
//! [`ptsim_obs`] metrics that back the fleet-wide `/health` summary.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod fleet;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{Client, ClientError};
pub use fleet::{Fleet, FleetConfig};
pub use protocol::{
    BatchItem, FrameError, HealthWire, InjectKind, ProtoError, Quality, Rejection, Request,
    Response, MAX_BATCH, MAX_FRAME,
};
pub use server::{Server, ServerConfig};
pub use shard::{ShardState, SvcMetrics};
pub use wire::{WIRE_MAGIC, WIRE_V1, WIRE_V2};
