//! `ptsim-fleetd` — the wafer-fleet telemetry daemon.
//!
//! ```text
//! PTSIM_FLEET_ADDR=127.0.0.1:0   bind address (0 = ephemeral port)
//! PTSIM_FLEET_DIES=64            virtual dies
//! PTSIM_FLEET_SHARDS=4           supervised worker shards
//! PTSIM_FLEET_SEED=0x5eed        base seed of the per-die streams
//! PTSIM_FLEET_IDLE_SECS=30      idle-connection reap timeout
//! PTSIM_FLEET_COALESCE=64       reads one worker wake may coalesce (1 = off)
//! ```
//!
//! Prints `ptsim-fleetd listening on <addr>` once bound (scripts parse
//! this line for the resolved ephemeral port), then serves until a
//! `{"op":"shutdown"}` frame arrives.

use ptsim_service::{Fleet, FleetConfig, Server, ServerConfig};
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        })
        .unwrap_or(default)
}

fn main() {
    let addr = std::env::var("PTSIM_FLEET_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let fleet_cfg = FleetConfig {
        n_dies: env_u64("PTSIM_FLEET_DIES", 64),
        n_shards: env_u64("PTSIM_FLEET_SHARDS", 4),
        base_seed: env_u64("PTSIM_FLEET_SEED", 0x5eed),
        coalesce_max: env_u64("PTSIM_FLEET_COALESCE", 64).clamp(1, 1024) as usize,
        ..FleetConfig::default()
    };
    let server_cfg = ServerConfig {
        idle_timeout: Duration::from_secs(env_u64("PTSIM_FLEET_IDLE_SECS", 30)),
        ..ServerConfig::default()
    };
    let fleet = Fleet::start(fleet_cfg);
    let server = match Server::bind(fleet, &addr, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ptsim-fleetd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("ptsim-fleetd listening on {}", server.local_addr());
    server.join();
}
