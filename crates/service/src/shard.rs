//! One shard of the fleet: a bounded job queue plus the worker that owns a
//! stripe of dies.
//!
//! The worker keeps a lazily-built, calibrated [`PtSensor`] per owned die
//! (prototype clone + `die_rng(base_seed, die)` — the same deterministic
//! per-die seeding the Monte-Carlo driver uses, so a die reads the same
//! values no matter which fleet boot serves it). Every conversion runs
//! inside `catch_unwind`: a panicking die answers with a typed
//! [`Rejection::WorkerPanicked`](crate::protocol::Rejection) and has its
//! slot rebuilt, while the shard keeps serving its other dies. Chaos flags
//! (degrade/stall/panic) live in the *shared* state, outside the worker,
//! precisely so they survive a worker restart — a degraded die must stay
//! degraded across a crash, or the chaos campaign could never observe
//! "recovered but still degraded" serving.

use crate::protocol::{BatchItem, InjectKind, Quality, Rejection, Request, Response};
use ptsim_core::pipeline::{read_group, read_group_with};
use ptsim_core::{HealthStatus, PtSensor, Reading, Scratch, SensorError, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::Celsius;
use ptsim_mc::die::{DieSample, DieSite};
use ptsim_mc::driver::die_rng;
use ptsim_mc::model::{DieSampler, VariationModel};
use ptsim_obs::{CounterId, GaugeId, HistogramId, Registry};
use ptsim_rng::Pcg64;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Recovers the guarded value whether or not the mutex is poisoned. Shard
/// state must stay reachable after a worker panic — that is the whole
/// point of the supervision tree — so poisoning is never fatal here.
pub(crate) fn recover<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Service metric ids over one [`Registry`]. Every holder (each shard, and
/// the fleet's connection-level registry) registers the same names, so
/// [`Registry::merge`] aggregates them for `/health`.
#[derive(Debug)]
pub struct SvcMetrics {
    /// The backing registry.
    pub reg: Registry,
    /// Requests admitted into a queue.
    pub requests: CounterId,
    /// Requests answered with a reading/outcome.
    pub served: CounterId,
    /// Served readings carrying `quality == "degraded"`.
    pub degraded_served: CounterId,
    /// Typed `timeout` rejections.
    pub rej_timeout: CounterId,
    /// Typed `overloaded` rejections (admission-control sheds).
    pub rej_overloaded: CounterId,
    /// Typed `shard_down` rejections.
    pub rej_shard_down: CounterId,
    /// Typed `bad_request` rejections (malformed frames, bound violations).
    pub rej_bad_request: CounterId,
    /// Typed `worker_panicked` rejections (isolated conversion panics).
    pub rej_worker_panicked: CounterId,
    /// Typed `conversion_failed` rejections (sensor-level errors).
    pub rej_conversion_failed: CounterId,
    /// Jobs dropped at dequeue because their deadline had already passed
    /// (the client was independently answered with `timeout`).
    pub deadline_drops: CounterId,
    /// Worker-thread panics that escaped a request (supervisor-visible).
    pub worker_panics: CounterId,
    /// Worker restarts performed by the supervisor.
    pub restarts: CounterId,
    /// Accepted connections.
    pub conns: CounterId,
    /// Frames refused as malformed/truncated.
    pub bad_frames: CounterId,
    /// Frames refused for an oversize length prefix.
    pub oversize_frames: CounterId,
    /// Connections dropped because the client read too slowly.
    pub slow_client_drops: CounterId,
    /// Connections reaped for idleness.
    pub idle_reaps: CounterId,
    /// Connections that negotiated the v2 binary protocol.
    pub wire_v2_conns: CounterId,
    /// Frames served over the v2 binary protocol.
    pub wire_v2_frames: CounterId,
    /// High-water mark of any shard queue.
    pub queue_peak: GaugeId,
    /// Queue-to-reply latency of served requests, µs.
    pub latency_us: HistogramId,
    /// How many reads a *grouped* worker wake drained into one
    /// lane-grouped conversion. Solo wakes are not recorded (keeping the
    /// single-read hot path lock-count unchanged), so any sample here is
    /// ≥ 2 and proof the scheduler is grouping; compare the sample count
    /// against `svc.served` for the grouped fraction.
    pub coalesce_width: HistogramId,
}

impl SvcMetrics {
    /// Registers the full service metric set on a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let requests = reg.counter("svc.requests");
        let served = reg.counter("svc.served");
        let degraded_served = reg.counter("svc.degraded_served");
        let rej_timeout = reg.counter("svc.rejected.timeout");
        let rej_overloaded = reg.counter("svc.rejected.overloaded");
        let rej_shard_down = reg.counter("svc.rejected.shard_down");
        let rej_bad_request = reg.counter("svc.rejected.bad_request");
        let rej_worker_panicked = reg.counter("svc.rejected.worker_panicked");
        let rej_conversion_failed = reg.counter("svc.rejected.conversion_failed");
        let deadline_drops = reg.counter("svc.deadline_drops");
        let worker_panics = reg.counter("svc.worker_panics");
        let restarts = reg.counter("svc.restarts");
        let conns = reg.counter("svc.connections");
        let bad_frames = reg.counter("svc.bad_frames");
        let oversize_frames = reg.counter("svc.oversize_frames");
        let slow_client_drops = reg.counter("svc.slow_client_drops");
        let idle_reaps = reg.counter("svc.idle_reaps");
        let wire_v2_conns = reg.counter("svc.wire_v2_conns");
        let wire_v2_frames = reg.counter("svc.wire_v2_frames");
        let queue_peak = reg.gauge("svc.queue_peak");
        let latency_us = reg.histogram("svc.latency_us", 0.0, 1.0e6, 48);
        // Unit-width bins over 0..=64 so every integer group width lands
        // exactly in bin `width` (no clamping at the default cap of 64).
        let coalesce_width = reg.histogram("svc.coalesce_width", 0.0, 65.0, 65);
        SvcMetrics {
            reg,
            requests,
            served,
            degraded_served,
            rej_timeout,
            rej_overloaded,
            rej_shard_down,
            rej_bad_request,
            rej_worker_panicked,
            rej_conversion_failed,
            deadline_drops,
            worker_panics,
            restarts,
            conns,
            bad_frames,
            oversize_frames,
            slow_client_drops,
            idle_reaps,
            wire_v2_conns,
            wire_v2_frames,
            queue_peak,
            latency_us,
            coalesce_width,
        }
    }
}

impl Default for SvcMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Supervision state of a shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The worker is serving.
    Up,
    /// The worker crashed and the supervisor is backing off before a
    /// restart; queued work waits.
    Restarting,
    /// The restart budget is exhausted; the supervisor drains the queue
    /// with typed `shard_down` rejections.
    Dead,
}

impl ShardState {
    /// Wire name (`"up"` / `"restarting"` / `"dead"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Up => "up",
            ShardState::Restarting => "restarting",
            ShardState::Dead => "dead",
        }
    }
}

/// Mutable supervision record of one shard.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Current state.
    pub state: ShardState,
    /// Restarts so far.
    pub restarts: u64,
    /// Message of the most recent escaped panic, if any.
    pub last_panic: Option<String>,
}

/// Chaos flags of one die. Kept outside the worker so they survive
/// restarts.
#[derive(Debug, Clone, Copy, Default)]
pub struct DieFlags {
    /// Serve degraded temperature-only readings (dead PSRO bank).
    pub degraded: bool,
    /// Panic inside the next conversion (one-shot).
    pub panic_conversion: bool,
    /// Panic *outside* the per-request boundary on the next job (one-shot)
    /// — exercises the supervisor.
    pub panic_worker: bool,
    /// Stall this many ms before serving the next job (one-shot).
    pub stall_ms: u64,
}

/// One queued request with its reply channel and deadline.
#[derive(Debug)]
pub struct Job {
    /// The request (only die-addressed ops are queued).
    pub req: Request,
    /// Shedding priority (higher survives overload longer).
    pub priority: u8,
    /// Absolute deadline; the fleet stops waiting at this instant and the
    /// worker discards the job if it is only dequeued afterwards.
    pub deadline: Instant,
    /// When the job was admitted (for the latency histogram).
    pub enqueued: Instant,
    /// Where the answer goes. A send failure means the client stopped
    /// waiting; it is never an error.
    pub reply: mpsc::Sender<Response>,
}

/// Static configuration of one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// This shard's index.
    pub shard_id: u64,
    /// Total shards in the fleet (die `d` belongs to shard
    /// `d % n_shards`).
    pub n_shards: u64,
    /// Total dies in the fleet.
    pub n_dies: u64,
    /// Bounded queue depth; admission control sheds beyond it.
    pub queue_depth: usize,
    /// Base seed of the fleet's deterministic per-die streams.
    pub base_seed: u64,
    /// How many queued single-die reads one worker wake may drain into a
    /// lane-grouped conversion (1 disables coalescing). Purely a
    /// scheduling knob: dies are independently calibrated with independent
    /// RNG streams, so a coalesced read is bit-identical to the same read
    /// served alone.
    pub coalesce_max: usize,
}

impl ShardConfig {
    /// Dies this shard owns.
    #[must_use]
    pub fn owned_dies(&self) -> u64 {
        if self.n_dies == 0 {
            return 0;
        }
        let full = self.n_dies / self.n_shards;
        let extra = u64::from(self.n_dies % self.n_shards > self.shard_id);
        full + extra
    }

    fn local_index(&self, die: u64) -> usize {
        (die / self.n_shards) as usize
    }
}

/// State shared between a shard's worker, its supervisor, and the fleet
/// front-end.
#[derive(Debug)]
pub struct ShardShared {
    /// Static configuration.
    pub cfg: ShardConfig,
    /// The bounded job queue.
    pub queue: Mutex<VecDeque<Job>>,
    /// Signals the worker when work arrives or shutdown begins.
    pub cv: Condvar,
    /// Supervision record.
    pub status: Mutex<ShardStatus>,
    /// Per-owned-die chaos flags, indexed by local die index.
    pub flags: Mutex<Vec<DieFlags>>,
    /// This shard's metric registry (merged fleet-wide for `/health`).
    pub metrics: Mutex<SvcMetrics>,
    /// Set once at fleet shutdown.
    pub shutdown: AtomicBool,
}

impl ShardShared {
    /// Fresh shared state for one shard.
    #[must_use]
    pub fn new(cfg: ShardConfig) -> Self {
        let owned = cfg.owned_dies() as usize;
        ShardShared {
            cfg,
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_depth)),
            cv: Condvar::new(),
            status: Mutex::new(ShardStatus {
                state: ShardState::Up,
                restarts: 0,
                last_panic: None,
            }),
            flags: Mutex::new(vec![DieFlags::default(); owned]),
            metrics: Mutex::new(SvcMetrics::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    fn count(&self, pick: impl Fn(&SvcMetrics) -> CounterId) {
        let mut m = recover(self.metrics.lock());
        let id = pick(&m);
        m.reg.inc(id);
    }
}

/// One die's live serving state inside a worker.
struct DieSlot {
    sensor: PtSensor,
    die: DieSample,
    rng: Pcg64,
    calib_quality: Quality,
}

/// Per-worker context, rebuilt from shared state after every restart.
/// Construction is deliberately lazy per die: a 4096-die fleet boots in
/// milliseconds and pays each die's calibration on first touch.
pub struct WorkerCtx {
    prototype: PtSensor,
    sampler: DieSampler,
    boot_temp: Celsius,
    slots: Vec<Option<DieSlot>>,
    /// Heap buffers of the lane kernel, reused across coalesced groups so
    /// a warm worker converts without touching the allocator.
    scratch: Scratch,
    /// Result buffer of [`read_group_with`], reused alongside `scratch`.
    group_results: Vec<Result<Reading, SensorError>>,
}

impl WorkerCtx {
    /// Builds the worker's prototype sensor and die sampler.
    ///
    /// # Panics
    ///
    /// Panics if the default 65 nm sensor cannot be constructed — a build
    /// configuration error the supervisor surfaces as a dead shard, not a
    /// recoverable request failure.
    #[must_use]
    pub fn new(cfg: &ShardConfig) -> Self {
        let spec = SensorSpec::default_65nm();
        let boot_temp = spec.calib_temp;
        let prototype = PtSensor::new(Technology::n65(), spec)
            .expect("default 65nm sensor spec must construct");
        let model = VariationModel::new(&Technology::n65());
        WorkerCtx {
            prototype,
            sampler: model.sampler(),
            boot_temp,
            slots: (0..cfg.owned_dies()).map(|_| None).collect(),
            scratch: Scratch::new(),
            group_results: Vec::new(),
        }
    }

    /// The calibrated slot for `die`, built on first touch. `degraded`
    /// re-applies a persistent degrade flag after a rebuild.
    fn slot(
        &mut self,
        cfg: &ShardConfig,
        die: u64,
        degraded: bool,
    ) -> Result<&mut DieSlot, ptsim_core::SensorError> {
        let idx = cfg.local_index(die);
        if self.slots[idx].is_none() {
            let mut rng = die_rng(cfg.base_seed, die);
            let sample = self.sampler.sample_die_with_id(&mut rng, die);
            let mut sensor = self.prototype.clone();
            let boot = SensorInputs::new(&sample, DieSite::CENTER, self.boot_temp);
            let outcome = sensor.calibrate(&boot, &mut rng)?;
            if degraded {
                sensor.inject_faults(degrade_plan());
            }
            self.slots[idx] = Some(DieSlot {
                sensor,
                die: sample,
                rng,
                calib_quality: quality_of(outcome.health.status()),
            });
        }
        Ok(self.slots[idx].as_mut().expect("slot just built"))
    }
}

/// The fault plan behind [`InjectKind::DegradeDie`]: a bank-wide dead
/// PSRO-N stage. The sensor detects it, freezes the threshold-shift
/// outputs at their calibration values, and keeps serving temperature with
/// an explicit degraded flag — exactly the graceful-degradation contract.
fn degrade_plan() -> ptsim_faults::FaultPlan {
    ptsim_faults::FaultPlan::single(ptsim_faults::Fault::DeadRoStage {
        channel: ptsim_faults::Channel::PsroN,
        replica: ptsim_faults::ReplicaSel::All,
    })
}

fn quality_of(status: HealthStatus) -> Quality {
    match status {
        HealthStatus::Nominal => Quality::Nominal,
        HealthStatus::Recovered => Quality::Recovered,
        HealthStatus::Degraded => Quality::Degraded,
    }
}

/// The worker body: dequeues jobs until shutdown. The supervisor wraps
/// each invocation in `catch_unwind`; `ctx` lives *outside* that boundary
/// so an escaped panic discards it (`None`) and the next incarnation
/// rebuilds every touched die from the deterministic seeds.
pub fn worker_loop(shared: &ShardShared, ctx: &mut Option<WorkerCtx>) {
    let mut group: Vec<Job> = Vec::new();
    loop {
        group.clear();
        {
            let mut q = recover(shared.queue.lock());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    group.push(j);
                    break;
                }
                let (guard, _) = recover(shared.cv.wait_timeout(q, Duration::from_millis(25)));
                q = guard;
            }
            // Opportunistic coalescing: when the wake lands on a single-die
            // read, drain the longest queue *prefix* of further reads to
            // distinct dies (up to `coalesce_max`) into one lane-grouped
            // conversion. Stopping at the first non-read or repeated die
            // preserves total queue order — in particular two reads of the
            // same die still advance that die's RNG stream in admission
            // order, which is what keeps a coalesced read bit-identical to
            // the same read served alone.
            if matches!(group[0].req, Request::Read { .. }) {
                while group.len() < shared.cfg.coalesce_max.max(1) {
                    let Some(next) = q.front() else { break };
                    let Request::Read { die, .. } = next.req else {
                        break;
                    };
                    if group
                        .iter()
                        .any(|j| matches!(j.req, Request::Read { die: d, .. } if d == die))
                    {
                        break;
                    }
                    group.push(q.pop_front().expect("front() was Some under the lock"));
                }
            }
        }
        let worker = ctx.get_or_insert_with(|| WorkerCtx::new(&shared.cfg));
        if group.len() == 1 {
            serve(
                shared,
                worker,
                group.pop().expect("group holds the one job"),
            );
        } else {
            serve_read_group(shared, worker, &mut group);
        }
    }
}

/// Serves one job. Panics injected with
/// [`InjectKind::PanicWorker`] escape this function (by design — they
/// exercise the supervisor); everything else is isolated per request.
fn serve(shared: &ShardShared, worker: &mut WorkerCtx, job: Job) {
    let die = match job.req {
        Request::Read { die, .. }
        | Request::Calibrate { die, .. }
        | Request::Inject { die, .. } => die,
        // A batch takes its one-shot chaos flags from its anchor die.
        Request::BatchRead { die0, .. } => die0,
        // Ping carries no die; Health/Shutdown are answered by the fleet
        // front-end and never queued.
        _ => 0,
    };
    let idx = shared.cfg.local_index(die);
    let flags = {
        let mut all = recover(shared.flags.lock());
        let f = &mut all[idx];
        let taken = *f;
        // One-shot flags arm exactly one job.
        f.panic_conversion = false;
        f.panic_worker = false;
        f.stall_ms = 0;
        taken
    };
    if flags.stall_ms > 0 {
        std::thread::sleep(Duration::from_millis(flags.stall_ms));
    }
    if flags.panic_worker {
        shared.count(|m| m.worker_panics);
        panic!("injected worker panic (shard {})", shared.cfg.shard_id);
    }
    if Instant::now() >= job.deadline {
        // The fleet already answered the client with a typed timeout;
        // record the late discard so "rejected vs silently dropped"
        // stays auditable.
        shared.count(|m| m.deadline_drops);
        return;
    }

    let response = match job.req {
        Request::Read { die, temp_c, .. } => {
            let degraded = flags.degraded;
            match worker.slot(&shared.cfg, die, degraded) {
                Err(e) => Response::rejected(Rejection::ConversionFailed, e.to_string()),
                Ok(slot) => {
                    let inputs = SensorInputs::new(&slot.die, DieSite::CENTER, Celsius(temp_c));
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        assert!(
                            !flags.panic_conversion,
                            "injected conversion panic (die {die})"
                        );
                        slot.sensor.read(&inputs, &mut slot.rng)
                    }));
                    match outcome {
                        Err(_) => {
                            // The slot may be mid-update; rebuild it from
                            // the deterministic seed on next touch.
                            worker.slots[idx] = None;
                            shared.count(|m| m.rej_worker_panicked);
                            Response::rejected(
                                Rejection::WorkerPanicked,
                                format!("conversion on die {die} panicked; die state rebuilt"),
                            )
                        }
                        Ok(Err(e)) => {
                            shared.count(|m| m.rej_conversion_failed);
                            Response::rejected(Rejection::ConversionFailed, e.to_string())
                        }
                        Ok(Ok(reading)) => {
                            let quality = quality_of(reading.health.status());
                            {
                                let mut m = recover(shared.metrics.lock());
                                let served = m.served;
                                m.reg.inc(served);
                                if quality == Quality::Degraded {
                                    let id = m.degraded_served;
                                    m.reg.inc(id);
                                }
                                let lat = m.latency_us;
                                m.reg
                                    .observe(lat, job.enqueued.elapsed().as_secs_f64() * 1e6);
                            }
                            Response::Reading {
                                die,
                                temp_c: reading.temperature.0,
                                d_vtn_mv: reading.d_vtn.millivolts(),
                                d_vtp_mv: reading.d_vtp.millivolts(),
                                energy_pj: reading.energy.total().picojoules(),
                                quality,
                            }
                        }
                    }
                }
            }
        }
        Request::BatchRead {
            die0,
            count,
            temp_c,
            ..
        } => serve_batch(shared, worker, die0, count, temp_c, flags, job.enqueued),
        Request::Calibrate { die, .. } => {
            // Recalibration rebuilds the slot from scratch (fresh sample of
            // the same deterministic die, fresh calibration).
            worker.slots[idx] = None;
            match worker.slot(&shared.cfg, die, flags.degraded) {
                Err(e) => {
                    shared.count(|m| m.rej_conversion_failed);
                    Response::rejected(Rejection::ConversionFailed, e.to_string())
                }
                Ok(slot) => {
                    let q = slot.calib_quality;
                    shared.count(|m| m.served);
                    Response::Calibrated { die, quality: q }
                }
            }
        }
        Request::Inject { die, kind } => {
            let mut all = recover(shared.flags.lock());
            let f = &mut all[idx];
            match kind {
                InjectKind::DegradeDie => {
                    f.degraded = true;
                    if let Some(slot) = &mut worker.slots[idx] {
                        slot.sensor.inject_faults(degrade_plan());
                    }
                }
                InjectKind::HealDie => {
                    f.degraded = false;
                    if let Some(slot) = &mut worker.slots[idx] {
                        slot.sensor.clear_faults();
                    }
                }
                InjectKind::PanicConversion => f.panic_conversion = true,
                InjectKind::PanicWorker => f.panic_worker = true,
                InjectKind::StallMs(ms) => f.stall_ms = ms,
            }
            drop(all);
            shared.count(|m| m.served);
            Response::Injected { die }
        }
        Request::Ping { pad } => {
            shared.count(|m| m.served);
            Response::Pong {
                pad: "x".repeat(pad as usize),
            }
        }
        Request::Health | Request::Shutdown => {
            Response::rejected(Rejection::BadRequest, "not a shard-addressed op")
        }
    };
    // A failed send means the client already gave up (typed timeout);
    // never an error here.
    let _ = job.reply.send(response);
}

/// Serves a coalesced group of single-die reads (all jobs are
/// `Request::Read` to mutually distinct dies, by construction in
/// [`worker_loop`]). Semantics are job-for-job identical to serving the
/// group sequentially through [`serve`]:
///
/// * each job is deadline-checked at dequeue and silently discarded past
///   its deadline (the fleet already answered the client with a typed
///   timeout), with a `deadline_drops` count;
/// * any one-shot chaos flag (stall/panic) on a group die falls the whole
///   group back to the sequential path, so take-once flag arming stays
///   exactly per-job;
/// * a die that fails to build or convert answers *its own* job with a
///   typed rejection and degrades nothing else;
/// * every reply carries its own queue-to-reply latency sample.
///
/// The payoff is purely in the hot path: one wake, one flags lock, one
/// metrics lock, and one lane-grouped [`read_group_with`] pass over the
/// worker's persistent [`Scratch`] serve the whole group. Grouping cannot
/// perturb any value: dies are independently calibrated, gating draws stay
/// on each die's own deterministic stream, and the Newton solves are
/// RNG-free, so cross-die conversion order is immaterial.
fn serve_read_group(shared: &ShardShared, worker: &mut WorkerCtx, group: &mut Vec<Job>) {
    let cfg = shared.cfg;
    let chaos = {
        let all = recover(shared.flags.lock());
        group.iter().any(|j| {
            let f = &all[cfg.local_index(die_of(&j.req))];
            f.panic_conversion || f.panic_worker || f.stall_ms > 0
        })
    };
    if chaos {
        for job in group.drain(..) {
            serve(shared, worker, job);
        }
        return;
    }

    let now = Instant::now();
    let mut ready: Vec<(Job, u64, f64)> = Vec::with_capacity(group.len());
    for job in group.drain(..) {
        let Request::Read { die, temp_c, .. } = job.req else {
            // Unreachable by construction; route defensively.
            serve(shared, worker, job);
            continue;
        };
        if now >= job.deadline {
            shared.count(|m| m.deadline_drops);
            continue;
        }
        ready.push((job, die, temp_c));
    }
    if ready.is_empty() {
        return;
    }

    let degraded: Vec<bool> = {
        let all = recover(shared.flags.lock());
        ready
            .iter()
            .map(|&(_, die, _)| all[cfg.local_index(die)].degraded)
            .collect()
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut outs: Vec<Option<Result<Reading, String>>> = vec![None; ready.len()];
        for (j, &(_, die, _)) in ready.iter().enumerate() {
            if let Err(e) = worker.slot(&cfg, die, degraded[j]) {
                outs[j] = Some(Err(e.to_string()));
            }
        }
        // Gather the group's slots in ascending local-index order — the
        // only order a single pass of disjoint `&mut` borrows can yield —
        // and remember the permutation back to job order. Cross-die order
        // is irrelevant to the values (independent streams, RNG-free
        // solves).
        let mut order: Vec<usize> = (0..ready.len()).filter(|&j| outs[j].is_none()).collect();
        order.sort_unstable_by_key(|&j| cfg.local_index(ready[j].1));
        let mut sensors: Vec<&PtSensor> = Vec::with_capacity(order.len());
        let mut inputs: Vec<SensorInputs<'_>> = Vec::with_capacity(order.len());
        let mut rngs: Vec<&mut Pcg64> = Vec::with_capacity(order.len());
        let mut k = 0;
        for (idx, slot) in worker.slots.iter_mut().enumerate() {
            if k == order.len() {
                break;
            }
            if idx != cfg.local_index(ready[order[k]].1) {
                continue;
            }
            let DieSlot {
                sensor, die, rng, ..
            } = slot.as_mut().expect("slot built above");
            sensors.push(&*sensor);
            inputs.push(SensorInputs::new(
                &*die,
                DieSite::CENTER,
                Celsius(ready[order[k]].2),
            ));
            rngs.push(rng);
            k += 1;
        }
        read_group_with(
            &sensors,
            &inputs,
            &mut rngs,
            &mut worker.scratch,
            &mut worker.group_results,
        );
        for (k, res) in worker.group_results.drain(..).enumerate() {
            outs[order[k]] = Some(res.map_err(|e| e.to_string()));
        }
        outs
    }));

    match outcome {
        Err(_) => {
            // The panic may have left any touched slot mid-update: rebuild
            // every group die from the deterministic seeds on next touch.
            let mut m = recover(shared.metrics.lock());
            let w = m.coalesce_width;
            m.reg.observe(w, ready.len() as f64);
            for &(_, die, _) in &ready {
                worker.slots[cfg.local_index(die)] = None;
                let id = m.rej_worker_panicked;
                m.reg.inc(id);
            }
            drop(m);
            for (job, die, _) in &ready {
                let _ = job.reply.send(Response::rejected(
                    Rejection::WorkerPanicked,
                    format!("conversion on die {die} panicked; die state rebuilt"),
                ));
            }
        }
        Ok(outs) => {
            let mut m = recover(shared.metrics.lock());
            let w = m.coalesce_width;
            m.reg.observe(w, ready.len() as f64);
            for ((job, die, _), out) in ready.iter().zip(outs) {
                let response = match out.expect("every live job has an outcome") {
                    Ok(reading) => {
                        let quality = quality_of(reading.health.status());
                        let id = m.served;
                        m.reg.inc(id);
                        if quality == Quality::Degraded {
                            let id = m.degraded_served;
                            m.reg.inc(id);
                        }
                        let lat = m.latency_us;
                        m.reg
                            .observe(lat, job.enqueued.elapsed().as_secs_f64() * 1e6);
                        Response::Reading {
                            die: *die,
                            temp_c: reading.temperature.0,
                            d_vtn_mv: reading.d_vtn.millivolts(),
                            d_vtp_mv: reading.d_vtp.millivolts(),
                            energy_pj: reading.energy.total().picojoules(),
                            quality,
                        }
                    }
                    Err(detail) => {
                        let id = m.rej_conversion_failed;
                        m.reg.inc(id);
                        Response::rejected(Rejection::ConversionFailed, detail)
                    }
                };
                let _ = job.reply.send(response);
            }
        }
    }
}

/// The die a queued, die-addressed request targets (`0` for ops the
/// coalescer never groups).
fn die_of(req: &Request) -> u64 {
    match req {
        Request::Read { die, .. }
        | Request::Calibrate { die, .. }
        | Request::Inject { die, .. } => *die,
        Request::BatchRead { die0, .. } => *die0,
        _ => 0,
    }
}

/// The stripe a `batch_read` anchored at `die0` addresses: the `count`
/// lowest-indexed dies ≥ `die0` owned by `die0`'s shard (stride =
/// `n_shards`, so their local indices are consecutive). `None` when the
/// request is empty or runs off the fleet — the fleet validates this
/// before queueing, but a worker never trusts a job it did not admit.
fn stripe(cfg: &ShardConfig, die0: u64, count: u64) -> Option<Vec<u64>> {
    if count == 0 {
        return None;
    }
    let mut dies = Vec::with_capacity(count as usize);
    for k in 0..count {
        let die = k
            .checked_mul(cfg.n_shards)
            .and_then(|offset| die0.checked_add(offset))?;
        if die >= cfg.n_dies {
            return None;
        }
        dies.push(die);
    }
    Some(dies)
}

/// Drains one `batch_read` stripe through the lane-grouped read path:
/// every requested die's slot is built (or reused) lazily, then the whole
/// stripe converts via [`read_group`] — per-die gating draws stay on each
/// die's own deterministic stream while the RNG-free Newton solves run up
/// to `LANES` wide across the stripe. Every item is therefore
/// bit-identical to the plain `read` the die would have served at the same
/// point in its stream, and a failing die yields a per-item rejection,
/// never a failed batch. An escaped panic rebuilds the whole stripe's
/// slots from the deterministic seeds, exactly like the single-read path
/// rebuilds its one slot.
fn serve_batch(
    shared: &ShardShared,
    worker: &mut WorkerCtx,
    die0: u64,
    count: u64,
    temp_c: f64,
    flags: DieFlags,
    enqueued: Instant,
) -> Response {
    let cfg = &shared.cfg;
    let Some(dies) = stripe(cfg, die0, count) else {
        shared.count(|m| m.rej_bad_request);
        return Response::rejected(
            Rejection::BadRequest,
            format!("batch of {count} dies striding from die {die0} leaves this shard"),
        );
    };
    // Persistent degrade flags are honored per die; the one-shot chaos
    // flags (stall, panics) were taken from the anchor die by the caller
    // and cover the batch as a whole.
    let degraded: Vec<bool> = {
        let all = recover(shared.flags.lock());
        dies.iter()
            .map(|&d| all[cfg.local_index(d)].degraded)
            .collect()
    };
    let base_local = cfg.local_index(die0);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(
            !flags.panic_conversion,
            "injected conversion panic (die {die0})"
        );
        let mut build_errs: Vec<Option<String>> = vec![None; dies.len()];
        for (j, &die) in dies.iter().enumerate() {
            if let Err(e) = worker.slot(cfg, die, degraded[j]) {
                build_errs[j] = Some(e.to_string());
            }
        }
        let mut sensors: Vec<&PtSensor> = Vec::with_capacity(dies.len());
        let mut inputs: Vec<SensorInputs<'_>> = Vec::with_capacity(dies.len());
        let mut rngs: Vec<&mut Pcg64> = Vec::with_capacity(dies.len());
        for (j, slot) in worker.slots[base_local..base_local + dies.len()]
            .iter_mut()
            .enumerate()
        {
            if build_errs[j].is_some() {
                continue;
            }
            let DieSlot {
                sensor, die, rng, ..
            } = slot.as_mut().expect("slot built above");
            sensors.push(&*sensor);
            inputs.push(SensorInputs::new(&*die, DieSite::CENTER, Celsius(temp_c)));
            rngs.push(rng);
        }
        let mut results = read_group(&sensors, &inputs, &mut rngs).into_iter();
        dies.iter()
            .zip(&mut build_errs)
            .map(|(&die, build_err)| match build_err.take() {
                Some(detail) => BatchItem::Rejected {
                    die,
                    rejection: Rejection::ConversionFailed,
                    detail,
                },
                None => match results.next().expect("one result per grouped die") {
                    Ok(reading) => BatchItem::Reading {
                        die,
                        temp_c: reading.temperature.0,
                        d_vtn_mv: reading.d_vtn.millivolts(),
                        d_vtp_mv: reading.d_vtp.millivolts(),
                        energy_pj: reading.energy.total().picojoules(),
                        quality: quality_of(reading.health.status()),
                    },
                    Err(e) => BatchItem::Rejected {
                        die,
                        rejection: Rejection::ConversionFailed,
                        detail: e.to_string(),
                    },
                },
            })
            .collect::<Vec<_>>()
    }));
    match outcome {
        Err(_) => {
            // The panic may have left any touched slot mid-update: rebuild
            // the whole stripe from the deterministic seeds on next touch.
            for slot in &mut worker.slots[base_local..base_local + dies.len()] {
                *slot = None;
            }
            shared.count(|m| m.rej_worker_panicked);
            Response::rejected(
                Rejection::WorkerPanicked,
                format!("batch drain anchored at die {die0} panicked; stripe state rebuilt"),
            )
        }
        Ok(items) => {
            let mut m = recover(shared.metrics.lock());
            for item in &items {
                match item {
                    BatchItem::Reading { quality, .. } => {
                        let id = m.served;
                        m.reg.inc(id);
                        if *quality == Quality::Degraded {
                            let id = m.degraded_served;
                            m.reg.inc(id);
                        }
                    }
                    BatchItem::Rejected { .. } => {
                        let id = m.rej_conversion_failed;
                        m.reg.inc(id);
                    }
                }
            }
            let lat = m.latency_us;
            m.reg.observe(lat, enqueued.elapsed().as_secs_f64() * 1e6);
            drop(m);
            Response::Batch { items }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shard_id: u64) -> ShardConfig {
        ShardConfig {
            shard_id,
            n_shards: 4,
            n_dies: 10,
            queue_depth: 8,
            base_seed: 7,
            coalesce_max: 8,
        }
    }

    #[test]
    fn die_striping_covers_the_fleet_exactly_once() {
        let owned: u64 = (0..4).map(|s| cfg(s).owned_dies()).sum();
        assert_eq!(owned, 10);
        // Local indices are dense per shard.
        assert_eq!(cfg(2).local_index(2), 0);
        assert_eq!(cfg(2).local_index(6), 1);
    }

    #[test]
    fn metric_names_merge_across_registries() {
        let mut a = SvcMetrics::new();
        let b = SvcMetrics::new();
        a.reg.inc(a.served);
        a.reg.merge(&b.reg);
        assert_eq!(a.reg.counter_value("svc.served"), Some(1));
    }
}
