//! Wire protocol of the fleet daemon: length-prefixed JSON frames with
//! hard field bounds.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of JSON. Both directions use the same framing; the length
//! prefix is bounded by [`MAX_FRAME`] *before* any allocation, so an
//! adversarial prefix cannot make the server reserve gigabytes. Every
//! request field has an explicit bound ([`MAX_PRIORITY`],
//! [`MAX_DEADLINE_MS`], [`TEMP_BOUNDS`], [`MAX_PAD`]) and violations
//! surface as typed [`ProtoError`]s that the server answers with a
//! [`Rejection::BadRequest`] — malformed input is a *client* failure and
//! must never take a worker down (see the fuzz suite in
//! `tests/protocol.rs`).

use crate::json::{self, obj, Value};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard upper bound on a frame payload, bytes. Checked against the length
/// prefix before any payload allocation.
pub const MAX_FRAME: usize = 64 * 1024;

/// Highest request priority (priorities are `0..=MAX_PRIORITY`; higher is
/// more important, and the load shedder evicts lowest-priority reads
/// first).
pub const MAX_PRIORITY: u8 = 3;

/// Largest accepted per-request deadline, ms.
pub const MAX_DEADLINE_MS: u64 = 300_000;

/// Deadline applied when a request does not carry one, ms.
pub const DEFAULT_DEADLINE_MS: u64 = 5_000;

/// Accepted range of the `temp_c` field (the true junction temperature a
/// read simulates), °C.
pub const TEMP_BOUNDS: (f64, f64) = (-100.0, 400.0);

/// Largest `pad` a ping may request, bytes.
pub const MAX_PAD: u64 = 32 * 1024;

/// Largest `count` a `batch_read` may request. Sized so a full batch of
/// reading items (≲190 bytes each on the wire) always fits one
/// [`MAX_FRAME`] response frame.
pub const MAX_BATCH: u64 = 256;

/// One request frame, already bounds-checked.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Convert once on `die` at true junction temperature `temp_c`.
    Read {
        /// Target die index.
        die: u64,
        /// True junction temperature the conversion simulates, °C.
        temp_c: f64,
        /// Shedding priority, `0..=MAX_PRIORITY` (higher survives longer).
        priority: u8,
        /// Deadline budget, ms.
        deadline_ms: u64,
    },
    /// Convert a stripe of dies on one shard in a single frame: the
    /// targets are `die0, die0+S, die0+2S, …` where `S` is the fleet's
    /// shard count — i.e. the `count` lowest-indexed dies ≥ `die0` owned
    /// by `die0`'s shard. The shard drains the whole stripe through the
    /// lane-parallel solve kernel and answers with one item per die, in
    /// die order; a failing die yields a per-item rejection, never a
    /// failed batch.
    BatchRead {
        /// First die of the stripe (also selects the shard).
        die0: u64,
        /// Stripe length, `1..=MAX_BATCH`.
        count: u64,
        /// True junction temperature every die simulates, °C.
        temp_c: f64,
        /// Shedding priority, `0..=MAX_PRIORITY`.
        priority: u8,
        /// Deadline budget for the whole batch, ms.
        deadline_ms: u64,
    },
    /// Re-run the boot-time self-calibration on `die`.
    Calibrate {
        /// Target die index.
        die: u64,
        /// Deadline budget, ms.
        deadline_ms: u64,
    },
    /// Fleet-wide health summary (served even when every shard is dead).
    Health,
    /// Echo with `pad` bytes of payload — protocol plumbing for timeout
    /// and throughput tests.
    Ping {
        /// Response padding size, bytes (`0..=MAX_PAD`).
        pad: u64,
    },
    /// Chaos hook: perturb one die or its shard worker.
    Inject {
        /// Target die index.
        die: u64,
        /// What to inject.
        kind: InjectKind,
    },
    /// Begin graceful shutdown.
    Shutdown,
}

/// Chaos-injection kinds understood by [`Request::Inject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Kill the die's PSRO bank: subsequent reads serve degraded
    /// temperature-only values with an explicit quality flag.
    DegradeDie,
    /// Undo [`InjectKind::DegradeDie`].
    HealDie,
    /// The die's next conversion panics *inside* the per-request isolation
    /// boundary — answered with a typed rejection, shard stays up.
    PanicConversion,
    /// The shard's worker thread panics *outside* the per-request boundary
    /// — exercises supervision: backoff restart or, past the budget, Dead.
    PanicWorker,
    /// The worker stalls this many ms before serving the next request.
    StallMs(u64),
}

impl InjectKind {
    fn name(self) -> &'static str {
        match self {
            InjectKind::DegradeDie => "degrade",
            InjectKind::HealDie => "heal",
            InjectKind::PanicConversion => "panic_conversion",
            InjectKind::PanicWorker => "panic_worker",
            InjectKind::StallMs(_) => "stall",
        }
    }
}

/// Reading quality flag, mirroring
/// [`HealthStatus`](ptsim_core::HealthStatus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Full-accuracy, nothing anomalous.
    Nominal,
    /// A fault was detected and masked; values are full-accuracy.
    Recovered,
    /// Reduced mode (e.g. temperature-only with a dead PSRO bank) —
    /// reduced accuracy guarantees, flagged, still served.
    Degraded,
}

impl Quality {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Quality::Nominal => "nominal",
            Quality::Recovered => "recovered",
            Quality::Degraded => "degraded",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "nominal" => Some(Quality::Nominal),
            "recovered" => Some(Quality::Recovered),
            "degraded" => Some(Quality::Degraded),
            _ => None,
        }
    }
}

/// Why a request was refused. Every refusal is typed — the one thing the
/// service never does is drop a request on the floor or serve a corrupted
/// value silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The deadline passed before (or while) the request was served.
    Timeout,
    /// Admission control shed the request: its shard's queue was full of
    /// same-or-higher-priority work.
    Overloaded,
    /// The target shard is restarting after a crash or permanently dead.
    ShardDown,
    /// The frame was malformed or a field violated its bounds.
    BadRequest,
    /// The die's conversion panicked inside the isolation boundary.
    WorkerPanicked,
    /// The conversion failed with a typed sensor error.
    ConversionFailed,
}

impl Rejection {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rejection::Timeout => "timeout",
            Rejection::Overloaded => "overloaded",
            Rejection::ShardDown => "shard_down",
            Rejection::BadRequest => "bad_request",
            Rejection::WorkerPanicked => "worker_panicked",
            Rejection::ConversionFailed => "conversion_failed",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "timeout" => Some(Rejection::Timeout),
            "overloaded" => Some(Rejection::Overloaded),
            "shard_down" => Some(Rejection::ShardDown),
            "bad_request" => Some(Rejection::BadRequest),
            "worker_panicked" => Some(Rejection::WorkerPanicked),
            "conversion_failed" => Some(Rejection::ConversionFailed),
            _ => None,
        }
    }
}

/// Health summary of one shard, as serialized into a health response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealthWire {
    /// Shard index.
    pub id: u64,
    /// `"up"`, `"restarting"`, or `"dead"`.
    pub state: String,
    /// Worker restarts so far.
    pub restarts: u64,
    /// Requests currently queued.
    pub queue_len: u64,
    /// Dies this shard owns.
    pub dies: u64,
}

/// Fleet-wide health summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthWire {
    /// Per-shard states.
    pub shards: Vec<ShardHealthWire>,
    /// Merged service counters (name, value), in registration order.
    pub counters: Vec<(String, u64)>,
    /// Milliseconds since the fleet started.
    pub uptime_ms: u64,
    /// Coalescing budget in force: how many queued reads one worker wake
    /// may drain into a single lane-grouped conversion. Operators confirm
    /// the scheduler is actually grouping by reading this next to the
    /// derived `svc.coalesced_wakes` / `svc.coalesced_reads` counters.
    pub coalesce_max: u64,
    /// Highest wire-protocol version this daemon negotiates (`2` = the
    /// binary codec; JSON is always available as v1).
    pub wire_version: u64,
}

/// One die's outcome inside a [`Response::Batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The die converted (same fields as [`Response::Reading`]).
    Reading {
        /// Die that converted.
        die: u64,
        /// Sensor-reported temperature, °C.
        temp_c: f64,
        /// Tracked NMOS threshold shift, mV.
        d_vtn_mv: f64,
        /// Tracked PMOS threshold shift, mV.
        d_vtp_mv: f64,
        /// Conversion energy, pJ.
        energy_pj: f64,
        /// Quality flag.
        quality: Quality,
    },
    /// The die's conversion was refused; the rest of the batch still
    /// serves.
    Rejected {
        /// Die that failed.
        die: u64,
        /// Why.
        rejection: Rejection,
        /// Human-readable detail.
        detail: String,
    },
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A served conversion.
    Reading {
        /// Die that converted.
        die: u64,
        /// Sensor-reported temperature, °C.
        temp_c: f64,
        /// Tracked NMOS threshold shift, mV (frozen at calibration when
        /// degraded).
        d_vtn_mv: f64,
        /// Tracked PMOS threshold shift, mV.
        d_vtp_mv: f64,
        /// Conversion energy, pJ.
        energy_pj: f64,
        /// Quality flag.
        quality: Quality,
    },
    /// A served `batch_read`: one item per stripe die, in die order.
    Batch {
        /// Per-die outcomes.
        items: Vec<BatchItem>,
    },
    /// A completed recalibration.
    Calibrated {
        /// Die that recalibrated.
        die: u64,
        /// Quality of the calibration pass.
        quality: Quality,
    },
    /// Fleet health summary.
    Health(HealthWire),
    /// Ping echo.
    Pong {
        /// The padding that was requested.
        pad: String,
    },
    /// Chaos injection acknowledged.
    Injected {
        /// Die targeted.
        die: u64,
    },
    /// A typed refusal.
    Rejected {
        /// Why.
        rejection: Rejection,
        /// Human-readable detail.
        detail: String,
    },
    /// Graceful shutdown acknowledged.
    ShuttingDown,
}

impl Response {
    /// Convenience constructor for refusals.
    #[must_use]
    pub fn rejected(rejection: Rejection, detail: impl Into<String>) -> Self {
        Response::Rejected {
            rejection,
            detail: detail.into(),
        }
    }
}

/// Why a request frame was refused at the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The payload was not valid JSON.
    Json(json::JsonError),
    /// The frame was valid JSON but not a known request shape.
    UnknownOp(String),
    /// A required field was absent or of the wrong type.
    BadField(&'static str),
    /// A field was present and typed but violated its bound.
    OutOfBounds {
        /// Field name.
        field: &'static str,
        /// What bound it violated.
        bound: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "malformed frame: {e}"),
            ProtoError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ProtoError::BadField(name) => write!(f, "missing or mistyped field {name:?}"),
            ProtoError::OutOfBounds { field, bound } => {
                write!(f, "field {field:?} out of bounds: {bound}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<json::JsonError> for ProtoError {
    fn from(e: json::JsonError) -> Self {
        ProtoError::Json(e)
    }
}

fn field_u64(v: &Value, name: &'static str) -> Result<u64, ProtoError> {
    v.get(name)
        .ok_or(ProtoError::BadField(name))?
        .as_u64()
        .ok_or(ProtoError::BadField(name))
}

fn field_f64(v: &Value, name: &'static str) -> Result<f64, ProtoError> {
    v.get(name)
        .ok_or(ProtoError::BadField(name))?
        .as_f64()
        .ok_or(ProtoError::BadField(name))
}

fn bounded_u64(v: &Value, name: &'static str, default: u64, max: u64) -> Result<u64, ProtoError> {
    let x = match v.get(name) {
        None => return Ok(default),
        Some(field) => field.as_u64().ok_or(ProtoError::BadField(name))?,
    };
    if x > max {
        return Err(ProtoError::OutOfBounds {
            field: name,
            bound: format!("{x} > {max}"),
        });
    }
    Ok(x)
}

impl Request {
    /// Parses and bounds-checks one request payload.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`] for malformed JSON, unknown ops,
    /// missing/mistyped fields, or bound violations. Never panics.
    pub fn from_json_bytes(payload: &[u8]) -> Result<Self, ProtoError> {
        let v = json::parse(payload)?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or(ProtoError::BadField("op"))?;
        match op {
            "read" => {
                let die = field_u64(&v, "die")?;
                let temp_c = field_f64(&v, "temp_c")?;
                if !(TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c) {
                    return Err(ProtoError::OutOfBounds {
                        field: "temp_c",
                        bound: format!("{temp_c} outside {:?}", TEMP_BOUNDS),
                    });
                }
                let priority = bounded_u64(&v, "priority", 1, u64::from(MAX_PRIORITY))? as u8;
                let deadline_ms =
                    bounded_u64(&v, "deadline_ms", DEFAULT_DEADLINE_MS, MAX_DEADLINE_MS)?;
                Ok(Request::Read {
                    die,
                    temp_c,
                    priority,
                    deadline_ms,
                })
            }
            "batch_read" => {
                let die0 = field_u64(&v, "die0")?;
                let count = field_u64(&v, "count")?;
                if count == 0 || count > MAX_BATCH {
                    return Err(ProtoError::OutOfBounds {
                        field: "count",
                        bound: format!("{count} outside 1..={MAX_BATCH}"),
                    });
                }
                if die0.checked_add(count).is_none() {
                    return Err(ProtoError::OutOfBounds {
                        field: "die0",
                        bound: format!("{die0} + {count} overflows the die index space"),
                    });
                }
                let temp_c = field_f64(&v, "temp_c")?;
                if !(TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c) {
                    return Err(ProtoError::OutOfBounds {
                        field: "temp_c",
                        bound: format!("{temp_c} outside {:?}", TEMP_BOUNDS),
                    });
                }
                let priority = bounded_u64(&v, "priority", 1, u64::from(MAX_PRIORITY))? as u8;
                let deadline_ms =
                    bounded_u64(&v, "deadline_ms", DEFAULT_DEADLINE_MS, MAX_DEADLINE_MS)?;
                Ok(Request::BatchRead {
                    die0,
                    count,
                    temp_c,
                    priority,
                    deadline_ms,
                })
            }
            "calibrate" => Ok(Request::Calibrate {
                die: field_u64(&v, "die")?,
                deadline_ms: bounded_u64(&v, "deadline_ms", DEFAULT_DEADLINE_MS, MAX_DEADLINE_MS)?,
            }),
            "health" => Ok(Request::Health),
            "ping" => Ok(Request::Ping {
                pad: bounded_u64(&v, "pad", 0, MAX_PAD)?,
            }),
            "inject" => {
                let die = field_u64(&v, "die")?;
                let kind = match v.get("fault").and_then(Value::as_str) {
                    Some("degrade") => InjectKind::DegradeDie,
                    Some("heal") => InjectKind::HealDie,
                    Some("panic_conversion") => InjectKind::PanicConversion,
                    Some("panic_worker") => InjectKind::PanicWorker,
                    Some("stall") => {
                        InjectKind::StallMs(bounded_u64(&v, "ms", 0, MAX_DEADLINE_MS)?)
                    }
                    _ => return Err(ProtoError::BadField("fault")),
                };
                Ok(Request::Inject { die, kind })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::UnknownOp(other.to_string())),
        }
    }

    /// Serializes the request as a JSON payload (the client side of
    /// [`Request::from_json_bytes`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let v = match self {
            Request::Read {
                die,
                temp_c,
                priority,
                deadline_ms,
            } => obj(vec![
                ("op", Value::Str("read".into())),
                ("die", Value::Num(*die as f64)),
                ("temp_c", Value::Num(*temp_c)),
                ("priority", Value::Num(f64::from(*priority))),
                ("deadline_ms", Value::Num(*deadline_ms as f64)),
            ]),
            Request::BatchRead {
                die0,
                count,
                temp_c,
                priority,
                deadline_ms,
            } => obj(vec![
                ("op", Value::Str("batch_read".into())),
                ("die0", Value::Num(*die0 as f64)),
                ("count", Value::Num(*count as f64)),
                ("temp_c", Value::Num(*temp_c)),
                ("priority", Value::Num(f64::from(*priority))),
                ("deadline_ms", Value::Num(*deadline_ms as f64)),
            ]),
            Request::Calibrate { die, deadline_ms } => obj(vec![
                ("op", Value::Str("calibrate".into())),
                ("die", Value::Num(*die as f64)),
                ("deadline_ms", Value::Num(*deadline_ms as f64)),
            ]),
            Request::Health => obj(vec![("op", Value::Str("health".into()))]),
            Request::Ping { pad } => obj(vec![
                ("op", Value::Str("ping".into())),
                ("pad", Value::Num(*pad as f64)),
            ]),
            Request::Inject { die, kind } => {
                let mut pairs = vec![
                    ("op", Value::Str("inject".into())),
                    ("die", Value::Num(*die as f64)),
                    ("fault", Value::Str(kind.name().into())),
                ];
                if let InjectKind::StallMs(ms) = kind {
                    pairs.push(("ms", Value::Num(*ms as f64)));
                }
                obj(pairs)
            }
            Request::Shutdown => obj(vec![("op", Value::Str("shutdown".into()))]),
        };
        v.to_string()
    }
}

impl Response {
    /// Serializes the response as a JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let v = match self {
            Response::Reading {
                die,
                temp_c,
                d_vtn_mv,
                d_vtp_mv,
                energy_pj,
                quality,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("read".into())),
                ("die", Value::Num(*die as f64)),
                ("temp_c", Value::Num(*temp_c)),
                ("d_vtn_mv", Value::Num(*d_vtn_mv)),
                ("d_vtp_mv", Value::Num(*d_vtp_mv)),
                ("energy_pj", Value::Num(*energy_pj)),
                ("quality", Value::Str(quality.name().into())),
            ]),
            Response::Batch { items } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("batch_read".into())),
                (
                    "items",
                    Value::Arr(
                        items
                            .iter()
                            .map(|item| match item {
                                BatchItem::Reading {
                                    die,
                                    temp_c,
                                    d_vtn_mv,
                                    d_vtp_mv,
                                    energy_pj,
                                    quality,
                                } => obj(vec![
                                    ("die", Value::Num(*die as f64)),
                                    ("ok", Value::Bool(true)),
                                    ("temp_c", Value::Num(*temp_c)),
                                    ("d_vtn_mv", Value::Num(*d_vtn_mv)),
                                    ("d_vtp_mv", Value::Num(*d_vtp_mv)),
                                    ("energy_pj", Value::Num(*energy_pj)),
                                    ("quality", Value::Str(quality.name().into())),
                                ]),
                                BatchItem::Rejected {
                                    die,
                                    rejection,
                                    detail,
                                } => obj(vec![
                                    ("die", Value::Num(*die as f64)),
                                    ("ok", Value::Bool(false)),
                                    ("error", Value::Str(rejection.name().into())),
                                    ("detail", Value::Str(detail.clone())),
                                ]),
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Calibrated { die, quality } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("calibrate".into())),
                ("die", Value::Num(*die as f64)),
                ("quality", Value::Str(quality.name().into())),
            ]),
            Response::Health(h) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("health".into())),
                ("uptime_ms", Value::Num(h.uptime_ms as f64)),
                ("coalesce_max", Value::Num(h.coalesce_max as f64)),
                ("wire_version", Value::Num(h.wire_version as f64)),
                (
                    "shards",
                    Value::Arr(
                        h.shards
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("id", Value::Num(s.id as f64)),
                                    ("state", Value::Str(s.state.clone())),
                                    ("restarts", Value::Num(s.restarts as f64)),
                                    ("queue_len", Value::Num(s.queue_len as f64)),
                                    ("dies", Value::Num(s.dies as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "counters",
                    Value::Obj(
                        h.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
                            .collect(),
                    ),
                ),
            ]),
            Response::Pong { pad } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("ping".into())),
                ("pad", Value::Str(pad.clone())),
            ]),
            Response::Injected { die } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("inject".into())),
                ("die", Value::Num(*die as f64)),
            ]),
            Response::Rejected { rejection, detail } => obj(vec![
                ("ok", Value::Bool(false)),
                ("error", Value::Str(rejection.name().into())),
                ("detail", Value::Str(detail.clone())),
            ]),
            Response::ShuttingDown => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("shutdown".into())),
            ]),
        };
        v.to_string()
    }

    /// Parses a response payload (the client side).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ProtoError`]; never panics.
    pub fn from_json_bytes(payload: &[u8]) -> Result<Self, ProtoError> {
        let v = json::parse(payload)?;
        let ok = v
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or(ProtoError::BadField("ok"))?;
        if !ok {
            let rejection = v
                .get("error")
                .and_then(Value::as_str)
                .and_then(Rejection::from_name)
                .ok_or(ProtoError::BadField("error"))?;
            let detail = v
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response::Rejected { rejection, detail });
        }
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or(ProtoError::BadField("op"))?;
        match op {
            "read" => Ok(Response::Reading {
                die: field_u64(&v, "die")?,
                temp_c: field_f64(&v, "temp_c")?,
                d_vtn_mv: field_f64(&v, "d_vtn_mv")?,
                d_vtp_mv: field_f64(&v, "d_vtp_mv")?,
                energy_pj: field_f64(&v, "energy_pj")?,
                quality: v
                    .get("quality")
                    .and_then(Value::as_str)
                    .and_then(Quality::from_name)
                    .ok_or(ProtoError::BadField("quality"))?,
            }),
            "batch_read" => {
                let items = v
                    .get("items")
                    .and_then(Value::as_arr)
                    .ok_or(ProtoError::BadField("items"))?
                    .iter()
                    .map(|item| {
                        let die = field_u64(item, "die")?;
                        let served = item
                            .get("ok")
                            .and_then(Value::as_bool)
                            .ok_or(ProtoError::BadField("items"))?;
                        if served {
                            Ok(BatchItem::Reading {
                                die,
                                temp_c: field_f64(item, "temp_c")?,
                                d_vtn_mv: field_f64(item, "d_vtn_mv")?,
                                d_vtp_mv: field_f64(item, "d_vtp_mv")?,
                                energy_pj: field_f64(item, "energy_pj")?,
                                quality: item
                                    .get("quality")
                                    .and_then(Value::as_str)
                                    .and_then(Quality::from_name)
                                    .ok_or(ProtoError::BadField("quality"))?,
                            })
                        } else {
                            Ok(BatchItem::Rejected {
                                die,
                                rejection: item
                                    .get("error")
                                    .and_then(Value::as_str)
                                    .and_then(Rejection::from_name)
                                    .ok_or(ProtoError::BadField("error"))?,
                                detail: item
                                    .get("detail")
                                    .and_then(Value::as_str)
                                    .unwrap_or_default()
                                    .to_string(),
                            })
                        }
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Response::Batch { items })
            }
            "calibrate" => Ok(Response::Calibrated {
                die: field_u64(&v, "die")?,
                quality: v
                    .get("quality")
                    .and_then(Value::as_str)
                    .and_then(Quality::from_name)
                    .ok_or(ProtoError::BadField("quality"))?,
            }),
            "health" => {
                let shards = v
                    .get("shards")
                    .and_then(Value::as_arr)
                    .ok_or(ProtoError::BadField("shards"))?
                    .iter()
                    .map(|s| {
                        Ok(ShardHealthWire {
                            id: field_u64(s, "id")?,
                            state: s
                                .get("state")
                                .and_then(Value::as_str)
                                .ok_or(ProtoError::BadField("state"))?
                                .to_string(),
                            restarts: field_u64(s, "restarts")?,
                            queue_len: field_u64(s, "queue_len")?,
                            dies: field_u64(s, "dies")?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let counters = match v.get("counters") {
                    Some(Value::Obj(pairs)) => pairs
                        .iter()
                        .map(|(k, val)| {
                            Ok((
                                k.clone(),
                                val.as_u64().ok_or(ProtoError::BadField("counters"))?,
                            ))
                        })
                        .collect::<Result<Vec<_>, ProtoError>>()?,
                    _ => return Err(ProtoError::BadField("counters")),
                };
                Ok(Response::Health(HealthWire {
                    shards,
                    counters,
                    uptime_ms: field_u64(&v, "uptime_ms")?,
                    // Absent on pre-v2 daemons; default rather than reject so a
                    // new client can still health-check an old fleet.
                    coalesce_max: field_u64(&v, "coalesce_max").unwrap_or(0),
                    wire_version: field_u64(&v, "wire_version").unwrap_or(1),
                }))
            }
            "ping" => Ok(Response::Pong {
                pad: v
                    .get("pad")
                    .and_then(Value::as_str)
                    .ok_or(ProtoError::BadField("pad"))?
                    .to_string(),
            }),
            "inject" => Ok(Response::Injected {
                die: field_u64(&v, "die")?,
            }),
            "shutdown" => Ok(Response::ShuttingDown),
            other => Err(ProtoError::UnknownOp(other.to_string())),
        }
    }
}

/// How reading one frame ended.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The length prefix exceeded the configured bound — refused before
    /// any allocation.
    Oversize {
        /// Advertised payload length.
        advertised: usize,
        /// Configured bound.
        max: usize,
    },
    /// The stream ended (or timed out) mid-frame.
    Truncated {
        /// Bytes the frame still owed.
        missing: usize,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed at frame boundary"),
            FrameError::Oversize { advertised, max } => {
                write!(
                    f,
                    "frame of {advertised} bytes exceeds the {max}-byte bound"
                )
            }
            FrameError::Truncated { missing } => {
                write!(f, "frame truncated ({missing} bytes missing)")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors (including write timeouts — a slow client
/// surfaces as `WouldBlock`/`TimedOut` here). Payloads longer than
/// [`MAX_FRAME`] are refused with `InvalidInput` rather than sent.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME",
        ));
    }
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one length-prefixed frame, refusing oversize prefixes before any
/// allocation.
///
/// A read timeout **at a frame boundary** (zero bytes consumed) surfaces
/// as [`FrameError::Io`] with a `WouldBlock`/`TimedOut` kind — the server
/// uses these as idle-poll ticks. A timeout **mid-frame** is a stalled
/// sender and surfaces as [`FrameError::Truncated`]: the stream is
/// desynchronized at that point and the connection must be dropped.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF at a frame boundary,
/// [`FrameError::Oversize`] / [`FrameError::Truncated`] on protocol
/// violations, [`FrameError::Io`] otherwise.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut payload = Vec::new();
    read_frame_into(r, max, &mut payload)?;
    Ok(payload)
}

/// Reads one length-prefixed frame into a caller-owned buffer, reusing its
/// capacity. A warm connection that recycles the same buffer serves every
/// frame at or below the high-water mark without touching the allocator.
///
/// Same timeout/truncation semantics as [`read_frame`].
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_into<R: Read>(
    r: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let header = read_prefix(r)?;
    read_body_into(r, header, max, buf)
}

/// Reads the 4-byte frame prefix, tolerating idle-poll timeouts only when
/// zero bytes have been consumed (the frame-boundary rule of
/// [`read_frame`]). The server also calls this directly during version
/// negotiation: the first four bytes of a connection are either the v2
/// magic or a JSON frame's length prefix.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before any byte,
/// [`FrameError::Truncated`] on EOF/timeout mid-prefix, [`FrameError::Io`]
/// otherwise.
pub fn read_prefix<R: Read>(r: &mut R) -> Result<[u8; 4], FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated { missing: 4 - got }
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_poll_timeout(&e) && got > 0 => {
                return Err(FrameError::Truncated { missing: 4 - got })
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(header)
}

/// Reads one byte mid-stream (the v2 version byte during negotiation).
/// Unlike the prefix read, a timeout here is always [`FrameError::Truncated`]
/// — the peer already committed to a handshake.
///
/// # Errors
///
/// [`FrameError::Truncated`] on EOF/timeout, [`FrameError::Io`] otherwise.
pub fn read_byte<R: Read>(r: &mut R) -> Result<u8, FrameError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Err(FrameError::Truncated { missing: 1 }),
            Ok(_) => return Ok(b[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_poll_timeout(&e) => return Err(FrameError::Truncated { missing: 1 }),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

/// Reads a frame body whose 4-byte prefix was already consumed (by
/// [`read_prefix`]), bounds-checking the advertised length before growing
/// the buffer. The buffer's capacity is reused across calls.
///
/// # Errors
///
/// [`FrameError::Oversize`] / [`FrameError::Truncated`] on protocol
/// violations, [`FrameError::Io`] otherwise.
pub fn read_body_into<R: Read>(
    r: &mut R,
    header: [u8; 4],
    max: usize,
    buf: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let advertised = u32::from_be_bytes(header) as usize;
    if advertised > max {
        return Err(FrameError::Oversize { advertised, max });
    }
    buf.clear();
    buf.resize(advertised, 0);
    let mut filled = 0;
    while filled < advertised {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: advertised - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_poll_timeout(&e) => {
                return Err(FrameError::Truncated {
                    missing: advertised - filled,
                })
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Starts a reusable outgoing frame: clears the buffer and reserves the
/// 4-byte length slot. Encode the payload directly after, then call
/// [`finish_frame`] to patch the prefix — one buffer, one `write_all`, no
/// intermediate copies.
pub fn begin_frame(buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]);
}

/// Patches the length prefix of a frame started with [`begin_frame`].
///
/// # Errors
///
/// Refuses payloads longer than [`MAX_FRAME`] with `InvalidInput`, mirroring
/// [`write_frame`].
pub fn finish_frame(buf: &mut [u8]) -> io::Result<()> {
    debug_assert!(buf.len() >= 4, "finish_frame on a buffer without a prefix");
    let payload = buf.len() - 4;
    if payload > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME",
        ));
    }
    buf[0..4].copy_from_slice(&(payload as u32).to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"health\"}").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap(),
            b"{\"op\":\"health\"}"
        );
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversize_prefix_refused_before_allocation() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut io::Cursor::new(buf), MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversize { advertised, .. } if advertised == u32::MAX as usize)
        );
    }

    #[test]
    fn truncated_frame_reports_missing_bytes() {
        let mut buf = Vec::from(10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut io::Cursor::new(buf), MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { missing: 7 }));
    }

    #[test]
    fn read_request_bounds_are_enforced() {
        let ok = Request::from_json_bytes(
            br#"{"op":"read","die":3,"temp_c":85.0,"priority":2,"deadline_ms":100}"#,
        )
        .unwrap();
        assert_eq!(
            ok,
            Request::Read {
                die: 3,
                temp_c: 85.0,
                priority: 2,
                deadline_ms: 100
            }
        );
        // Defaults apply when optional fields are absent.
        let defaulted = Request::from_json_bytes(br#"{"op":"read","die":0,"temp_c":25}"#).unwrap();
        assert_eq!(
            defaulted,
            Request::Read {
                die: 0,
                temp_c: 25.0,
                priority: 1,
                deadline_ms: DEFAULT_DEADLINE_MS
            }
        );
        for bad in [
            &br#"{"op":"read","die":3,"temp_c":1000.0}"#[..],
            br#"{"op":"read","die":3,"temp_c":25,"priority":9}"#,
            br#"{"op":"read","die":3,"temp_c":25,"deadline_ms":99999999}"#,
            br#"{"op":"read","die":-1,"temp_c":25}"#,
            br#"{"op":"read","temp_c":25}"#,
            br#"{"op":"warp","die":3}"#,
            br#"{"die":3}"#,
            br#"not json"#,
        ] {
            assert!(Request::from_json_bytes(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn batch_read_bounds_are_enforced() {
        let ok = Request::from_json_bytes(
            br#"{"op":"batch_read","die0":2,"count":16,"temp_c":85.0,"priority":2,"deadline_ms":100}"#,
        )
        .unwrap();
        assert_eq!(
            ok,
            Request::BatchRead {
                die0: 2,
                count: 16,
                temp_c: 85.0,
                priority: 2,
                deadline_ms: 100
            }
        );
        // Defaults apply when optional fields are absent.
        let defaulted =
            Request::from_json_bytes(br#"{"op":"batch_read","die0":0,"count":1,"temp_c":25}"#)
                .unwrap();
        assert_eq!(
            defaulted,
            Request::BatchRead {
                die0: 0,
                count: 1,
                temp_c: 25.0,
                priority: 1,
                deadline_ms: DEFAULT_DEADLINE_MS
            }
        );
        for bad in [
            &br#"{"op":"batch_read","die0":0,"count":0,"temp_c":25}"#[..],
            br#"{"op":"batch_read","die0":0,"count":257,"temp_c":25}"#,
            br#"{"op":"batch_read","die0":18446744073709551615,"count":2,"temp_c":25}"#,
            br#"{"op":"batch_read","die0":0,"count":4,"temp_c":1000.0}"#,
            br#"{"op":"batch_read","die0":0,"count":4,"temp_c":25,"priority":9}"#,
            br#"{"op":"batch_read","die0":0,"temp_c":25}"#,
            br#"{"op":"batch_read","count":4,"temp_c":25}"#,
            br#"{"op":"batch_read","die0":0,"count":4}"#,
        ] {
            assert!(Request::from_json_bytes(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn batch_response_round_trips_mixed_items() {
        let resp = Response::Batch {
            items: vec![
                BatchItem::Reading {
                    die: 3,
                    temp_c: 61.25,
                    d_vtn_mv: -4.5,
                    d_vtp_mv: 2.0,
                    energy_pj: 123.0,
                    quality: Quality::Nominal,
                },
                BatchItem::Rejected {
                    die: 7,
                    rejection: Rejection::ConversionFailed,
                    detail: "channel failed".to_string(),
                },
            ],
        };
        let parsed = Response::from_json_bytes(resp.to_json().as_bytes()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn full_batch_response_fits_one_frame() {
        // MAX_BATCH is sized so the largest possible batch response still
        // frames: fill every item with worst-case-width numbers.
        let items = (0..MAX_BATCH)
            .map(|die| BatchItem::Reading {
                die: u64::MAX - die,
                temp_c: -99.123_456_789_012_345,
                d_vtn_mv: -123.456_789_012_345_67,
                d_vtp_mv: -123.456_789_012_345_67,
                energy_pj: 123_456.789_012_345_67,
                quality: Quality::Recovered,
            })
            .collect();
        let payload = Response::Batch { items }.to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, payload.as_bytes())
            .expect("a full batch response must fit MAX_FRAME");
    }

    #[test]
    fn proto_errors_display() {
        let e = Request::from_json_bytes(br#"{"op":"warp"}"#).unwrap_err();
        assert!(e.to_string().contains("warp"));
        let e = Request::from_json_bytes(br#"{"op":"read","die":1,"temp_c":900}"#).unwrap_err();
        assert!(e.to_string().contains("temp_c"));
    }
}
