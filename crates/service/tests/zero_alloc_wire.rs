//! Enforces the connection-path allocation contract with a counting
//! global allocator: after one warm-up round sizes the reused read/write
//! buffers, a framed v2 binary round trip — encode request, frame it,
//! read it back, decode, and the same for the response — performs
//! **zero** heap allocations. This is exactly the per-frame work of a
//! warm `serve_conn`/`Client::call` pair; the die-addressed requests and
//! readings it carries are string-free by design so nothing on the hot
//! path needs an owned buffer beyond the two reused ones.
//!
//! Integration tests are separate binaries, so installing a counting
//! `#[global_allocator]` here observes every allocation the codec makes
//! without affecting any other test.

use ptsim_service::protocol::{
    begin_frame, finish_frame, read_frame_into, Quality, Request, Response, MAX_FRAME,
};
use ptsim_service::wire::{decode_request, decode_response, encode_request, encode_response};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// One full wire round trip through the reused buffers: what the client
/// writes, the server reads and decodes; what the server writes, the
/// client reads and decodes.
fn round_trip(wbuf: &mut Vec<u8>, rbuf: &mut Vec<u8>, req: &Request, rsp: &Response) {
    begin_frame(wbuf);
    encode_request(req, wbuf);
    finish_frame(wbuf).expect("request frame fits");
    read_frame_into(&mut Cursor::new(&wbuf[..]), MAX_FRAME, rbuf).expect("read request");
    assert_eq!(decode_request(rbuf).expect("decode request"), *req);

    begin_frame(wbuf);
    encode_response(rsp, wbuf);
    finish_frame(wbuf).expect("response frame fits");
    read_frame_into(&mut Cursor::new(&wbuf[..]), MAX_FRAME, rbuf).expect("read response");
    assert_eq!(decode_response(rbuf).expect("decode response"), *rsp);
}

#[test]
fn warm_connection_path_is_allocation_free() {
    let req = Request::Read {
        die: 42,
        temp_c: 61.5,
        priority: 1,
        deadline_ms: 30_000,
    };
    let rsp = Response::Reading {
        die: 42,
        temp_c: 61.47,
        d_vtn_mv: 11.8,
        d_vtp_mv: -7.9,
        energy_pj: 184.2,
        quality: Quality::Nominal,
    };

    let mut wbuf = Vec::new();
    let mut rbuf = Vec::new();
    // Warm-up: the two reused buffers grow to frame size here, exactly
    // once per connection — the cost `connect()` pays, not `call()`.
    round_trip(&mut wbuf, &mut rbuf, &req, &rsp);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..64 {
        round_trip(&mut wbuf, &mut rbuf, &req, &rsp);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm framed round trips must not allocate"
    );
}
