//! End-to-end tests of the daemon over real TCP sockets: supervised
//! restart, admission control, deadlines, degraded-mode serving, and the
//! connection-hardening paths (malformed frames, oversize prefixes, slow
//! clients, idle reaping).

use ptsim_service::protocol::{
    write_frame, BatchItem, InjectKind, Quality, Rejection, Request, Response,
};
use ptsim_service::{Client, Fleet, FleetConfig, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_fleet_cfg() -> FleetConfig {
    FleetConfig {
        n_dies: 8,
        n_shards: 2,
        queue_depth: 8,
        base_seed: 0xd1e5,
        coalesce_max: 8,
        max_restarts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    }
}

fn start_server(server_cfg: ServerConfig) -> (Server, String) {
    let fleet = Fleet::start(test_fleet_cfg());
    let server = Server::bind(fleet, "127.0.0.1:0", server_cfg).expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn read(die: u64) -> Request {
    Request::Read {
        die,
        temp_c: 75.0,
        priority: 1,
        deadline_ms: 5_000,
    }
}

#[test]
fn end_to_end_read_calibrate_health_shutdown() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let r = client.call(&read(2)).unwrap();
    let Response::Reading {
        die,
        temp_c,
        quality,
        energy_pj,
        ..
    } = r
    else {
        panic!("expected reading, got {r:?}");
    };
    assert_eq!(die, 2);
    assert_eq!(quality, Quality::Nominal);
    assert!((temp_c - 75.0).abs() < 2.0);
    assert!(energy_pj > 0.0);

    let c = client
        .call(&Request::Calibrate {
            die: 2,
            deadline_ms: 5_000,
        })
        .unwrap();
    assert!(
        matches!(c, Response::Calibrated { die: 2, .. }),
        "got {c:?}"
    );

    let h = client.call(&Request::Health).unwrap();
    let Response::Health(health) = h else {
        panic!("expected health, got {h:?}");
    };
    assert_eq!(health.shards.len(), 2);
    assert!(health.shards.iter().all(|s| s.state == "up"));
    let served = health
        .counters
        .iter()
        .find(|(k, _)| k == "svc.served")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(
        served >= 2,
        "health must report merged counters, got {served}"
    );

    let bye = client.call(&Request::Shutdown).unwrap();
    assert_eq!(bye, Response::ShuttingDown);
    server.join();
}

#[test]
fn malformed_frames_get_typed_rejections_and_connection_survives() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    for garbage in [
        &b"not json at all"[..],
        br#"{"op":"warp"}"#,
        br#"{"op":"read"}"#,
        br#"{"op":"read","die":1,"temp_c":9999}"#,
        br#"{"op":"read","die":1,"temp_c":25,"priority":200}"#,
        br#"[1,2,3]"#,
        b"\x00\xff\xfe",
    ] {
        client.send_raw(&frame(garbage)).unwrap();
        let resp = client.read_response().unwrap();
        assert!(
            matches!(
                resp,
                Response::Rejected {
                    rejection: Rejection::BadRequest,
                    ..
                }
            ),
            "payload {garbage:?} gave {resp:?}"
        );
    }

    // Same connection still serves good requests after the storm.
    let r = client.call(&read(1)).unwrap();
    assert!(matches!(r, Response::Reading { die: 1, .. }), "got {r:?}");

    server.stop();
    server.join();
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).unwrap();
    buf
}

#[test]
fn oversize_prefix_is_answered_then_closed() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    // A 16 MiB length prefix: answered with bad_request, then the
    // (desynchronized) connection is closed.
    client.send_raw(&(16u32 << 20).to_be_bytes()).unwrap();
    let resp = client.read_response().unwrap();
    assert!(
        matches!(
            resp,
            Response::Rejected {
                rejection: Rejection::BadRequest,
                ..
            }
        ),
        "got {resp:?}"
    );
    assert!(client.read_response().is_err(), "connection must be closed");

    // The daemon itself is fine.
    let mut fresh = Client::connect(&addr).unwrap();
    assert!(matches!(
        fresh.call(&read(0)).unwrap(),
        Response::Reading { .. }
    ));
    server.stop();
    server.join();
}

#[test]
fn bad_frame_strike_budget_closes_the_connection() {
    let (server, addr) = start_server(ServerConfig {
        bad_frame_strikes: 3,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let mut rejections = 0;
    for _ in 0..10 {
        if client.send_raw(&frame(b"garbage")).is_err() {
            break;
        }
        match client.read_response() {
            Ok(Response::Rejected { .. }) => rejections += 1,
            _ => break,
        }
    }
    assert!(
        (3..10).contains(&rejections),
        "strike budget of 3 should close after ~3 rejections, got {rejections}"
    );
    server.stop();
    server.join();
}

#[test]
fn idle_connections_are_reaped() {
    let (server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        poll: Duration::from_millis(25),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    // Prove liveness first, then go quiet past the idle budget.
    assert!(matches!(
        client.call(&read(0)).unwrap(),
        Response::Reading { .. }
    ));
    std::thread::sleep(Duration::from_millis(400));
    client
        .send_raw(&frame(&read(0).to_json().into_bytes()))
        .ok();
    assert!(
        client.read_response().is_err(),
        "idle connection must have been reaped"
    );
    server.stop();
    server.join();
}

#[test]
fn slow_client_is_dropped_not_wedged() {
    let (server, addr) = start_server(ServerConfig {
        write_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    // Flood ping responses without ever reading them; once the socket
    // buffers fill, the server's write times out and it drops us.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let ping = frame(&Request::Ping { pad: 32 * 1024 }.to_json().into_bytes());
    let started = Instant::now();
    let mut write_failed = false;
    // Keep feeding requests without reading replies. Once the reply path
    // blocks past the write timeout, the server closes the connection and
    // our writes start failing (RST).
    while started.elapsed() < Duration::from_secs(20) {
        if stream.write_all(&ping).is_err() {
            write_failed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        write_failed,
        "server must drop a client that stops reading its replies"
    );
    drop(stream);

    // The daemon still serves other clients promptly.
    let mut fresh = Client::connect(&addr).unwrap();
    assert!(matches!(
        fresh.call(&read(3)).unwrap(),
        Response::Reading { .. }
    ));
    server.stop();
    server.join();
}

fn batch(die0: u64, count: u64) -> Request {
    Request::BatchRead {
        die0,
        count,
        temp_c: 75.0,
        priority: 1,
        deadline_ms: 30_000,
    }
}

#[test]
fn batch_read_matches_individual_reads_bit_for_bit() {
    // Fleet A serves one batch over die 1's stripe (dies 1,3,5,7 on the
    // 2-shard fleet); an identically-seeded fleet B serves the same dies
    // through plain reads. The lane-grouped drain must be invisible: same
    // per-die values to the last bit, because each die's deterministic
    // stream sees exactly the draws the scalar read path makes.
    let fleet_a = Fleet::start(test_fleet_cfg());
    let resp = fleet_a.submit(batch(1, 4));
    fleet_a.shutdown();
    let Response::Batch { items } = resp else {
        panic!("expected batch, got {resp:?}");
    };
    assert_eq!(items.len(), 4);

    let fleet_b = Fleet::start(test_fleet_cfg());
    for (k, item) in items.iter().enumerate() {
        let expected_die = 1 + 2 * k as u64;
        let single = fleet_b.submit(read(expected_die));
        let Response::Reading {
            die,
            temp_c,
            d_vtn_mv,
            d_vtp_mv,
            energy_pj,
            quality,
        } = single
        else {
            panic!("expected reading, got {single:?}");
        };
        assert_eq!(die, expected_die);
        assert_eq!(
            *item,
            BatchItem::Reading {
                die,
                temp_c,
                d_vtn_mv,
                d_vtp_mv,
                energy_pj,
                quality
            },
            "batch item {k} must be bit-identical to the plain read"
        );
    }
    fleet_b.shutdown();
}

#[test]
fn batch_read_serves_over_tcp_with_per_item_quality() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    // Degrade one die of the stripe; the batch must keep serving every
    // die, flagging only the degraded one.
    let _ = client
        .call(&Request::Inject {
            die: 3,
            kind: InjectKind::DegradeDie,
        })
        .unwrap();
    let r = client.call(&batch(1, 4)).unwrap();
    let Response::Batch { items } = r else {
        panic!("expected batch, got {r:?}");
    };
    assert_eq!(items.len(), 4);
    for item in &items {
        let BatchItem::Reading {
            die,
            temp_c,
            quality,
            ..
        } = item
        else {
            panic!("every stripe die must serve, got {item:?}");
        };
        let expected = if *die == 3 {
            Quality::Degraded
        } else {
            Quality::Nominal
        };
        assert_eq!(*quality, expected, "die {die}");
        assert!((temp_c - 75.0).abs() < 5.0, "die {die} temp off: {temp_c}");
    }

    // A stripe that runs off the 8-die fleet is a typed bad_request.
    let bad = client.call(&batch(1, 5)).unwrap();
    assert!(
        matches!(
            bad,
            Response::Rejected {
                rejection: Rejection::BadRequest,
                ..
            }
        ),
        "got {bad:?}"
    );
    server.stop();
    server.join();
}

#[test]
fn batch_read_panic_is_isolated_and_stripe_rebuilds() {
    let fleet = Fleet::start(test_fleet_cfg());
    let before = fleet.submit(batch(0, 4));
    let Response::Batch { items: first } = before else {
        panic!("expected batch, got {before:?}");
    };

    let _ = fleet.submit(Request::Inject {
        die: 0,
        kind: InjectKind::PanicConversion,
    });
    let tripped = fleet.submit(batch(0, 4));
    assert!(
        matches!(
            tripped,
            Response::Rejected {
                rejection: Rejection::WorkerPanicked,
                ..
            }
        ),
        "got {tripped:?}"
    );

    // The stripe rebuilds from the deterministic seeds: the next batch is
    // a first touch again and must reproduce the first batch exactly.
    let rebuilt = fleet.submit(batch(0, 4));
    let Response::Batch { items: again } = rebuilt else {
        panic!("expected batch, got {rebuilt:?}");
    };
    assert_eq!(again, first, "rebuilt stripe must serve identical values");
    fleet.shutdown();
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    let fleet = Fleet::start(test_fleet_cfg());
    assert!(matches!(
        fleet.submit(Request::Inject {
            die: 4,
            kind: InjectKind::PanicConversion
        }),
        Response::Injected { .. }
    ));
    let r = fleet.submit(read(4));
    assert!(
        matches!(
            r,
            Response::Rejected {
                rejection: Rejection::WorkerPanicked,
                ..
            }
        ),
        "got {r:?}"
    );
    // The die recovers on the next read (slot rebuilt), and its sibling
    // dies on the same shard were never disturbed.
    assert!(matches!(fleet.submit(read(4)), Response::Reading { .. }));
    assert!(matches!(fleet.submit(read(6)), Response::Reading { .. }));
    fleet.shutdown();
}

#[test]
fn supervisor_restarts_crashed_worker_with_backoff() {
    let fleet = Fleet::start(test_fleet_cfg());
    let before = fleet.submit(read(1));
    let Response::Reading { temp_c, .. } = before else {
        panic!("expected reading, got {before:?}");
    };

    assert!(matches!(
        fleet.submit(Request::Inject {
            die: 1,
            kind: InjectKind::PanicWorker
        }),
        Response::Injected { .. }
    ));
    // The job that trips the worker panic never gets an answer from the
    // dead worker: the fleet answers with a typed timeout.
    let tripped = fleet.submit(Request::Read {
        die: 1,
        temp_c: 75.0,
        priority: 1,
        deadline_ms: 300,
    });
    assert!(
        matches!(
            tripped,
            Response::Rejected {
                rejection: Rejection::Timeout,
                ..
            }
        ),
        "got {tripped:?}"
    );

    // Within the backoff budget the supervisor restarts the worker and the
    // rebuilt die serves bit-identical values.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match fleet.submit(read(1)) {
            Response::Reading { temp_c: t, .. } => {
                assert_eq!(
                    t, temp_c,
                    "restarted worker must rebuild identical die state"
                );
                break;
            }
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("worker never recovered: {other:?}"),
        }
    }
    let health = fleet.health();
    let restarts: u64 = health.shards.iter().map(|s| s.restarts).sum();
    assert!(restarts >= 1, "health must record the restart");
    fleet.shutdown();
}

#[test]
fn exhausted_restart_budget_kills_shard_but_not_fleet() {
    let fleet = Fleet::start(FleetConfig {
        max_restarts: 2,
        ..test_fleet_cfg()
    });
    // Dies 1,3,5,7 live on shard 1; crash its worker past the budget.
    for _ in 0..=2 {
        let _ = fleet.submit(Request::Inject {
            die: 1,
            kind: InjectKind::PanicWorker,
        });
        let _ = fleet.submit(Request::Read {
            die: 1,
            temp_c: 75.0,
            priority: 1,
            deadline_ms: 250,
        });
        std::thread::sleep(Duration::from_millis(120));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = fleet.submit(Request::Read {
            die: 1,
            temp_c: 75.0,
            priority: 1,
            deadline_ms: 250,
        });
        match r {
            Response::Rejected {
                rejection: Rejection::ShardDown,
                ..
            } => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("shard never went dead: {other:?}"),
        }
    }
    // Shard 0 (even dies) is untouched.
    assert!(matches!(fleet.submit(read(2)), Response::Reading { .. }));
    let health = fleet.health();
    assert!(health.shards.iter().any(|s| s.state == "dead"));
    assert!(health.shards.iter().any(|s| s.state == "up"));
    fleet.shutdown();
}

#[test]
fn stalled_worker_costs_the_deadline_not_a_hang() {
    let fleet = Fleet::start(test_fleet_cfg());
    let _ = fleet.submit(Request::Inject {
        die: 0,
        kind: InjectKind::StallMs(800),
    });
    let started = Instant::now();
    let r = fleet.submit(Request::Read {
        die: 0,
        temp_c: 75.0,
        priority: 1,
        deadline_ms: 100,
    });
    let waited = started.elapsed();
    assert!(
        matches!(
            r,
            Response::Rejected {
                rejection: Rejection::Timeout,
                ..
            }
        ),
        "got {r:?}"
    );
    assert!(
        waited < Duration::from_millis(600),
        "caller must be released at its own deadline, waited {waited:?}"
    );
    fleet.shutdown();
}

#[test]
fn overload_sheds_lowest_priority_reads_first() {
    // One shard, depth 4, and a worker stalled long enough to hold the
    // queue still while we probe admission control.
    let fleet = Fleet::start(FleetConfig {
        n_dies: 4,
        n_shards: 1,
        queue_depth: 4,
        ..test_fleet_cfg()
    });
    let _ = fleet.submit(Request::Inject {
        die: 0,
        kind: InjectKind::StallMs(1_500),
    });

    let fleet = std::sync::Arc::new(fleet);
    let submit_async = |die: u64, priority: u8| {
        let fleet = std::sync::Arc::clone(&fleet);
        std::thread::spawn(move || {
            fleet.submit(Request::Read {
                die,
                temp_c: 75.0,
                priority,
                deadline_ms: 8_000,
            })
        })
    };

    // The stall victim occupies the worker; then fill the queue with
    // low-priority reads.
    let occupier = submit_async(0, 3);
    std::thread::sleep(Duration::from_millis(100));
    let low: Vec<_> = (0..4).map(|i| submit_async(i % 4, 0)).collect();
    std::thread::sleep(Duration::from_millis(100));

    // A high-priority read arrives at the full queue: one low-priority job
    // must be shed (typed overloaded) to admit it.
    let high = submit_async(1, 3);
    let high_resp = high.join().unwrap();
    assert!(
        matches!(high_resp, Response::Reading { .. }),
        "high priority must be admitted and served, got {high_resp:?}"
    );
    let low_resps: Vec<_> = low.into_iter().map(|h| h.join().unwrap()).collect();
    let shed = low_resps
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Rejected {
                    rejection: Rejection::Overloaded,
                    ..
                }
            )
        })
        .count();
    assert!(
        shed >= 1,
        "one low-priority read must be shed, got {low_resps:?}"
    );
    // Everything was answered one way or the other — nothing dropped.
    assert_eq!(low_resps.len(), 4);
    assert!(matches!(occupier.join().unwrap(), Response::Reading { .. }));

    std::sync::Arc::try_unwrap(fleet)
        .expect("all submitters joined")
        .shutdown();
}

#[test]
fn degraded_die_serves_temperature_with_quality_flag_over_tcp() {
    let (server, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    let _ = client
        .call(&Request::Inject {
            die: 7,
            kind: InjectKind::DegradeDie,
        })
        .unwrap();
    let r = client.call(&read(7)).unwrap();
    let Response::Reading {
        quality, temp_c, ..
    } = r
    else {
        panic!("degraded die must keep serving, got {r:?}");
    };
    assert_eq!(quality, Quality::Degraded);
    // Temperature stays useful in degraded mode (the design's contract:
    // the TSRO channel survives a dead PSRO bank).
    assert!((temp_c - 75.0).abs() < 5.0, "degraded temp off: {temp_c}");
    server.stop();
    server.join();
}
