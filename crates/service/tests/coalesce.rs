//! Coalescing-equivalence: a read served inside a coalesced group must be
//! bit-identical — temperature, threshold shifts, energy, *and* the
//! quality flag derived from the sensor's health record — to the same
//! read served alone.
//!
//! Two fleets with identical seeds run the same randomized rounds of
//! concurrent reads; one fleet has coalescing disabled (`coalesce_max`
//! 1), the other groups aggressively (`coalesce_max` 8) with a one-shot
//! worker stall building queue depth so grouping actually engages (the
//! derived `svc.coalesced_wakes` counter proves it did). Every reply —
//! readings, degraded readings, and deadline timeouts — must match.

use ptsim_rng::{Pcg64, RngCore};
use ptsim_service::protocol::{InjectKind, Quality, Request, Response};
use ptsim_service::{Fleet, FleetConfig};
use std::time::Duration;

fn fleet_with(coalesce_max: usize) -> Fleet {
    Fleet::start(FleetConfig {
        n_dies: 8,
        n_shards: 1, // one queue: maximal grouping pressure
        queue_depth: 64,
        base_seed: 0xc0a1,
        coalesce_max,
        max_restarts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
    })
}

fn read(die: u64, temp_c: f64, deadline_ms: u64) -> Request {
    Request::Read {
        die,
        temp_c,
        priority: 1,
        deadline_ms,
    }
}

/// One round: a stalled read on `stall_die` builds queue depth, then the
/// remaining dies are read concurrently while the worker sleeps. Returns
/// the replies in submission order.
fn run_round(fleet: &Fleet, stall_die: u64, jobs: &[(u64, f64, u64)]) -> Vec<Response> {
    let injected = fleet.submit(Request::Inject {
        die: stall_die,
        kind: InjectKind::StallMs(60),
    });
    assert!(matches!(injected, Response::Injected { .. }));
    std::thread::scope(|s| {
        let stalled = s.spawn(move || fleet.submit(read(stall_die, 55.0, 30_000)));
        // Let the worker dequeue the stalled read and enter its sleep, so
        // the reads below pile up behind it in the shard queue.
        std::thread::sleep(Duration::from_millis(15));
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(die, temp_c, deadline_ms)| {
                s.spawn(move || fleet.submit(read(die, temp_c, deadline_ms)))
            })
            .collect();
        let mut replies = vec![stalled.join().expect("stalled reader join")];
        replies.extend(handles.into_iter().map(|h| h.join().expect("reader join")));
        replies
    })
}

#[test]
fn coalesced_reads_are_bit_identical_to_solo_reads() {
    let solo = fleet_with(1);
    let grouped = fleet_with(8);

    // Warm every die on both fleets: identical seeds, identical streams.
    for fleet in [&solo, &grouped] {
        for die in 0..8 {
            let r = fleet.submit(read(die, 60.0, 30_000));
            assert!(matches!(r, Response::Reading { .. }), "warmup: {r:?}");
        }
    }

    let mut rng = Pcg64::seed_from_u64(0x5eed_c0a1);
    for round in 0..12 {
        let stall_die = rng.next_u64() % 8;
        // Randomized queue contents: every other die in random rotation,
        // random temperature, and a mix of generous deadlines (always
        // served) and 1 ms deadlines (always expired behind the 60 ms
        // stall — answered with a typed timeout by the front-end, then
        // dropped at dequeue). Mid-range deadlines would race the stall
        // and flake, so the mix is bimodal on purpose.
        // Distinct dies only: two same-die reads in one round would make
        // the reply values depend on scheduler interleaving.
        let rot = rng.next_u64() % 8;
        let jobs: Vec<(u64, f64, u64)> = (0..8u64)
            .map(|d| (d + rot) % 8)
            .filter(|&die| die != stall_die)
            .map(|die| {
                let temp_c = 40.0 + (rng.next_u64() % 600) as f64 / 10.0;
                let deadline_ms = if rng.next_u64() % 4 == 0 { 1 } else { 30_000 };
                (die, temp_c, deadline_ms)
            })
            .collect();
        // A persistent (non-one-shot) degrade on a random die every few
        // rounds: the quality flag in a coalesced reading must track the
        // die's health record exactly as a solo reading's does.
        if round % 3 == 0 {
            let die = rng.next_u64() % 8;
            let kind = if round % 6 == 0 {
                InjectKind::DegradeDie
            } else {
                InjectKind::HealDie
            };
            for fleet in [&solo, &grouped] {
                let r = fleet.submit(Request::Inject { die, kind });
                assert!(matches!(r, Response::Injected { .. }));
            }
        }

        let solo_replies = run_round(&solo, stall_die, &jobs);
        let grouped_replies = run_round(&grouped, stall_die, &jobs);
        assert_eq!(
            solo_replies, grouped_replies,
            "round {round}: coalesced replies diverged from solo replies"
        );
        // Sanity: generous-deadline reads were actually served.
        assert!(grouped_replies
            .iter()
            .any(|r| matches!(r, Response::Reading { .. })));
    }

    // Quality flags went through both states at least once.
    let saw_degraded = |fleet: &Fleet| {
        (0..8).any(|die| {
            matches!(
                fleet.submit(read(die, 60.0, 30_000)),
                Response::Reading {
                    quality: Quality::Degraded,
                    ..
                }
            )
        })
    };
    assert_eq!(saw_degraded(&solo), saw_degraded(&grouped));

    // Proof the scheduler grouped on the coalescing fleet and never on the
    // solo fleet: the derived health counters project the width histogram.
    let wakes = |fleet: &Fleet| {
        fleet
            .health()
            .counters
            .iter()
            .find(|(k, _)| k == "svc.coalesced_wakes")
            .map_or(0, |&(_, v)| v)
    };
    assert_eq!(wakes(&solo), 0, "coalesce_max 1 must never group");
    assert!(
        wakes(&grouped) > 0,
        "stall rounds never built a group — the equivalence above tested nothing"
    );

    solo.shutdown();
    grouped.shutdown();
}
