//! Property and fuzz coverage of the v2 binary codec: round-trips,
//! cross-codec agreement with the JSON (v1) parser, and the guarantee
//! that no byte sequence — truncated, mutated, or garbage — ever panics
//! the decoder. Malformed input must always surface as a typed
//! [`ProtoError`].

use ptsim_rng::check::{vec_in, Strategy};
use ptsim_rng::forall;
use ptsim_service::protocol::{
    BatchItem, HealthWire, InjectKind, ProtoError, Quality, Rejection, Request, Response,
    ShardHealthWire, DEFAULT_DEADLINE_MS, MAX_BATCH, MAX_DEADLINE_MS, MAX_PAD, MAX_PRIORITY,
    TEMP_BOUNDS,
};
use ptsim_service::wire::{decode_request, decode_response, encode_request, encode_response};

fn bytes(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    vec_in(Strategy::map(0u32..256, |b| b as u8), len)
}

fn some_request(die: u64, temp: f64, priority: u8, deadline: u64, pick: u32) -> Request {
    match pick {
        0 => Request::Read {
            die,
            temp_c: temp,
            priority,
            deadline_ms: deadline,
        },
        1 => Request::Calibrate {
            die,
            deadline_ms: deadline,
        },
        2 => Request::Health,
        3 => Request::Ping {
            pad: deadline.min(MAX_PAD),
        },
        4 => Request::Inject {
            die,
            kind: match die % 5 {
                0 => InjectKind::DegradeDie,
                1 => InjectKind::HealDie,
                2 => InjectKind::PanicConversion,
                3 => InjectKind::PanicWorker,
                _ => InjectKind::StallMs(deadline),
            },
        },
        5 => Request::BatchRead {
            die0: die,
            count: 1 + die % MAX_BATCH,
            temp_c: temp,
            priority,
            deadline_ms: deadline,
        },
        _ => Request::Shutdown,
    }
}

fn some_response(die: u64, temp: f64, mv: f64, pj: f64, pick: u32, q: u32) -> Response {
    let quality = [Quality::Nominal, Quality::Recovered, Quality::Degraded][q as usize];
    let rejection = [
        Rejection::Timeout,
        Rejection::Overloaded,
        Rejection::ShardDown,
        Rejection::BadRequest,
        Rejection::WorkerPanicked,
        Rejection::ConversionFailed,
    ][(die % 6) as usize];
    match pick {
        0 => Response::Reading {
            die,
            temp_c: temp,
            d_vtn_mv: mv,
            d_vtp_mv: -mv,
            energy_pj: pj,
            quality,
        },
        1 => Response::Calibrated { die, quality },
        2 => Response::Pong {
            pad: "x".repeat((die % 64) as usize),
        },
        3 => Response::Injected { die },
        4 => Response::rejected(rejection, format!("detail {die}")),
        5 => Response::Batch {
            items: vec![
                BatchItem::Reading {
                    die,
                    temp_c: temp,
                    d_vtn_mv: mv,
                    d_vtp_mv: -mv,
                    energy_pj: pj,
                    quality,
                },
                BatchItem::Rejected {
                    die: die + 1,
                    rejection,
                    detail: format!("item detail {die}"),
                },
            ],
        },
        6 => Response::Health(HealthWire {
            shards: vec![ShardHealthWire {
                id: die % 8,
                state: "up".to_string(),
                restarts: die % 3,
                queue_len: die % 17,
                dies: 16,
            }],
            counters: vec![("svc.served".to_string(), die), (String::new(), 0)],
            uptime_ms: die * 7,
            coalesce_max: 1 + die % 64,
            wire_version: 2,
        }),
        _ => Response::ShuttingDown,
    }
}

forall! {
    #[test]
    fn binary_requests_round_trip(
        die in 0u64..1_000_000,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        priority in 0u32..4,
        deadline in 1u64..MAX_DEADLINE_MS,
        pick in 0u32..7
    ) {
        let req = some_request(die, temp, priority as u8, deadline, pick);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    #[test]
    fn binary_responses_round_trip(
        die in 0u64..1_000_000,
        temp in -50.0f64..150.0,
        mv in -80.0f64..80.0,
        pj in 0.0f64..1e6,
        pick in 0u32..8,
        q in 0u32..3
    ) {
        let resp = some_response(die, temp, mv, pj, pick, q);
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    #[test]
    fn binary_and_json_codecs_agree(
        die in 0u64..1_000_000,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        priority in 0u32..4,
        deadline in 1u64..MAX_DEADLINE_MS,
        pick in 0u32..7
    ) {
        // Both codecs are total over the request model: a value that
        // survives one round-trip survives the other, unchanged.
        let req = some_request(die, temp, priority as u8, deadline, pick);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let via_binary = decode_request(&buf).unwrap();
        let via_json = Request::from_json_bytes(req.to_json().as_bytes()).unwrap();
        assert_eq!(via_binary, via_json);
    }

    #[test]
    fn garbage_bytes_never_panic_the_binary_request_decoder(garbage in bytes(0..256)) {
        // Typed error or a fully bounds-checked request; never a panic —
        // the same contract the JSON parser keeps.
        match decode_request(&garbage) {
            Ok(Request::Read { temp_c, priority, deadline_ms, .. }) => {
                assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
                assert!(priority <= MAX_PRIORITY);
                assert!(deadline_ms <= MAX_DEADLINE_MS);
            }
            Ok(Request::BatchRead { die0, count, temp_c, priority, deadline_ms }) => {
                assert!((1..=MAX_BATCH).contains(&count));
                assert!(die0.checked_add(count).is_some());
                assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
                assert!(priority <= MAX_PRIORITY);
                assert!(deadline_ms <= MAX_DEADLINE_MS);
            }
            Ok(Request::Ping { pad }) => assert!(pad <= MAX_PAD),
            _ => {}
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_binary_response_decoder(garbage in bytes(0..256)) {
        // Responses carry no server-side bounds to re-check; the guarantee
        // under fuzz is purely "typed result, never a panic, never an
        // unbounded allocation" (count fields are plausibility-checked
        // against the remaining payload before any Vec is sized).
        let _ = decode_response(&garbage);
    }

    #[test]
    fn truncated_binary_requests_are_typed_never_panic(
        die in 0u64..1_000_000,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        deadline in 1u64..MAX_DEADLINE_MS,
        pick in 0u32..7,
        cut_frac in 0.0f64..1.0
    ) {
        let req = some_request(die, temp, 1, deadline, pick);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        // Cut strictly inside the payload; every prefix must decode to a
        // typed error (tag-only ops like health are 1 byte — skip those).
        if buf.len() > 1 {
            let cut = 1 + ((buf.len() - 2) as f64 * cut_frac) as usize;
            let err = decode_request(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::BadField(_) | ProtoError::OutOfBounds { .. }),
                "cut at {cut}/{} gave {err:?}",
                buf.len()
            );
        }
    }

    #[test]
    fn mutated_valid_binary_requests_keep_bounds(
        die in 0u64..64,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        flip_at_frac in 0.0f64..1.0,
        flip_to in 0u32..256
    ) {
        // Single-byte corruption of a well-formed binary read: either still
        // a valid in-bounds request, or a typed error — never a panic, and
        // never an out-of-bounds value admitted.
        let mut buf = Vec::new();
        encode_request(
            &Request::Read {
                die,
                temp_c: temp,
                priority: 1,
                deadline_ms: DEFAULT_DEADLINE_MS,
            },
            &mut buf,
        );
        let at = (buf.len() as f64 * flip_at_frac) as usize % buf.len();
        buf[at] = flip_to as u8;
        if let Ok(Request::Read { temp_c, priority, deadline_ms, .. }) = decode_request(&buf) {
            assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
            assert!(priority <= MAX_PRIORITY);
            assert!(deadline_ms <= MAX_DEADLINE_MS);
        }
    }
}

#[test]
fn appended_trailing_bytes_are_refused() {
    let mut buf = Vec::new();
    encode_request(&Request::Health, &mut buf);
    buf.push(0);
    assert!(matches!(
        decode_request(&buf),
        Err(ProtoError::OutOfBounds { .. })
    ));
}
