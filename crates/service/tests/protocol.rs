//! Property and fuzz coverage of the wire protocol: round-trips, and the
//! guarantee that no byte sequence — truncated, oversize, or garbage —
//! ever panics the codec. Malformed input must always surface as a typed
//! [`FrameError`] or [`ProtoError`].

use ptsim_rng::check::{vec_in, Strategy};
use ptsim_rng::forall;
use ptsim_service::protocol::{
    read_frame, write_frame, BatchItem, FrameError, InjectKind, Quality, Rejection, Request,
    Response, DEFAULT_DEADLINE_MS, MAX_BATCH, MAX_DEADLINE_MS, MAX_FRAME, MAX_PAD, MAX_PRIORITY,
    TEMP_BOUNDS,
};
use std::io::Cursor;

fn bytes(len: core::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    vec_in(Strategy::map(0u32..256, |b| b as u8), len)
}

forall! {
    #[test]
    fn request_json_round_trips(
        die in 0u64..1_000_000,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        priority in 0u32..4,
        deadline in 1u64..MAX_DEADLINE_MS,
        pick in 0u32..7
    ) {
        let req = match pick {
            0 => Request::Read { die, temp_c: temp, priority: priority as u8, deadline_ms: deadline },
            1 => Request::Calibrate { die, deadline_ms: deadline },
            2 => Request::Health,
            3 => Request::Ping { pad: deadline.min(MAX_PAD) },
            4 => Request::Inject { die, kind: InjectKind::StallMs(deadline) },
            5 => Request::BatchRead {
                die0: die,
                count: 1 + die % MAX_BATCH,
                temp_c: temp,
                priority: priority as u8,
                deadline_ms: deadline,
            },
            _ => Request::Shutdown,
        };
        let back = Request::from_json_bytes(req.to_json().as_bytes()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_json_round_trips(
        die in 0u64..1_000_000,
        temp in -50.0f64..150.0,
        mv in -80.0f64..80.0,
        pj in 0.0f64..1e6,
        pick in 0u32..7,
        q in 0u32..3
    ) {
        let quality = [Quality::Nominal, Quality::Recovered, Quality::Degraded][q as usize];
        let rejection = [
            Rejection::Timeout,
            Rejection::Overloaded,
            Rejection::ShardDown,
            Rejection::BadRequest,
            Rejection::WorkerPanicked,
            Rejection::ConversionFailed,
        ][(die % 6) as usize];
        let resp = match pick {
            0 => Response::Reading { die, temp_c: temp, d_vtn_mv: mv, d_vtp_mv: -mv, energy_pj: pj, quality },
            1 => Response::Calibrated { die, quality },
            2 => Response::Pong { pad: "x".repeat((die % 64) as usize) },
            3 => Response::Injected { die },
            4 => Response::rejected(rejection, format!("detail {die}")),
            5 => Response::Batch {
                items: vec![
                    BatchItem::Reading {
                        die,
                        temp_c: temp,
                        d_vtn_mv: mv,
                        d_vtp_mv: -mv,
                        energy_pj: pj,
                        quality,
                    },
                    BatchItem::Rejected {
                        die: die + 1,
                        rejection,
                        detail: format!("item detail {die}"),
                    },
                ],
            },
            _ => Response::ShuttingDown,
        };
        let back = Response::from_json_bytes(resp.to_json().as_bytes()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn frames_round_trip_any_payload(payload in bytes(0..2048)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf), MAX_FRAME).unwrap(), payload);
    }

    #[test]
    fn truncated_frames_are_typed_never_panic(payload in bytes(1..512), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Cut strictly inside the frame (header or payload).
        let cut = 1 + ((buf.len() - 2) as f64 * cut_frac) as usize;
        let err = read_frame(&mut Cursor::new(&buf[..cut]), MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, FrameError::Truncated { .. }),
            "cut at {cut}/{} gave {err:?}",
            buf.len()
        );
    }

    #[test]
    fn garbage_bytes_never_panic_the_frame_reader(garbage in bytes(0..128)) {
        // Whatever happens, it is a typed result, not a panic — and an
        // oversize prefix must be refused before allocation.
        match read_frame(&mut Cursor::new(&garbage), MAX_FRAME) {
            Ok(payload) => assert!(payload.len() <= MAX_FRAME),
            Err(
                FrameError::Closed
                | FrameError::Truncated { .. }
                | FrameError::Oversize { .. }
                | FrameError::Io(_),
            ) => {}
        }
    }

    #[test]
    fn garbage_payloads_never_panic_the_request_parser(garbage in bytes(0..256)) {
        // Typed error or a fully bounds-checked request; never a panic.
        match Request::from_json_bytes(&garbage) {
            Ok(Request::Read { temp_c, priority, deadline_ms, .. }) => {
                assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
                assert!(priority <= MAX_PRIORITY);
                assert!(deadline_ms <= MAX_DEADLINE_MS);
            }
            Ok(Request::BatchRead { die0, count, temp_c, priority, deadline_ms }) => {
                assert!((1..=MAX_BATCH).contains(&count));
                assert!(die0.checked_add(count).is_some());
                assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
                assert!(priority <= MAX_PRIORITY);
                assert!(deadline_ms <= MAX_DEADLINE_MS);
            }
            _ => {}
        }
    }

    #[test]
    fn mutated_valid_batch_requests_keep_bounds(
        die0 in 0u64..64,
        count in 1u64..MAX_BATCH + 1,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        flip_at_frac in 0.0f64..1.0,
        flip_to in 0u32..256
    ) {
        // Single-byte corruption of a well-formed batch_read: either still
        // a valid in-bounds request, or a typed error — never a panic, and
        // never an out-of-bounds batch admitted.
        let mut payload = Request::BatchRead {
            die0,
            count,
            temp_c: temp,
            priority: 1,
            deadline_ms: DEFAULT_DEADLINE_MS,
        }
        .to_json()
        .into_bytes();
        let at = (payload.len() as f64 * flip_at_frac) as usize % payload.len();
        payload[at] = flip_to as u8;
        if let Ok(Request::BatchRead { die0, count, temp_c, priority, deadline_ms }) =
            Request::from_json_bytes(&payload)
        {
            assert!((1..=MAX_BATCH).contains(&count));
            assert!(die0.checked_add(count).is_some());
            assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
            assert!(priority <= MAX_PRIORITY);
            assert!(deadline_ms <= MAX_DEADLINE_MS);
        }
    }

    #[test]
    fn mutated_valid_requests_keep_bounds(
        die in 0u64..64,
        temp in TEMP_BOUNDS.0..TEMP_BOUNDS.1,
        flip_at_frac in 0.0f64..1.0,
        flip_to in 0u32..256
    ) {
        // Single-byte corruption of a well-formed request: either still a
        // valid in-bounds request, or a typed error.
        let mut payload = Request::Read {
            die,
            temp_c: temp,
            priority: 1,
            deadline_ms: DEFAULT_DEADLINE_MS,
        }
        .to_json()
        .into_bytes();
        let at = (payload.len() as f64 * flip_at_frac) as usize % payload.len();
        payload[at] = flip_to as u8;
        if let Ok(Request::Read { temp_c, priority, deadline_ms, .. }) =
            Request::from_json_bytes(&payload)
        {
            assert!((TEMP_BOUNDS.0..=TEMP_BOUNDS.1).contains(&temp_c));
            assert!(priority <= MAX_PRIORITY);
            assert!(deadline_ms <= MAX_DEADLINE_MS);
        }
    }
}

#[test]
fn oversize_payload_is_refused_on_write_too() {
    let huge = vec![b'x'; MAX_FRAME + 1];
    assert!(write_frame(&mut Vec::new(), &huge).is_err());
}
