//! The campaign catalog: every fault family at a normalized severity.
//!
//! [`catalog`] maps one severity knob in `(0, 1]` onto physically-scaled
//! fault plans, one entry per failure mechanism. The R1 fault campaign and
//! the `fault_gates` tier-1 tests sweep this same catalog, so the gate
//! asserts exactly what the campaign reports.

use crate::fault::{Channel, Fault, ReplicaSel};
use crate::plan::FaultPlan;
use ptsim_device::units::Celsius;

/// One catalog entry: a named fault plan plus how the campaign should
/// account for it.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Short stable identifier (used in reports and gates).
    pub id: &'static str,
    /// Human description of the mechanism.
    pub describes: &'static str,
    /// Catastrophic faults must *never* produce an un-flagged reading —
    /// the fault gates demand ≥ 99 % detection for these.
    pub catastrophic: bool,
    /// Whether comparing the reading against the junction truth is
    /// meaningful (false for thermal-via opens, where the sensor correctly
    /// reports a *different* local temperature).
    pub junction_comparable: bool,
    /// Whether this entry is the reference demonstration of degraded
    /// temperature-only mode (dead PSRO bank).
    pub degraded_demo: bool,
    /// The faults to inject.
    pub plan: FaultPlan,
}

/// Stuck counter bit used by the catastrophic stuck-at entry. Bit 12
/// (weight 4096) sits above every healthy TSRO count and inside the
/// prescaled PSRO count range, so forcing it high always corrupts at least
/// the TSRO channel of the afflicted replica.
pub const STUCK_BIT: u32 = 12;

/// The full catalog at normalized severity `severity` ∈ (0, 1].
///
/// Severity scales the *analog* knobs (slow-down factors, jitter sigma,
/// droop depth, slip magnitude, drift, via offset, SEU bit weight);
/// all-or-nothing faults (dead stages) are severity-independent.
///
/// # Panics
///
/// Panics if `severity` is not in `(0, 1]`.
#[must_use]
pub fn catalog(severity: f64) -> Vec<CatalogEntry> {
    assert!(
        severity > 0.0 && severity <= 1.0,
        "severity {severity} outside (0, 1]"
    );
    let s = severity;
    // SEU bit weight grows with severity: LSB-adjacent at 0.25, well into
    // the integer field at 1.0 (register 0 = ΔVtn, Q16.16).
    let seu_bit = (2.0 + 12.0 * s).round() as u32;
    vec![
        CatalogEntry {
            id: "dead-tsro",
            describes: "all TSRO replicas dead (stuck ring node)",
            catastrophic: true,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::DeadRoStage {
                channel: Channel::Tsro,
                replica: ReplicaSel::All,
            }),
        },
        CatalogEntry {
            id: "dead-psro-n",
            describes: "PSRO-N bank dead — degraded temperature-only mode",
            catastrophic: true,
            junction_comparable: true,
            degraded_demo: true,
            plan: FaultPlan::single(Fault::DeadRoStage {
                channel: Channel::PsroN,
                replica: ReplicaSel::All,
            }),
        },
        CatalogEntry {
            id: "dead-replica",
            describes: "primary TSRO replica dead — voting must mask it",
            catastrophic: true,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::DeadRoStage {
                channel: Channel::Tsro,
                replica: ReplicaSel::Index(0),
            }),
        },
        CatalogEntry {
            id: "slow-tsro",
            describes: "uniformly slow TSRO (resistive defect)",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            // A *uniform* slowdown is common-mode across every replica, so
            // no on-chip vote or band can see it; the conversion solve
            // amplifies a 1 % TSRO inconsistency into ≈ 2.5 °C. The catalog
            // envelope for this mechanism is therefore capped at 1.2 % —
            // larger resistive defects present as slow/dead replicas, which
            // the voter catches.
            plan: FaultPlan::single(Fault::SlowRo {
                channel: Channel::Tsro,
                replica: ReplicaSel::All,
                factor: 1.0 - 0.012 * s,
            }),
        },
        CatalogEntry {
            id: "slow-replica",
            describes: "one PSRO-P replica at half speed",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::SlowRo {
                channel: Channel::PsroP,
                replica: ReplicaSel::Index(1),
                factor: 1.0 - 0.5 * s,
            }),
        },
        CatalogEntry {
            id: "jitter",
            describes: "per-count frequency jitter on every ring (TSV noise)",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            plan: Channel::ALL.iter().fold(FaultPlan::new(), |plan, &ch| {
                plan.with(Fault::RoJitter {
                    channel: ch,
                    replica: ReplicaSel::All,
                    sigma_rel: 0.01 * s,
                })
            }),
        },
        CatalogEntry {
            id: "supply-droop",
            describes: "random supply-droop glitches during count windows",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            // Depth capped like `slow-tsro`: a glitch that happens to hit
            // only the TSRO window is common-mode for that channel.
            plan: FaultPlan::single(Fault::SupplyDroop {
                depth: 0.012 * s,
                probability: 0.5,
            }),
        },
        CatalogEntry {
            id: "stuck-bit",
            describes: "counter bit stuck high on the primary replica",
            catastrophic: true,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::CounterStuckBit {
                replica: ReplicaSel::Index(0),
                bit: STUCK_BIT,
                stuck_high: true,
            }),
        },
        CatalogEntry {
            id: "count-slip",
            describes: "ripple-counter slip of a few counts",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::CountSlip {
                replica: ReplicaSel::All,
                max_slip: (8.0 * s).ceil() as u64,
            }),
        },
        CatalogEntry {
            id: "ref-drift",
            describes: "reference clock off frequency",
            catastrophic: false,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::RefClockDrift { rel: 0.02 * s }),
        },
        CatalogEntry {
            id: "seu",
            describes: "single-event upset in the ΔVtn calibration register",
            catastrophic: true,
            junction_comparable: true,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::CalibRegisterSeu {
                register: 0,
                bit: seu_bit,
            }),
        },
        CatalogEntry {
            id: "via-open",
            describes: "thermal via open — sensor decoupled from junction",
            catastrophic: false,
            junction_comparable: false,
            degraded_demo: false,
            plan: FaultPlan::single(Fault::ThermalViaOpen {
                delta: Celsius(-15.0 * s),
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_fault_family() {
        let entries = catalog(1.0);
        let mut families: Vec<&str> = Vec::new();
        for e in &entries {
            for f in e.plan.faults() {
                let name = match f {
                    Fault::DeadRoStage { .. } => "dead",
                    Fault::SlowRo { .. } => "slow",
                    Fault::RoJitter { .. } => "jitter",
                    Fault::SupplyDroop { .. } => "droop",
                    Fault::CounterStuckBit { .. } => "stuck",
                    Fault::CountSlip { .. } => "slip",
                    Fault::RefClockDrift { .. } => "refdrift",
                    Fault::ThermalViaOpen { .. } => "via",
                    Fault::CalibRegisterSeu { .. } => "seu",
                };
                if !families.contains(&name) {
                    families.push(name);
                }
            }
        }
        assert_eq!(families.len(), 9, "families {families:?}");
    }

    #[test]
    fn ids_are_unique_and_stable_across_severity() {
        let a = catalog(0.25);
        let b = catalog(1.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
        }
        let mut ids: Vec<_> = a.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len());
    }

    #[test]
    fn severity_scales_analog_knobs() {
        let lo = catalog(0.25);
        let hi = catalog(1.0);
        let factor = |entries: &[CatalogEntry]| {
            entries
                .iter()
                .find(|e| e.id == "slow-tsro")
                .and_then(|e| match e.plan.faults()[0] {
                    Fault::SlowRo { factor, .. } => Some(factor),
                    _ => None,
                })
                .unwrap()
        };
        assert!(factor(&hi) < factor(&lo));
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn severity_out_of_range_rejected() {
        let _ = catalog(1.5);
    }

    #[test]
    fn catastrophic_set_matches_issue_contract() {
        // dead RO stage, calib-register SEU, counter stuck-at — all marked.
        let cat: Vec<_> = catalog(0.5)
            .into_iter()
            .filter(|e| e.catastrophic)
            .map(|e| e.id)
            .collect();
        for id in [
            "dead-tsro",
            "dead-psro-n",
            "dead-replica",
            "stuck-bit",
            "seu",
        ] {
            assert!(cat.contains(&id), "{id} must be catastrophic");
        }
    }
}
