//! A set of concurrently-active faults and how they corrupt measurements.
//!
//! The sensor core calls the `*_effect` hooks at the exact points the real
//! hardware would be corrupted: the ring frequency before counting, the raw
//! count before frequency reconstruction, the reference clock defining the
//! gate window, and the local temperature the die presents to the bank.
//! An empty plan is a no-op at every hook, so the healthy path is
//! bit-identical with or without the fault subsystem.

use crate::fault::{Channel, Fault};
use ptsim_device::units::{Celsius, Hertz};
use ptsim_rng::gaussian;
use ptsim_rng::{Rng, RngCore};

/// An ordered collection of active faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (healthy) plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with one fault.
    #[must_use]
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a fault in place.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// True if no fault is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The active faults, in injection order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Corrupts the true oscillation frequency seen by `(channel, replica)`
    /// for one gated count. Random effects (jitter, droop) draw from `rng`,
    /// so a fixed seed reproduces the fault realization exactly.
    pub fn frequency_effect<R: RngCore + ?Sized>(
        &self,
        channel: Channel,
        replica: usize,
        f: Hertz,
        rng: &mut R,
    ) -> Hertz {
        let mut f = f.0;
        for fault in &self.faults {
            match *fault {
                Fault::DeadRoStage {
                    channel: ch,
                    replica: sel,
                } if ch == channel && sel.matches(replica) => {
                    f = 0.0;
                }
                Fault::SlowRo {
                    channel: ch,
                    replica: sel,
                    factor,
                } if ch == channel && sel.matches(replica) => {
                    f *= factor.max(0.0);
                }
                Fault::RoJitter {
                    channel: ch,
                    replica: sel,
                    sigma_rel,
                } if ch == channel && sel.matches(replica) => {
                    f *= 1.0 + sigma_rel * gaussian::standard_normal(rng);
                }
                Fault::SupplyDroop { depth, probability }
                    if rng.gen_bool(probability.clamp(0.0, 1.0)) =>
                {
                    f *= (1.0 - depth).max(0.0);
                }
                _ => {}
            }
        }
        Hertz(f.max(0.0))
    }

    /// Corrupts a raw gated count from replica `replica`'s counter.
    /// `max_count` is the counter's largest representable count; corrupted
    /// values stay inside it (the registers physically cannot hold more).
    pub fn count_effect<R: RngCore + ?Sized>(
        &self,
        replica: usize,
        count: u64,
        max_count: u64,
        rng: &mut R,
    ) -> u64 {
        let mut c = count;
        for fault in &self.faults {
            match *fault {
                Fault::CounterStuckBit {
                    replica: sel,
                    bit,
                    stuck_high,
                } if sel.matches(replica) && bit < 63 => {
                    if stuck_high {
                        c |= 1 << bit;
                    } else {
                        c &= !(1 << bit);
                    }
                }
                Fault::CountSlip {
                    replica: sel,
                    max_slip,
                } if sel.matches(replica) && max_slip > 0 => {
                    let slip = rng.gen_range(0..2 * max_slip + 1) as i64 - max_slip as i64;
                    c = c.saturating_add_signed(slip);
                }
                _ => {}
            }
        }
        c.min(max_count)
    }

    /// The factor the backend's frequency estimates are scaled by because
    /// the reference clock is off: with the reference running at
    /// `(1 + rel) · f_nom`, every gate window is `1/(1 + rel)` of its
    /// nominal length, so reconstructed frequencies read `1/(1 + rel)` of
    /// truth. Returns `1.0` for a healthy plan.
    #[must_use]
    pub fn ref_clock_factor(&self) -> f64 {
        let mut factor = 1.0;
        for fault in &self.faults {
            if let Fault::RefClockDrift { rel } = *fault {
                factor /= 1.0 + rel;
            }
        }
        factor
    }

    /// The local temperature the sensor actually sits at, given the
    /// junction temperature it is supposed to report (thermal-via opens
    /// decouple the two).
    #[must_use]
    pub fn local_temperature(&self, junction: Celsius) -> Celsius {
        let mut t = junction.0;
        for fault in &self.faults {
            if let Fault::ThermalViaOpen { delta } = *fault {
                t += delta.0;
            }
        }
        Celsius(t)
    }

    /// All calibration-register SEUs in this plan, as `(register, bit)`
    /// pairs. Applied once at injection time by the sensor.
    #[must_use]
    pub fn calib_seus(&self) -> Vec<(usize, u32)> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CalibRegisterSeu { register, bit } => Some((register, bit)),
                _ => None,
            })
            .collect()
    }

    /// True if any fault targets the frequency or count path of
    /// `(channel, replica)` — used by tests to reason about coverage.
    #[must_use]
    pub fn targets(&self, channel: Channel, replica: usize) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::DeadRoStage {
                channel: ch,
                replica: sel,
            }
            | Fault::SlowRo {
                channel: ch,
                replica: sel,
                ..
            }
            | Fault::RoJitter {
                channel: ch,
                replica: sel,
                ..
            } => ch == channel && sel.matches(replica),
            Fault::CounterStuckBit { replica: sel, .. } | Fault::CountSlip { replica: sel, .. } => {
                sel.matches(replica)
            }
            Fault::SupplyDroop { .. } | Fault::RefClockDrift { .. } => true,
            Fault::ThermalViaOpen { .. } | Fault::CalibRegisterSeu { .. } => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ReplicaSel;
    use ptsim_rng::Pcg64;

    #[test]
    fn empty_plan_is_identity_everywhere() {
        let plan = FaultPlan::new();
        let mut rng = Pcg64::seed_from_u64(1);
        assert!(plan.is_empty());
        assert_eq!(
            plan.frequency_effect(Channel::Tsro, 0, Hertz(1e8), &mut rng)
                .0,
            1e8
        );
        assert_eq!(plan.count_effect(0, 1234, 65535, &mut rng), 1234);
        assert_eq!(plan.ref_clock_factor(), 1.0);
        assert_eq!(plan.local_temperature(Celsius(85.0)), Celsius(85.0));
        assert!(plan.calib_seus().is_empty());
    }

    #[test]
    fn dead_stage_kills_only_its_target() {
        let plan = FaultPlan::single(Fault::DeadRoStage {
            channel: Channel::PsroN,
            replica: ReplicaSel::Index(1),
        });
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(
            plan.frequency_effect(Channel::PsroN, 1, Hertz(1e8), &mut rng)
                .0,
            0.0
        );
        assert_eq!(
            plan.frequency_effect(Channel::PsroN, 0, Hertz(1e8), &mut rng)
                .0,
            1e8
        );
        assert_eq!(
            plan.frequency_effect(Channel::PsroP, 1, Hertz(1e8), &mut rng)
                .0,
            1e8
        );
        assert!(plan.targets(Channel::PsroN, 1));
        assert!(!plan.targets(Channel::PsroN, 0));
    }

    #[test]
    fn stuck_bit_forces_bit_value() {
        let plan = FaultPlan::single(Fault::CounterStuckBit {
            replica: ReplicaSel::All,
            bit: 3,
            stuck_high: true,
        });
        let mut rng = Pcg64::seed_from_u64(3);
        assert_eq!(plan.count_effect(0, 0b0000, 65535, &mut rng), 0b1000);
        assert_eq!(plan.count_effect(2, 0b1000, 65535, &mut rng), 0b1000);
        let low = FaultPlan::single(Fault::CounterStuckBit {
            replica: ReplicaSel::All,
            bit: 3,
            stuck_high: false,
        });
        assert_eq!(low.count_effect(0, 0b1111, 65535, &mut rng), 0b0111);
    }

    #[test]
    fn count_slip_bounded_and_clamped() {
        let plan = FaultPlan::single(Fault::CountSlip {
            replica: ReplicaSel::All,
            max_slip: 5,
        });
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..200 {
            let c = plan.count_effect(0, 100, 120, &mut rng);
            assert!((95..=105).contains(&c));
        }
        // Saturates at the register ceiling and at zero.
        for _ in 0..200 {
            assert!(plan.count_effect(0, 119, 120, &mut rng) <= 120);
            let near_zero = plan.count_effect(0, 2, 120, &mut rng);
            assert!(near_zero <= 7);
        }
    }

    #[test]
    fn ref_drift_scales_reconstruction() {
        let plan = FaultPlan::single(Fault::RefClockDrift { rel: 0.02 });
        assert!((plan.ref_clock_factor() - 1.0 / 1.02).abs() < 1e-12);
    }

    #[test]
    fn thermal_via_open_offsets_local_temperature() {
        let plan = FaultPlan::single(Fault::ThermalViaOpen {
            delta: Celsius(-12.0),
        });
        assert_eq!(plan.local_temperature(Celsius(85.0)), Celsius(73.0));
    }

    #[test]
    fn seus_are_enumerated() {
        let plan = FaultPlan::new()
            .with(Fault::CalibRegisterSeu {
                register: 0,
                bit: 12,
            })
            .with(Fault::CalibRegisterSeu {
                register: 4,
                bit: 3,
            });
        assert_eq!(plan.calib_seus(), vec![(0, 12), (4, 3)]);
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let plan = FaultPlan::single(Fault::RoJitter {
            channel: Channel::Tsro,
            replica: ReplicaSel::All,
            sigma_rel: 0.01,
        });
        let mut a = Pcg64::seed_from_u64(9);
        let mut b = Pcg64::seed_from_u64(9);
        for _ in 0..50 {
            let fa = plan.frequency_effect(Channel::Tsro, 0, Hertz(1e8), &mut a);
            let fb = plan.frequency_effect(Channel::Tsro, 0, Hertz(1e8), &mut b);
            assert_eq!(fa.0.to_bits(), fb.0.to_bits());
        }
    }
}
