//! # ptsim-faults
//!
//! Injectable hardware faults for the SOCC 2012 PT-sensor reproduction —
//! the "what if the chip is broken" half of the robustness story.
//!
//! The paper's sensor exists precisely because TSV 3D stacks stress and
//! degrade the silicon around them; a reproduction that only ever simulates
//! a healthy chip cannot say anything about trustworthiness. This crate
//! provides:
//!
//! - [`Fault`] — a catalog of injectable defects with physical severity
//!   knobs: dead/slow ring-oscillator stages, per-count frequency jitter,
//!   supply-droop glitches, counter stuck-at bits and count slip,
//!   calibration-register SEUs, reference-clock drift, and thermal-via
//!   opens.
//! - [`FaultPlan`] — a set of concurrently-active faults with hooks the
//!   sensor core calls at the exact points real hardware would be
//!   corrupted. An empty plan is a no-op at every hook, so the healthy
//!   path stays bit-identical.
//! - [`catalog::catalog`] — the severity-normalized campaign catalog swept
//!   by the R1 fault-injection experiment and the `fault_gates` tier-1
//!   tests.
//!
//! ```
//! use ptsim_faults::{Channel, Fault, FaultPlan, ReplicaSel};
//! use ptsim_device::units::Hertz;
//!
//! let plan = FaultPlan::single(Fault::DeadRoStage {
//!     channel: Channel::Tsro,
//!     replica: ReplicaSel::Index(0),
//! });
//! let mut rng = ptsim_rng::Pcg64::seed_from_u64(1);
//! // The primary TSRO replica is dead; replica 1 is untouched.
//! assert_eq!(plan.frequency_effect(Channel::Tsro, 0, Hertz(1e8), &mut rng).0, 0.0);
//! assert_eq!(plan.frequency_effect(Channel::Tsro, 1, Hertz(1e8), &mut rng).0, 1e8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod fault;
pub mod plan;

pub use catalog::{catalog, CatalogEntry, STUCK_BIT};
pub use fault::{Channel, Fault, ReplicaSel};
pub use plan::FaultPlan;
