//! The injectable fault catalog: what can break, and how badly.

use ptsim_device::units::Celsius;

/// Which oscillator channel of the sensor bank a fault attacks.
///
/// Mirrors the sensor's `RoClass` without depending on `ptsim-core` (the
/// dependency points the other way: the core consumes fault plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// The near-threshold temperature-sensitive oscillator.
    Tsro,
    /// The NMOS-sensitive process oscillator.
    PsroN,
    /// The PMOS-sensitive process oscillator.
    PsroP,
}

impl Channel {
    /// All channels in reporting order.
    pub const ALL: [Channel; 3] = [Channel::Tsro, Channel::PsroN, Channel::PsroP];

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Channel::Tsro => "TSRO",
            Channel::PsroN => "PSRO-N",
            Channel::PsroP => "PSRO-P",
        }
    }
}

/// Which redundant replica(s) of a channel a fault hits.
///
/// A hardened sensor instantiates `replicas` copies of each oscillator and
/// its counter; an independent physical defect usually kills one copy, while
/// a shared defect (supply, reference clock) hits all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaSel {
    /// Every replica (a shared/bank-wide defect).
    All,
    /// One specific replica (0 is the primary).
    Index(usize),
}

impl ReplicaSel {
    /// Whether this selector covers replica `r`.
    #[must_use]
    pub fn matches(self, r: usize) -> bool {
        match self {
            ReplicaSel::All => true,
            ReplicaSel::Index(i) => i == r,
        }
    }
}

/// One injectable hardware fault, with its severity knobs.
///
/// Severities are physical: frequency factors, relative sigmas, counter bit
/// indices, °C offsets. [`crate::catalog::catalog`] maps a normalized
/// severity in `(0, 1]` onto these knobs for campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A stage of the ring is dead (stuck node) — oscillation stops
    /// entirely, the counter sees zero edges.
    DeadRoStage {
        /// Affected channel.
        channel: Channel,
        /// Affected replica(s).
        replica: ReplicaSel,
    },
    /// A degraded (resistive/slow) ring: frequency multiplied by `factor`.
    /// `factor < 1` models a slow ring, `factor > 1` a fast (e.g. bridging)
    /// defect.
    SlowRo {
        /// Affected channel.
        channel: Channel,
        /// Affected replica(s).
        replica: ReplicaSel,
        /// Multiplicative frequency factor (must be ≥ 0).
        factor: f64,
    },
    /// Random per-measurement frequency jitter (substrate/TSV noise
    /// coupling): each gated count sees `f · (1 + σ·N(0,1))`.
    RoJitter {
        /// Affected channel.
        channel: Channel,
        /// Affected replica(s).
        replica: ReplicaSel,
        /// Relative 1-sigma of the per-measurement frequency error.
        sigma_rel: f64,
    },
    /// Supply-droop glitches during the counting window: with probability
    /// `probability` per gated count, the ring runs `depth` slower for the
    /// whole window. Hits every channel (shared supply); each replica's
    /// window is gated at a slightly different instant, so droops strike
    /// replicas independently.
    SupplyDroop {
        /// Relative frequency loss while drooped (0..1).
        depth: f64,
        /// Probability a given gated count is hit.
        probability: f64,
    },
    /// A counter flip-flop stuck at 0 or 1: the raw count has `bit` forced
    /// to `stuck_high` before the frequency reconstruction.
    CounterStuckBit {
        /// Affected replica(s) — each replica has its own counter.
        replica: ReplicaSel,
        /// Stuck bit index (0 = LSB).
        bit: u32,
        /// `true` = stuck-at-1, `false` = stuck-at-0.
        stuck_high: bool,
    },
    /// Metastability/ripple count slip: each raw count gains a uniform
    /// error in `[-max_slip, +max_slip]` counts.
    CountSlip {
        /// Affected replica(s).
        replica: ReplicaSel,
        /// Maximum slip magnitude in counts.
        max_slip: u64,
    },
    /// The reference clock runs at `(1 + rel)` times its nominal frequency
    /// (crystal aging/drift) — every gated window is the wrong length.
    RefClockDrift {
        /// Relative frequency error of the reference (e.g. `0.01` = +1 %).
        rel: f64,
    },
    /// A thermal via next to the sensor is open: the sensor's local
    /// temperature differs from the junction it is supposed to report by
    /// `delta` (the sensor itself stays healthy — this is a system-level
    /// fault only detectable by cross-sensor comparison).
    ThermalViaOpen {
        /// Local-minus-junction temperature offset.
        delta: Celsius,
    },
    /// A single-event upset in one Q-format calibration register: bit `bit`
    /// of register `register` flips once at injection time.
    ///
    /// Register indices follow the sensor's storage order:
    /// 0 = ΔVtn, 1 = ΔVtp, 2 = µn, 3 = µp, 4 = ln-TSRO-scale.
    CalibRegisterSeu {
        /// Register index (0..5).
        register: usize,
        /// Bit to flip (0 = LSB).
        bit: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_selectors() {
        assert!(ReplicaSel::All.matches(0));
        assert!(ReplicaSel::All.matches(7));
        assert!(ReplicaSel::Index(2).matches(2));
        assert!(!ReplicaSel::Index(2).matches(0));
    }

    #[test]
    fn channel_names() {
        assert_eq!(Channel::Tsro.name(), "TSRO");
        assert_eq!(Channel::ALL.len(), 3);
    }
}
