//! Property-based invariants of the fault-injection primitives.

use ptsim_device::units::{Celsius, Hertz};
use ptsim_faults::{catalog, Channel, Fault, FaultPlan, ReplicaSel};
use ptsim_rng::{forall, Pcg64};

forall! {
    #[test]
    fn frequency_effects_never_go_negative(
        f in 1.0f64..1e10,
        factor in -0.5f64..2.0,
        sigma in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let plan = FaultPlan::new()
            .with(Fault::SlowRo {
                channel: Channel::Tsro,
                replica: ReplicaSel::All,
                factor,
            })
            .with(Fault::RoJitter {
                channel: Channel::Tsro,
                replica: ReplicaSel::All,
                sigma_rel: sigma,
            })
            .with(Fault::SupplyDroop { depth: 0.9, probability: 0.5 });
        let mut rng = Pcg64::seed_from_u64(seed);
        for replica in 0..3 {
            let out = plan.frequency_effect(Channel::Tsro, replica, Hertz(f), &mut rng);
            assert!(out.0 >= 0.0 && out.0.is_finite(), "f {f} -> {out}");
        }
    }

    #[test]
    fn count_effects_stay_inside_register_range(
        count in 0u64..70_000,
        bit in 0u32..16,
        stuck_high in 0u8..2,
        slip in 1u64..32,
        seed in 0u64..1000,
    ) {
        let max_count = 65_535;
        let plan = FaultPlan::new()
            .with(Fault::CounterStuckBit {
                replica: ReplicaSel::All,
                bit,
                stuck_high: stuck_high == 1,
            })
            .with(Fault::CountSlip { replica: ReplicaSel::All, max_slip: slip });
        let mut rng = Pcg64::seed_from_u64(seed);
        let out = plan.count_effect(0, count.min(max_count), max_count, &mut rng);
        assert!(out <= max_count, "count {count} -> {out}");
    }

    #[test]
    fn stuck_bit_effect_is_idempotent(
        count in 0u64..65_536,
        bit in 0u32..16,
        stuck_high in 0u8..2,
    ) {
        let plan = FaultPlan::single(Fault::CounterStuckBit {
            replica: ReplicaSel::All,
            bit,
            stuck_high: stuck_high == 1,
        });
        let mut rng = Pcg64::seed_from_u64(1);
        let once = plan.count_effect(0, count, 65_535, &mut rng);
        let twice = plan.count_effect(0, once, 65_535, &mut rng);
        assert_eq!(once, twice);
    }

    #[test]
    fn dead_stage_dominates_every_other_frequency_fault(
        f in 1.0f64..1e10,
        factor in 0.1f64..2.0,
        seed in 0u64..100,
    ) {
        let plan = FaultPlan::new()
            .with(Fault::DeadRoStage {
                channel: Channel::PsroN,
                replica: ReplicaSel::All,
            })
            .with(Fault::SlowRo {
                channel: Channel::PsroN,
                replica: ReplicaSel::All,
                factor,
            });
        let mut rng = Pcg64::seed_from_u64(seed);
        assert_eq!(
            plan.frequency_effect(Channel::PsroN, 0, Hertz(f), &mut rng).0,
            0.0
        );
    }

    #[test]
    fn untargeted_paths_are_bit_exact(
        f in 1.0f64..1e10,
        count in 0u64..65_536,
        seed in 0u64..100,
    ) {
        // A plan that targets only (PsroP, replica 2) must leave every
        // other (channel, replica) untouched, bit for bit.
        let plan = FaultPlan::new()
            .with(Fault::SlowRo {
                channel: Channel::PsroP,
                replica: ReplicaSel::Index(2),
                factor: 0.5,
            })
            .with(Fault::CounterStuckBit {
                replica: ReplicaSel::Index(2),
                bit: 5,
                stuck_high: true,
            });
        let mut rng = Pcg64::seed_from_u64(seed);
        for ch in Channel::ALL {
            for replica in 0..2 {
                let out = plan.frequency_effect(ch, replica, Hertz(f), &mut rng);
                assert_eq!(out.0.to_bits(), f.to_bits());
                assert_eq!(plan.count_effect(replica, count, 65_535, &mut rng), count);
            }
        }
    }

    #[test]
    fn catalog_is_deterministic_in_severity(severity in 0.01f64..1.0) {
        let a = catalog(severity);
        let b = catalog(severity);
        assert_eq!(a, b);
        for e in &a {
            assert!(!e.plan.is_empty(), "{} has an empty plan", e.id);
        }
    }

    #[test]
    fn via_open_shifts_local_temperature_linearly(
        junction in -40.0f64..125.0,
        delta in -30.0f64..30.0,
    ) {
        let plan = FaultPlan::single(Fault::ThermalViaOpen { delta: Celsius(delta) });
        let local = plan.local_temperature(Celsius(junction));
        assert!((local.0 - junction - delta).abs() < 1e-12);
    }
}
