//! Seeded, shrink-free property-test harness — the workspace's in-tree
//! replacement for `proptest`.
//!
//! The [`forall!`](crate::forall) macro runs each property over
//! [`CASES`] deterministically seeded random inputs. A failing case reports
//! the generated inputs (and the case number) before re-raising the panic,
//! so failures are reproducible from the test name alone — no shrinking,
//! no persistence files, no external dependencies.
//!
//! ```
//! ptsim_rng::forall! {
//!     fn addition_commutes(a in -100.0f64..100.0, b in -100.0f64..100.0) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! // (inside a test module the property would carry `#[test]`)
//! addition_commutes();
//! ```

use crate::traits::{RngCore, SampleUniform};

/// Number of random cases each `forall!` property runs.
pub const CASES: u64 = 64;

/// Input generator usable on the right of `in` inside [`crate::forall!`].
///
/// Blanket-implemented for every [`SampleUniform`] range
/// (`0.0f64..1.0`, `1usize..50`, ...), plus the combinators in this module.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one input for a property case.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Transforms generated values through `f` (replacement for
    /// `proptest`'s `prop_map`).
    fn map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / a, B / b);
impl_strategy_tuple!(A / a, B / b, C / c);
impl_strategy_tuple!(A / a, B / b, C / c, D / d);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);

impl<S: SampleUniform> Strategy for S {
    type Value = S::Output;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> S::Output {
        self.sample_from(rng)
    }
}

/// Strategy producing a `Vec` whose elements come from `elem` and whose
/// length is drawn from `len`. Replacement for `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecIn<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// A `Vec` strategy: elements from `elem`, length drawn from `len`.
pub fn vec_in<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecIn<S> {
    VecIn { elem, len }
}

impl<S: Strategy> Strategy for VecIn<S> {
    type Value = Vec<S::Value>;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
        let n = self.len.sample_from(rng);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.elem.generate(rng));
        }
        out
    }
}

/// Strategy producing any *normal* `f64` (finite, non-zero exponent, not
/// subnormal), either sign. Replacement for `proptest::num::f64::NORMAL`.
#[derive(Debug, Clone, Copy)]
pub struct NormalF64;

/// Any normal (finite, non-subnormal) `f64`.
pub const NORMAL_F64: NormalF64 = NormalF64;

impl Strategy for NormalF64 {
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let sign = rng.next_u64() & (1 << 63);
        // Exponent in [1, 2046]: excludes zero/subnormals (0) and inf/NaN (2047).
        let exp = (1..2047u64).sample_from(rng) << 52;
        let mantissa = rng.next_u64() & ((1 << 52) - 1);
        f64::from_bits(sign | exp | mantissa)
    }

    type Value = f64;
}

/// Deterministic per-property base seed derived from the test name
/// (FNV-1a), so every property gets a distinct but reproducible stream.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `CASES` deterministic random property cases, replacing `proptest!`.
///
/// Syntax matches the `proptest!` subset the workspace used: an optional
/// `mut` pattern, `name in strategy` bindings where a strategy is any
/// [`check::Strategy`](crate::check::Strategy) (ranges,
/// [`vec_in`](crate::check::vec_in), [`NORMAL_F64`](crate::check::NORMAL_F64)).
/// Use plain `assert!`/`assert_eq!` in the body; a failing case prints the
/// generated inputs and re-raises the panic.
#[macro_export]
macro_rules! forall {
    // Default case count.
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::forall! {
            #![cases = $crate::check::CASES]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
    // Block-level override, mirroring proptest's
    // `#![proptest_config(ProptestConfig::with_cases(n))]`.
    (#![cases = $cases:expr] $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases: u64 = $cases;
            let __seed = $crate::check::seed_for(stringify!($name));
            for __case in 0..__cases {
                let mut __rng = $crate::Pcg64::seed_from_u64(
                    __seed ^ $crate::SplitMix64::finalize(__case),
                );
                let mut __ctx = ::std::string::String::new();
                $(
                    let __v = $crate::check::Strategy::generate(&($strat), &mut __rng);
                    __ctx.push_str(&::std::format!(
                        ::std::concat!("  ", ::std::stringify!($arg), " = {:?}\n"),
                        __v
                    ));
                    let $arg = __v;
                )*
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::eprintln!(
                        "forall!({}) case {}/{} failed with inputs:\n{}",
                        ::std::stringify!($name),
                        __case + 1,
                        __cases,
                        __ctx
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;

    crate::forall! {
        #[test]
        fn macro_generates_passing_test(x in 0.0f64..1.0, n in 1usize..10) {
            assert!((0.0..1.0).contains(&x));
            assert!((1..10).contains(&n));
        }

        #[test]
        fn macro_supports_mut_and_vec(mut xs in vec_in(-1.0f64..1.0, 1..20)) {
            xs.sort_by(f64::total_cmp);
            assert!(!xs.is_empty() && xs.len() < 20);
            assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn seed_for_is_stable_and_distinct() {
        assert_eq!(seed_for("abc"), seed_for("abc"));
        assert_ne!(seed_for("abc"), seed_for("abd"));
    }

    #[test]
    fn vec_in_respects_length_bounds() {
        let mut rng = Pcg64::seed_from_u64(1);
        let strat = vec_in(0.0f64..1.0, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn normal_f64_is_always_normal() {
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = NORMAL_F64.generate(&mut rng);
            assert!(x.is_normal(), "{x} (bits {:x})", x.to_bits());
        }
    }

    #[test]
    fn failing_property_reports_and_panics() {
        crate::forall! {
            fn always_fails(x in 0.0f64..1.0) {
                assert!(x < 0.0, "impossible");
            }
        }
        let caught = std::panic::catch_unwind(always_fails);
        assert!(caught.is_err());
    }
}
