//! The `RngCore` / `Rng` trait pair.
//!
//! `RngCore` is deliberately object-safe (the baseline thermometers take
//! `&mut dyn RngCore`); `Rng` is the ergonomic layer with generic methods,
//! blanket-implemented for everything that implements `RngCore`.

/// Object-safe source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (top half of `next_u64`, which has the best
    /// statistical quality for PCG-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleUniform {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the (half-open) range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

impl SampleUniform for core::ops::Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        let u = f64::from_rng(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Uniform integer in `[0, span)` without modulo bias (rejection sampling
/// over the widest zone divisible by `span`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for core::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, u32, usize, u16, u8);

impl SampleUniform for core::ops::Range<i64> {
    type Output = i64;

    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleUniform for core::ops::Range<i32> {
    type Output = i32;

    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + uniform_u64(rng, span) as i64) as i32
    }
}

/// Ergonomic random-value methods, mirroring the subset of `rand::Rng` the
/// workspace uses. Blanket-implemented for all [`RngCore`] types.
///
/// Unlike [`RngCore`] this trait is *not* object-safe (its methods are
/// generic); trait objects should take `&mut dyn RngCore` instead.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`
    /// (`u64`/`u32` full-range, `f64` in `[0, 1)`, `bool` fair coin).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a half-open range, e.g. `rng.gen_range(-1.0..1.0)`.
    fn gen_range<S: SampleUniform>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;

    #[test]
    fn gen_range_f64_stays_in_bounds() {
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_usize_covers_all_values() {
        let mut rng = Pcg64::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_tracks_p() {
        let mut rng = Pcg64::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / f64::from(n);
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = Pcg64::seed_from_u64(5);
        let dynref: &mut dyn RngCore = &mut rng;
        let a = dynref.next_u64();
        let b = dynref.next_u32();
        assert!(a != u64::from(b));
    }

    #[test]
    fn uniform_u64_power_of_two_fast_path() {
        let mut rng = Pcg64::seed_from_u64(6);
        for _ in 0..1_000 {
            assert!(uniform_u64(&mut rng, 16) < 16);
            assert!(uniform_u64(&mut rng, 7) < 7);
        }
    }
}
