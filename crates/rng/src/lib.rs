//! # ptsim-rng
//!
//! In-tree deterministic random-number generation for the whole workspace.
//!
//! The crate exists so the simulator builds **offline with zero external
//! dependencies**: it provides the small slice of a `rand`-style API the
//! rest of the workspace actually uses, nothing more.
//!
//! - [`Pcg64`] — a seedable PCG XSL RR 128/64 generator (the same algorithm
//!   family as `rand`'s `Pcg64`), with `seed_from_u64` SplitMix64 expansion.
//! - [`RngCore`] — the object-safe core trait (`next_u64` / `next_u32`), so
//!   `&mut dyn RngCore` works across trait objects.
//! - [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`,
//!   `gen_bool`), blanket-implemented for every [`RngCore`].
//! - [`gaussian`] — Box–Muller (polar/Marsaglia) normal sampling.
//! - [`check`] — a seeded, shrink-free property-test harness with the
//!   [`forall!`] macro, replacing `proptest` for the workspace's invariant
//!   tests.
//! - [`seq::SliceRandom`] — Fisher–Yates shuffling for slices.
//!
//! ```
//! use ptsim_rng::{Pcg64, Rng, RngCore};
//!
//! let mut rng = Pcg64::seed_from_u64(42);
//! let u: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&u));
//! // Same seed, same stream — always.
//! assert_eq!(
//!     Pcg64::seed_from_u64(7).next_u64(),
//!     Pcg64::seed_from_u64(7).next_u64(),
//! );
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod check;
pub mod gaussian;
pub mod pcg;
pub mod seq;
pub mod traits;

pub use pcg::{Pcg64, SplitMix64};
pub use seq::SliceRandom;
pub use traits::{FromRng, Rng, RngCore, SampleUniform};
