//! Sequence helpers: Fisher–Yates shuffling.

use crate::traits::{Rng, RngCore};

/// Random slice operations (mirrors the `rand::seq::SliceRandom` subset the
/// workspace uses).
pub trait SliceRandom {
    /// Uniformly shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_for_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut Pcg64::seed_from_u64(9));
        b.shuffle(&mut Pcg64::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_moves_elements() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Pcg64::seed_from_u64(2));
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [42u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [42]);
    }
}
