//! Seedable generators: SplitMix64 (seeding/mixing) and PCG XSL RR 128/64.

use crate::traits::RngCore;

/// SplitMix64 — tiny, fast, passes BigCrush; used to expand a single `u64`
/// seed into the 256 bits of [`Pcg64`] state and as an avalanche mixer for
/// deriving decorrelated per-die seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    // Deliberately named like the generator literature; the stream is
    // infinite and infallible, so `Iterator::next` (with its `Option`)
    // would be the wrong shape.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        Self::finalize(self.state)
    }

    /// The SplitMix64 finalizer on its own: a stateless avalanche mix.
    #[must_use]
    #[inline]
    pub fn finalize(z: u64) -> u64 {
        let mut z = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// PCG XSL RR 128/64: 128-bit LCG state, 64-bit xor-shift-low + random
/// rotation output. Period 2^128, excellent statistical quality, and cheap
/// on any 64-bit target thanks to native `u128` arithmetic.
///
/// This is the workspace's standard generator; everything that used to take
/// an external `StdRng` now takes `Pcg64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; always odd.
    inc: u128,
}

/// Default multiplier from the PCG reference implementation.
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Generator from full 128-bit state and stream. The stream is forced
    /// odd as the LCG requires.
    #[must_use]
    pub fn new(state: u128, stream: u128) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        // Standard PCG initialization: advance once, add the seed, advance
        // again, so near-identical seeds still decorrelate quickly.
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    /// Deterministic generator from a single `u64` seed, expanded through
    /// SplitMix64 (mirrors `SeedableRng::seed_from_u64`).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = (u128::from(sm.next()) << 64) | u128::from(sm.next());
        let stream = (u128::from(sm.next()) << 64) | u128::from(sm.next());
        Pcg64::new(state, stream)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
    }

    /// Next 64-bit output (XSL RR output function).
    // See `SplitMix64::next` — infinite, infallible stream.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.step();
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::seed_from_u64(123);
        let mut b = Pcg64::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = (0..8).map(|_| 0).collect();
        let mut x = Pcg64::seed_from_u64(1);
        let mut y = Pcg64::seed_from_u64(2);
        let xs: Vec<u64> = a.iter().map(|_| x.next()).collect();
        let ys: Vec<u64> = a.iter().map(|_| y.next()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        let mut x = Pcg64::seed_from_u64(0);
        let mut y = Pcg64::seed_from_u64(1);
        // Outputs should differ in roughly half their bits on average.
        let mut total = 0;
        for _ in 0..64 {
            total += (x.next() ^ y.next()).count_ones();
        }
        let mean = f64::from(total) / 64.0;
        assert!((20.0..44.0).contains(&mean), "mean hamming {mean}");
    }

    #[test]
    fn output_is_well_distributed() {
        // Bit-frequency sanity check: each of the 64 bit positions should be
        // set close to half the time.
        let mut rng = Pcg64::seed_from_u64(99);
        let n = 4096;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let v = rng.next();
            for (i, c) in counts.iter_mut().enumerate() {
                *c += ((v >> i) & 1) as u32;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / f64::from(n);
            assert!((0.45..0.55).contains(&p), "bit {i} frequency {p}");
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn splitmix_finalizer_avalanches() {
        let a = SplitMix64::finalize(0);
        let b = SplitMix64::finalize(1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn clone_continues_identically() {
        let mut rng = Pcg64::seed_from_u64(77);
        rng.next();
        let mut fork = rng.clone();
        for _ in 0..16 {
            assert_eq!(rng.next(), fork.next());
        }
    }
}
