//! Gaussian sampling via the Box–Muller transform (polar/Marsaglia
//! variant, which avoids trigonometric functions and rejects ~21% of
//! candidate pairs).

use crate::traits::{Rng, RngCore};

/// Draws one standard-normal sample (mean 0, variance 1).
///
/// ```
/// let mut rng = ptsim_rng::Pcg64::seed_from_u64(7);
/// let x = ptsim_rng::gaussian::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics in debug builds if `sigma` is negative.
pub fn normal<R: RngCore + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Draws a normal sample truncated to `[mean - k*sigma, mean + k*sigma]`
/// by resampling. Used for corner-bounded die-to-die shifts so a single
/// pathological draw cannot leave the characterized model range.
///
/// # Panics
///
/// Panics in debug builds if `sigma` is negative or `k` is not positive.
pub fn truncated_normal<R: RngCore + ?Sized>(rng: &mut R, mean: f64, sigma: f64, k: f64) -> f64 {
    debug_assert!(sigma >= 0.0 && k > 0.0);
    if sigma == 0.0 {
        return mean;
    }
    loop {
        let x = normal(rng, mean, sigma);
        if (x - mean).abs() <= k * sigma {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::Pcg64;

    #[test]
    fn standard_normal_moments() {
        let mut rng = Pcg64::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 100_000;
        let (mu, sd) = (3.0, 0.5);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = normal(&mut rng, mu, sd);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!((mean - mu).abs() < 0.01);
        assert!((var.sqrt() - sd).abs() < 0.01);
    }

    #[test]
    fn truncated_stays_in_bounds() {
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut rng, 0.0, 1.0, 2.0);
            assert!(x.abs() <= 2.0);
        }
    }

    #[test]
    fn truncated_zero_sigma_returns_mean() {
        let mut rng = Pcg64::seed_from_u64(3);
        assert_eq!(truncated_normal(&mut rng, 5.0, 0.0, 3.0), 5.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::seed_from_u64(9);
        let mut b = Pcg64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = Pcg64::seed_from_u64(11);
        let dynref: &mut dyn crate::RngCore = &mut rng;
        assert!(standard_normal(dynref).is_finite());
    }
}
