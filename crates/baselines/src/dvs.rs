//! Dual-mode DTM sensing: the 2012 PT sensor on the nominal rail, handing
//! conversions to the 2013 dynamic-voltage-selection sensor whenever a
//! DVFS actuation drops the core rail into its 0.25–0.5 V range.
//!
//! This is the DVS arm of the R3 closed-loop campaign. The policy mirrors
//! what the 2013 paper motivates: at nominal supply the 2012 sensor's
//! short 14 µs window gives near-instantaneous readings; once the rail is
//! throttled below [`DVS_VDD_MAX`] the always-on rail assumption no longer
//! buys anything, and the 2013 sensor converts *from the throttled rail
//! itself* — cheaper per conversion (the CV²f of a 0.25 V ring is tiny)
//! at the price of an exponentially longer counting window, i.e. more
//! sensing lag for the control loop.

use crate::pvt2013::Pvt2013Sensor;
use ptsim_core::dtm::{DtmSensing, SensingMode};
use ptsim_core::error::SensorError;
use ptsim_core::pipeline::Conversion;
use ptsim_core::sensor::{PtSensor, Reading, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;
use ptsim_device::units::{Seconds, Volt};
use ptsim_rng::RngCore;

/// Highest rail voltage the 2013 sensor's DVS mode covers; actuations at
/// or below this hand sensing over to it.
pub const DVS_VDD_MAX: f64 = 0.5;

/// The dual-mode sensing stack ([`SensingMode::Nominal`] 2012 sensor +
/// [`SensingMode::DynamicVoltageSelection`] 2013 sensor).
#[derive(Debug, Clone)]
pub struct DvsDtmSensing {
    nominal: PtSensor,
    spec: SensorSpec,
    dvs: Pvt2013Sensor,
    mode: SensingMode,
}

impl DvsDtmSensing {
    /// Builds the stack at the nominal operating point; the DVS sensor
    /// boots parked at the top of its range (0.5 V).
    ///
    /// # Errors
    ///
    /// Propagates construction errors from either sensor.
    pub fn new(tech: &Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        Ok(DvsDtmSensing {
            nominal: PtSensor::new(tech.clone(), spec)?,
            spec,
            dvs: Pvt2013Sensor::new(tech.clone(), Volt(DVS_VDD_MAX))?,
            mode: SensingMode::Nominal,
        })
    }

    /// The 2013 sensor (its selected bin tracks the rail actuations).
    #[must_use]
    pub fn dvs_sensor(&self) -> &Pvt2013Sensor {
        &self.dvs
    }
}

impl DtmSensing for DvsDtmSensing {
    /// Boot: self-calibrate the 2012 sensor *and* characterize every
    /// supply bin of the 2013 sensor, so later rail moves need no
    /// re-calibration.
    fn calibrate(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), SensorError> {
        self.nominal.calibrate(inputs, rng)?;
        self.dvs.prepare_all_bins(inputs, rng)
    }

    fn set_operating_point(&mut self, vdd: Volt) -> Result<SensingMode, SensorError> {
        if vdd.0 <= DVS_VDD_MAX {
            self.dvs.set_vdd_op(vdd)?;
            self.mode = SensingMode::DynamicVoltageSelection;
        } else {
            self.mode = SensingMode::Nominal;
        }
        Ok(self.mode)
    }

    fn mode(&self) -> SensingMode {
        self.mode
    }

    fn read(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError> {
        match self.mode {
            SensingMode::Nominal => self.nominal.read(inputs, rng),
            SensingMode::DynamicVoltageSelection => self.dvs.convert(inputs, rng),
        }
    }

    fn conversion_window(&self) -> Seconds {
        match self.mode {
            SensingMode::Nominal => Seconds(self.spec.window_cycles as f64 / self.spec.ref_clock.0),
            SensingMode::DynamicVoltageSelection => self.dvs.conversion_window(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Celsius;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn booted() -> (DvsDtmSensing, DieSample, Pcg64) {
        let mut s = DvsDtmSensing::new(&Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(99);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        s.calibrate(&inputs, &mut rng).unwrap();
        (s, die, rng)
    }

    #[test]
    fn mode_follows_the_rail() {
        let (mut s, _, _) = booted();
        assert_eq!(s.mode(), SensingMode::Nominal);
        assert_eq!(
            s.set_operating_point(Volt(0.45)).unwrap(),
            SensingMode::DynamicVoltageSelection
        );
        assert_eq!(s.dvs_sensor().selected_bin(), 4);
        assert_eq!(
            s.set_operating_point(Volt(1.0)).unwrap(),
            SensingMode::Nominal
        );
    }

    #[test]
    fn reads_accurately_in_both_modes() {
        let (mut s, die, mut rng) = booted();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(55.0));
        let nominal = s.read(&inputs, &mut rng).unwrap();
        assert!((nominal.temperature.0 - 55.0).abs() < 2.0);
        s.set_operating_point(Volt(0.25)).unwrap();
        let dvs = s.read(&inputs, &mut rng).unwrap();
        assert!((dvs.temperature.0 - 55.0).abs() < 2.5);
        // The DVS conversion rides the throttled rail and is cheaper.
        assert!(dvs.energy_total().0 < nominal.energy_total().0);
    }

    #[test]
    fn windows_stretch_in_dvs_mode() {
        let (mut s, _, _) = booted();
        let w_nom = s.conversion_window().0;
        assert!((w_nom - 14e-6).abs() < 1e-9);
        s.set_operating_point(Volt(0.25)).unwrap();
        let w_dvs = s.conversion_window().0;
        assert!((w_dvs - 896e-6).abs() < 1e-9, "window {w_dvs}");
    }
}
