//! Extension: the group's 2013 near-/sub-Vth PVT sensor with **dynamic
//! voltage selection** (Chang et al., "Near-/Sub-Vth process, voltage, and
//! temperature (PVT) sensors with dynamic voltage selection", ISCAS 2013).
//!
//! The 2012 sensor assumes a stable nominal supply; its follow-up works from
//! 0.25–0.5 V. Six temperature-sensitive ring oscillators (TSROs) are each
//! characterized for one supply bin; an on-chip PV sensor reports the
//! *voltage status*, the controller dynamically selects the TSRO bin for the
//! present supply, and the conversion inverts the frequency with the supply
//! level taken into account. Lower supply bins use exponentially longer
//! counting windows to preserve resolution (sub-Vth rings are slow).

use crate::traits::{uniform_phase, Conversion, Thermometer};
use ptsim_circuit::counter::{auto_measure, GatedCounter};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_circuit::ring::InverterRing;
use ptsim_core::error::SensorError;
use ptsim_core::newton::{newton_solve, NewtonOptions};
use ptsim_core::sensor::{Reading, SensorInputs};
use ptsim_device::inverter::{CmosEnv, Inverter};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Farad, Hertz, Joule, Micron, Volt, Watt};

/// Supply bins of the six TSROs.
pub const VDD_BINS: [f64; 6] = [0.25, 0.30, 0.35, 0.40, 0.45, 0.50];

/// Resolution of the on-chip voltage-status measurement.
pub const VDD_SENSE_RESOLUTION: f64 = 0.002;

/// Hysteresis margin on dynamic TSRO bin re-selection, volts.
///
/// When [`Pvt2013Sensor::set_vdd_op`] moves the supply, the sensor leaves
/// its current bin only if the sensed supply sits closer to the candidate
/// bin's centre than to the current bin's centre *by more than this
/// margin* — repeated reads with the supply dithering around a bin
/// boundary must not flap between two characterizations.
pub const BIN_HYSTERESIS: f64 = 0.01;

/// Resolution of the on-chip PV (process) status readout.
pub const PV_SENSE_RESOLUTION_V: f64 = 0.001;

/// Relative resolution of the PV mobility readout.
pub const PV_SENSE_RESOLUTION_MU: f64 = 0.01;

/// The dynamic-voltage-selection PVT sensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Pvt2013Sensor {
    tech: Technology,
    ring: InverterRing,
    /// Per-bin gating windows (reference cycles).
    windows: [u64; 6],
    /// Per-bin stored log-domain process corrections.
    ln_scales: [Option<f64>; 6],
    /// Process status from the companion PV sensors (quantized).
    pv_status: Option<CmosEnv>,
    /// Supply the sensor currently operates from.
    vdd_op: Volt,
    /// Currently selected TSRO bin (sticky across supply dithers — see
    /// [`BIN_HYSTERESIS`]).
    bin: usize,
    ref_clock: Hertz,
    counter_bits: u32,
    assumed_boot_temp: Celsius,
}

impl Pvt2013Sensor {
    /// Builds the sensor operating at `vdd_op` (0.25–0.5 V).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a supply outside the
    /// supported range; propagates ring construction errors.
    pub fn new(tech: Technology, vdd_op: Volt) -> Result<Self, SensorError> {
        if !(0.24..=0.52).contains(&vdd_op.0) {
            return Err(SensorError::InvalidConfig {
                name: "vdd_op",
                value: vdd_op.0,
            });
        }
        let inv = Inverter::balanced(Micron(0.3), 2.0, &tech)?;
        let ring = InverterRing::new(31, inv, Farad(0.3e-15), vdd_op)?;
        let mut sensor = Pvt2013Sensor {
            tech,
            ring,
            // Sub-Vth bins count much longer to preserve resolution.
            windows: [28_672, 14_336, 7_168, 3_584, 1_792, 896],
            ln_scales: [None; 6],
            pv_status: None,
            vdd_op,
            bin: 0,
            ref_clock: Hertz(32.0e6),
            counter_bits: 20,
            assumed_boot_temp: Celsius(25.0),
        };
        sensor.bin = Self::nearest_bin(sensor.sensed_vdd().0);
        Ok(sensor)
    }

    /// Index of the bin whose centre is nearest to supply `v` (first bin
    /// wins on exact ties).
    fn nearest_bin(v: f64) -> usize {
        VDD_BINS
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (v - **a)
                    .abs()
                    .partial_cmp(&(v - **b).abs())
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("bins non-empty")
    }

    /// Moves the sensor to a new operating supply (a DVFS actuation): the
    /// ring now runs from `vdd`, and the TSRO bin re-selects with
    /// hysteresis — the bin changes only when the sensed supply is closer
    /// to the candidate bin than to the current one by more than
    /// [`BIN_HYSTERESIS`], so supply dither around a bin boundary never
    /// flaps between characterizations.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidConfig`] for a supply outside the
    /// supported 0.24–0.52 V range; the sensor state is unchanged.
    pub fn set_vdd_op(&mut self, vdd: Volt) -> Result<(), SensorError> {
        if !(0.24..=0.52).contains(&vdd.0) {
            return Err(SensorError::InvalidConfig {
                name: "vdd_op",
                value: vdd.0,
            });
        }
        self.vdd_op = vdd;
        self.ring = self.ring.with_vdd(vdd);
        let v = self.sensed_vdd().0;
        let candidate = Self::nearest_bin(v);
        if candidate != self.bin {
            let d_cur = (v - VDD_BINS[self.bin]).abs();
            let d_new = (v - VDD_BINS[candidate]).abs();
            if d_cur - d_new > BIN_HYSTERESIS {
                self.bin = candidate;
            }
        }
        Ok(())
    }

    /// Characterizes **every** TSRO bin against the die's PV status in one
    /// boot-time pass (each bin measured at its centre supply), then
    /// restores the original operating point. After this the sensor can be
    /// actuated across the whole 0.25–0.5 V range by
    /// [`Pvt2013Sensor::set_vdd_op`] without re-calibration — the hand-off
    /// a closed-loop DVFS controller needs.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors from any bin's characterization.
    pub fn prepare_all_bins(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(), SensorError> {
        let restore = self.vdd_op;
        for vdd in VDD_BINS {
            self.set_vdd_op(Volt(vdd))?;
            self.prepare(inputs, rng)?;
        }
        self.set_vdd_op(restore)
    }

    /// Gating window of one conversion at the present operating point.
    /// Sub-Vth bins count exponentially longer (896 µs at 0.25 V vs 28 µs
    /// at 0.5 V from the 32 MHz reference) — the sensing lag a control
    /// loop inherits when it drops into DVS mode.
    #[must_use]
    pub fn conversion_window(&self) -> ptsim_device::units::Seconds {
        ptsim_device::units::Seconds(self.windows[self.bin] as f64 / self.ref_clock.0)
    }

    /// Operating supply.
    #[must_use]
    pub fn vdd_op(&self) -> Volt {
        self.vdd_op
    }

    /// The on-chip voltage status: the actual supply quantized to the PV
    /// sensor's resolution.
    #[must_use]
    pub fn sensed_vdd(&self) -> Volt {
        Volt((self.vdd_op.0 / VDD_SENSE_RESOLUTION).round() * VDD_SENSE_RESOLUTION)
    }

    /// Index of the TSRO bin selected for the present supply. On a fresh
    /// sensor this is the bin nearest the sensed supply; after
    /// [`Pvt2013Sensor::set_vdd_op`] actuations it is sticky per
    /// [`BIN_HYSTERESIS`].
    #[must_use]
    pub fn selected_bin(&self) -> usize {
        self.bin
    }

    fn env_for(&self, inputs: &SensorInputs<'_>) -> CmosEnv {
        inputs
            .die
            .env_at_with(inputs.site, inputs.temp, inputs.extra_vtn, inputs.extra_vtp)
    }

    fn measure(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(Hertz, EnergyLedger), SensorError> {
        let bin = self.selected_bin();
        let counter = GatedCounter::new(self.counter_bits, self.windows[bin])?;
        let env = self.env_for(inputs);
        let f_true = self.ring.frequency(&self.tech, &env);
        let (f_meas, counted) = auto_measure(f_true, &counter, self.ref_clock, uniform_phase(rng))?;
        let window = counter.window(self.ref_clock);
        let mut ledger = EnergyLedger::new();
        ledger.add("TSRO", self.ring.run_energy(&self.tech, &env, window));
        ledger.add("digital", Joule(12e-15 * counted as f64 + 85e-15 * 90.0));
        Ok((f_meas, ledger))
    }

    /// Average conversion power at the present operating point (reference
    /// process, 25 °C), including the counting/selection digital overhead:
    /// the figure the 2013 paper quotes as 2.3 µW at 0.25 V.
    #[must_use]
    pub fn conversion_power(&self) -> Watt {
        let env = CmosEnv::at(Celsius(25.0));
        let window = GatedCounter::new(self.counter_bits, self.windows[self.selected_bin()])
            .expect("valid window")
            .window(self.ref_clock);
        let e_ring = self.ring.run_energy(&self.tech, &env, window);
        let counts = self.ring.frequency(&self.tech, &env).0 * window.0;
        let e_digital = 12e-15 * counts + 85e-15 * 90.0;
        Watt((e_ring.0 + e_digital) / window.0)
    }

    /// The model environment implied by the stored PV process status at a
    /// hypothesized temperature (nominal process before `prepare`).
    fn model_env(&self, temp: Celsius) -> CmosEnv {
        match self.pv_status {
            Some(env) => env.with_temp(temp),
            None => CmosEnv::at(temp),
        }
    }

    fn golden_frequency(&self, vdd: Volt, temp: Celsius) -> Hertz {
        self.ring
            .with_vdd(vdd)
            .frequency(&self.tech, &self.model_env(temp))
    }
}

impl Conversion for Pvt2013Sensor {
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(), SensorError> {
        // The companion PV sensors report the die's process status; the
        // temperature conversion is done "with known process information"
        // (the 2013 paper's phrasing). The full on-chip extraction is
        // modelled in ptsim-core; here the readout is abstracted as the
        // die's local state quantized to the PV sensor's resolution.
        let q_v = |v: f64| (v / PV_SENSE_RESOLUTION_V).round() * PV_SENSE_RESOLUTION_V;
        let q_mu = |m: f64| (m / PV_SENSE_RESOLUTION_MU).round() * PV_SENSE_RESOLUTION_MU;
        let local = inputs.die.env_at_with(
            inputs.site,
            self.assumed_boot_temp,
            inputs.extra_vtn,
            inputs.extra_vtp,
        );
        self.pv_status = Some(CmosEnv {
            temp: self.assumed_boot_temp,
            d_vtn: ptsim_device::units::Volt(q_v(local.d_vtn.0)),
            d_vtp: ptsim_device::units::Volt(q_v(local.d_vtp.0)),
            mu_n: q_mu(local.mu_n),
            mu_p: q_mu(local.mu_p),
        });
        // Residual one-point correction on top of the PV status.
        let bin = self.selected_bin();
        let (f, _) = self.measure(inputs, rng)?;
        let f_model = self.golden_frequency(self.sensed_vdd(), self.assumed_boot_temp);
        self.ln_scales[bin] = Some((f.0 / f_model.0).ln());
        Ok(())
    }

    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<Reading, SensorError> {
        let bin = self.selected_bin();
        let ln_scale = self.ln_scales[bin].ok_or(SensorError::NotCalibrated)?;
        let (f, energy) = self.measure(inputs, rng)?;
        let vdd = self.sensed_vdd();
        let mut tx = [self.assumed_boot_temp.0];
        let iters = newton_solve(
            &mut tx,
            |v| vec![(self.golden_frequency(vdd, Celsius(v[0])).0 / f.0).ln() + ln_scale],
            &[0.01],
            &[40.0],
            &NewtonOptions::default(),
            "pvt2013 temperature",
        )?;
        Ok(Reading::temperature_only(Celsius(tx[0]), energy, f, iters))
    }
}

impl Thermometer for Pvt2013Sensor {
    fn name(&self) -> &'static str {
        "2013 near-/sub-Vth PVT (DVS)"
    }

    fn needs_external_test(&self) -> bool {
        false
    }

    fn device_count(&self) -> usize {
        // Six rings worth of area in the real chip (we model one ring swept
        // across supplies) + selection logic.
        6 * 31 * 2 + 120
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn inputs(die: &DieSample, t: f64) -> SensorInputs<'_> {
        SensorInputs::new(die, DieSite::CENTER, Celsius(t))
    }

    #[test]
    fn rejects_out_of_range_supply() {
        assert!(Pvt2013Sensor::new(Technology::n65(), Volt(1.0)).is_err());
        assert!(Pvt2013Sensor::new(Technology::n65(), Volt(0.1)).is_err());
        assert!(Pvt2013Sensor::new(Technology::n65(), Volt(0.3)).is_ok());
    }

    #[test]
    fn bin_selection_follows_supply() {
        for (vdd, expect) in [(0.25, 0), (0.26, 0), (0.29, 1), (0.42, 3), (0.50, 5)] {
            let s = Pvt2013Sensor::new(Technology::n65(), Volt(vdd)).unwrap();
            assert_eq!(s.selected_bin(), expect, "vdd {vdd}");
        }
    }

    #[test]
    fn reads_temperature_across_supply_range() {
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(1);
        for vdd in VDD_BINS {
            let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(vdd)).unwrap();
            s.prepare(&inputs(&die, 25.0), &mut rng).unwrap();
            let r = s.read_temperature(&inputs(&die, 70.0), &mut rng).unwrap();
            assert!(
                (r.temperature.0 - 70.0).abs() < 2.5,
                "vdd {vdd}: read {} vs 70 °C",
                r.temperature
            );
        }
    }

    #[test]
    fn unprepared_bin_errors() {
        let die = DieSample::nominal();
        let s = Pvt2013Sensor::new(Technology::n65(), Volt(0.35)).unwrap();
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(
            s.read_temperature(&inputs(&die, 40.0), &mut rng)
                .unwrap_err(),
            SensorError::NotCalibrated
        );
    }

    #[test]
    fn microwatt_power_at_quarter_volt() {
        let s = Pvt2013Sensor::new(Technology::n65(), Volt(0.25)).unwrap();
        let p = s.conversion_power().microwatts();
        assert!(p < 10.0, "sub-Vth sensor should be µW-scale, got {p:.2} µW");
    }

    #[test]
    fn power_drops_with_supply() {
        let hi = Pvt2013Sensor::new(Technology::n65(), Volt(0.50))
            .unwrap()
            .conversion_power()
            .0;
        let lo = Pvt2013Sensor::new(Technology::n65(), Volt(0.25))
            .unwrap()
            .conversion_power()
            .0;
        assert!(lo < hi);
    }

    #[test]
    fn reads_temperature_at_supply_range_edges() {
        // 0.24 and 0.52 V are the extreme supplies the sensor accepts —
        // outside every bin centre, clamped onto the outermost bins.
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(7);
        for (vdd, bin) in [(0.24, 0), (0.52, 5)] {
            let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(vdd)).unwrap();
            assert_eq!(s.selected_bin(), bin, "vdd {vdd}");
            s.prepare(&inputs(&die, 25.0), &mut rng).unwrap();
            let r = s.read_temperature(&inputs(&die, 70.0), &mut rng).unwrap();
            assert!(
                (r.temperature.0 - 70.0).abs() < 2.5,
                "vdd {vdd}: read {} vs 70 °C",
                r.temperature
            );
        }
    }

    #[test]
    fn set_vdd_op_validates_and_moves_the_ring() {
        let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(0.30)).unwrap();
        assert!(s.set_vdd_op(Volt(0.60)).is_err());
        assert!(s.set_vdd_op(Volt(0.10)).is_err());
        assert_eq!(s.vdd_op(), Volt(0.30), "failed actuation must not move");
        s.set_vdd_op(Volt(0.50)).unwrap();
        assert_eq!(s.vdd_op(), Volt(0.50));
        assert_eq!(s.selected_bin(), 5);
    }

    #[test]
    fn prepare_all_bins_enables_every_operating_point() {
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(9);
        let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(0.50)).unwrap();
        s.prepare_all_bins(&inputs(&die, 25.0), &mut rng).unwrap();
        assert_eq!(s.vdd_op(), Volt(0.50), "operating point restored");
        for vdd in VDD_BINS {
            s.set_vdd_op(Volt(vdd)).unwrap();
            let r = s.read_temperature(&inputs(&die, 60.0), &mut rng).unwrap();
            assert!(
                (r.temperature.0 - 60.0).abs() < 2.5,
                "vdd {vdd}: read {} vs 60 °C",
                r.temperature
            );
        }
    }

    #[test]
    fn conversion_window_stretches_at_low_supply() {
        let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(0.50)).unwrap();
        let fast = s.conversion_window().0;
        s.set_vdd_op(Volt(0.25)).unwrap();
        let slow = s.conversion_window().0;
        assert!((fast - 28e-6).abs() < 1e-9, "0.5 V window: {fast}");
        assert!((slow - 896e-6).abs() < 1e-9, "0.25 V window: {slow}");
    }

    ptsim_rng::forall! {
        #![cases = 32]

        /// Any accepted supply selects a bin whose centre is within half a
        /// bin pitch + edge margin of the sensed supply, and a fresh
        /// sensor's choice is the true nearest bin.
        #[test]
        fn fresh_selection_is_nearest_bin(vdd in 0.24f64..0.52) {
            let s = Pvt2013Sensor::new(Technology::n65(), Volt(vdd)).unwrap();
            let bin = s.selected_bin();
            let d = (s.sensed_vdd().0 - VDD_BINS[bin]).abs();
            for (i, c) in VDD_BINS.iter().enumerate() {
                assert!(
                    d <= (s.sensed_vdd().0 - c).abs() + 1e-12,
                    "vdd {vdd}: bin {bin} farther than bin {i}"
                );
            }
        }

        /// Exactly on a bin boundary the selection is deterministic: one of
        /// the two adjacent bins (whichever the quantized voltage status
        /// tips toward), and re-applying the same supply never changes it.
        #[test]
        fn bin_boundaries_select_deterministically(k in 0usize..5) {
            let boundary = 0.5 * (VDD_BINS[k] + VDD_BINS[k + 1]);
            let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(boundary)).unwrap();
            let first = s.selected_bin();
            assert!(
                first == k || first == k + 1,
                "boundary {boundary} selected non-adjacent bin {first}"
            );
            for _ in 0..4 {
                s.set_vdd_op(Volt(boundary)).unwrap();
                assert_eq!(s.selected_bin(), first, "re-applying {boundary} flapped");
            }
        }

        /// Supply dither smaller than the hysteresis margin around a bin
        /// boundary never flaps the selected bin across repeated
        /// actuations.
        #[test]
        fn no_bin_flapping_near_boundary(
            k in 0usize..5,
            dither in ptsim_rng::check::vec_in(-0.004f64..0.004, 12..20),
        ) {
            let boundary = 0.5 * (VDD_BINS[k] + VDD_BINS[k + 1]);
            let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(boundary)).unwrap();
            let home = s.selected_bin();
            for d in dither {
                s.set_vdd_op(Volt(boundary + d)).unwrap();
                assert_eq!(
                    s.selected_bin(),
                    home,
                    "bin flapped at {boundary} + {d}"
                );
            }
        }

        /// Hysteresis is sticky, not stuck: a decisive move to another
        /// bin's centre always lands in that bin.
        #[test]
        fn decisive_supply_moves_always_switch(from in 0usize..6, to in 0usize..6) {
            let mut s =
                Pvt2013Sensor::new(Technology::n65(), Volt(VDD_BINS[from])).unwrap();
            assert_eq!(s.selected_bin(), from);
            s.set_vdd_op(Volt(VDD_BINS[to])).unwrap();
            assert_eq!(s.selected_bin(), to);
        }
    }

    #[test]
    fn handles_process_variation_after_preparation() {
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.02);
        die.d_vtp_d2d = Volt(0.02);
        let mut s = Pvt2013Sensor::new(Technology::n65(), Volt(0.30)).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        s.prepare(&inputs(&die, 25.0), &mut rng).unwrap();
        let r = s.read_temperature(&inputs(&die, 50.0), &mut rng).unwrap();
        // A one-point scale correction cannot fix the slope error a ±20 mV
        // die introduces at sub-Vth supplies; error is bounded but larger
        // than the full 2012 sensor's ±1.5 °C.
        assert!(
            (r.temperature.0 - 50.0).abs() < 6.0,
            "read {} vs 50 °C",
            r.temperature
        );
    }
}
