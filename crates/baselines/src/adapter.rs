//! [`Thermometer`] adapter for the paper's full sensor, so the comparison
//! harness can grade it alongside the baselines.

use crate::traits::{Conversion, Thermometer};
use ptsim_core::error::SensorError;
use ptsim_core::sensor::{PtSensor, Reading, SensorInputs, SensorSpec};
use ptsim_device::process::Technology;

/// The SOCC 2012 sensor viewed as a plain thermometer.
#[derive(Debug, Clone)]
pub struct PtSensorThermometer {
    sensor: PtSensor,
}

impl PtSensorThermometer {
    /// Builds the reference sensor.
    ///
    /// # Errors
    ///
    /// Propagates sensor construction errors.
    pub fn new(tech: Technology, spec: SensorSpec) -> Result<Self, SensorError> {
        Ok(PtSensorThermometer {
            sensor: PtSensor::new(tech, spec)?,
        })
    }

    /// Access to the underlying sensor (e.g. for its process readings).
    #[must_use]
    pub fn sensor(&self) -> &PtSensor {
        &self.sensor
    }
}

impl Conversion for PtSensorThermometer {
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(), SensorError> {
        self.sensor.prepare(inputs, rng)
    }

    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<Reading, SensorError> {
        self.sensor.convert(inputs, rng)
    }

    fn convert_batch(
        &self,
        inputs: &[SensorInputs<'_>],
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<Vec<Reading>, SensorError> {
        self.sensor.convert_batch(inputs, rng)
    }
}

impl Thermometer for PtSensorThermometer {
    fn name(&self) -> &'static str {
        "this work (self-calibrated PT)"
    }

    fn needs_external_test(&self) -> bool {
        false
    }

    fn device_count(&self) -> usize {
        // Three 51-stage rings + counters + controller datapath.
        3 * 51 * 2 + 260
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Celsius;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    #[test]
    fn adapter_round_trip() {
        let mut th =
            PtSensorThermometer::new(Technology::n65(), SensorSpec::default_65nm()).unwrap();
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(1);
        let cal = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
        th.prepare(&cal, &mut rng).unwrap();
        let probe = SensorInputs::new(&die, DieSite::CENTER, Celsius(85.0));
        let r = th.read_temperature(&probe, &mut rng).unwrap();
        assert!((r.temperature.0 - 85.0).abs() < 1.5);
        assert!(r.energy.picojoules() > 100.0);
        assert!(!th.needs_external_test());
        assert!(th.sensor().calibration().is_some());
    }
}
