//! # ptsim-baselines
//!
//! Comparison and extension sensors for the SOCC 2012 PT-sensor
//! reproduction:
//!
//! * [`ro_thermometer::RoThermometer`] — uncalibrated and one-point
//!   calibrated ring-oscillator thermometers (the calibration ladder the
//!   paper climbs);
//! * [`bjt::BjtSensor`] — conventional factory-trimmed BJT/diode analog
//!   sensor (accurate but energy-hungry and tester-dependent);
//! * [`pvt2013::Pvt2013Sensor`] — the group's 2013 near-/sub-Vth PVT sensor
//!   with dynamic voltage selection (the paper's follow-up, implemented as
//!   the extension experiment X1);
//! * [`adapter::PtSensorThermometer`] — the paper's sensor behind the same
//!   [`traits::Thermometer`] interface, for apples-to-apples comparison.
//!
//! Every sensor implements the shared pipeline [`traits::Conversion`]
//! trait, so all of them report through the identical `Reading`/`Health`
//! boundary types (and inherit the batched `convert_batch` schedule);
//! [`traits::Thermometer`] only adds the comparison-table metadata.
//!
//! ## Example
//!
//! ```
//! use ptsim_baselines::ro_thermometer::{RoCalibration, RoThermometer};
//! use ptsim_baselines::traits::Thermometer;
//! use ptsim_core::sensor::SensorInputs;
//! use ptsim_device::process::Technology;
//! use ptsim_device::units::{Celsius, Volt};
//! use ptsim_mc::die::{DieSample, DieSite};
//!
//! # fn main() -> Result<(), ptsim_core::error::SensorError> {
//! let th = RoThermometer::new(Technology::n65(), RoCalibration::None)?;
//! let mut die = DieSample::nominal();
//! die.d_vtn_d2d = Volt(0.03); // a slow-corner die
//! die.d_vtp_d2d = Volt(0.03);
//! let mut rng = ptsim_rng::Pcg64::seed_from_u64(7);
//! let r = th.read_temperature(
//!     &SensorInputs::new(&die, DieSite::CENTER, Celsius(60.0)),
//!     &mut rng,
//! )?;
//! // Without calibration, process aliases into temperature error:
//! assert!((r.temperature.0 - 60.0).abs() > 3.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod adapter;
pub mod bjt;
pub mod dvs;
pub mod pvt2013;
pub mod ro_thermometer;
pub mod traits;

pub use adapter::PtSensorThermometer;
pub use bjt::BjtSensor;
pub use dvs::DvsDtmSensing;
pub use pvt2013::Pvt2013Sensor;
pub use ro_thermometer::{RoCalibration, RoThermometer};
pub use traits::{Conversion, TempReading, Thermometer};
