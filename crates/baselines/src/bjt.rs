//! Factory-trimmed BJT/diode analog temperature sensor.
//!
//! The conventional alternative the paper compares against: a
//! bandgap-referenced bipolar front-end plus ADC. Very accurate after a
//! factory one-point trim (done on a tester — *external* equipment, the
//! exact cost the self-calibrated sensor eliminates), but power- and
//! energy-hungry, and it measures only temperature — no process
//! information.

use crate::traits::{Conversion, Thermometer};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_core::error::SensorError;
use ptsim_core::sensor::{Reading, SensorInputs};
use ptsim_device::units::{Celsius, Hertz, Joule};
use ptsim_mc::gaussian::normal;
use ptsim_rng::Pcg64;
use ptsim_rng::RngCore;

/// Behavioral BJT sensor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtSensor {
    /// One-sigma untrimmed per-die offset.
    pub untrimmed_offset_sigma: f64,
    /// One-sigma conversion noise.
    pub noise_sigma: f64,
    /// Residual curvature error per (°C from 25 °C)², after trim.
    pub curvature_per_c2: f64,
    /// Energy per conversion (BJT bias + ΣΔ ADC), joules.
    pub energy_per_conversion: Joule,
    offset: f64,
    trimmed: bool,
}

impl BjtSensor {
    /// Typical 65 nm-era BJT sensor figures: ±2 °C untrimmed spread,
    /// 0.1 °C rms noise, parabolic curvature, ~5 nJ per conversion.
    #[must_use]
    pub fn typical() -> Self {
        BjtSensor {
            untrimmed_offset_sigma: 2.0,
            noise_sigma: 0.1,
            curvature_per_c2: 5.0e-5,
            energy_per_conversion: Joule(5.0e-9),
            offset: 0.0,
            trimmed: false,
        }
    }

    /// Draws this die's untrimmed offset (call once per die before use).
    pub fn realize_die(&mut self, rng: &mut dyn RngCore) {
        let mut srng = Pcg64::seed_from_u64(rng.next_u64());
        self.offset = normal(&mut srng, 0.0, self.untrimmed_offset_sigma);
        self.trimmed = false;
    }
}

impl Default for BjtSensor {
    fn default() -> Self {
        BjtSensor::typical()
    }
}

impl Conversion for BjtSensor {
    fn prepare(
        &mut self,
        _inputs: &SensorInputs<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<(), SensorError> {
        // Factory trim: the tester knows the true temperature and nulls the
        // offset.
        self.trimmed = true;
        Ok(())
    }

    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<Reading, SensorError> {
        let mut srng = Pcg64::seed_from_u64(rng.next_u64());
        let t = inputs.temp.0;
        let offset = if self.trimmed { 0.0 } else { self.offset };
        let curvature = self.curvature_per_c2 * (t - 25.0) * (t - 25.0);
        let noise = normal(&mut srng, 0.0, self.noise_sigma);
        let mut energy = EnergyLedger::new();
        energy.add("BJT+ADC", self.energy_per_conversion);
        Ok(Reading::temperature_only(
            Celsius(t + offset + curvature + noise),
            energy,
            // An analog front-end has no oscillator frequency to report.
            Hertz(0.0),
            0,
        ))
    }
}

impl Thermometer for BjtSensor {
    fn name(&self) -> &'static str {
        "BJT + ADC (trimmed)"
    }

    fn needs_external_test(&self) -> bool {
        true
    }

    fn device_count(&self) -> usize {
        // Small transistor count, but each device is analog-sized; the area
        // proxy undercounts its real footprint (noted in the T2 table).
        60
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    #[test]
    fn trimmed_sensor_is_accurate() {
        let mut s = BjtSensor::typical();
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(1);
        s.realize_die(&mut rng);
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(80.0));
        s.prepare(&inputs, &mut rng).unwrap();
        let r = s.read_temperature(&inputs, &mut rng).unwrap();
        assert!((r.temperature.0 - 80.0).abs() < 0.8, "{}", r.temperature);
    }

    #[test]
    fn untrimmed_sensor_carries_die_offset() {
        let mut worst: f64 = 0.0;
        let mut rng = Pcg64::seed_from_u64(2);
        let die = DieSample::nominal();
        for _ in 0..50 {
            let mut s = BjtSensor::typical();
            s.realize_die(&mut rng);
            let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(25.0));
            let r = s.read_temperature(&inputs, &mut rng).unwrap();
            worst = worst.max((r.temperature.0 - 25.0).abs());
        }
        assert!(
            worst > 1.5,
            "some untrimmed die must err > 1.5 °C, worst {worst:.2}"
        );
    }

    #[test]
    fn energy_far_above_ro_sensor() {
        let s = BjtSensor::typical();
        assert!(s.energy_per_conversion.picojoules() > 10.0 * 367.5);
        assert!(s.needs_external_test());
    }
}
