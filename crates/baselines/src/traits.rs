//! Common interface over the comparison sensors.

use ptsim_core::error::SensorError;
use ptsim_core::sensor::SensorInputs;
use ptsim_device::units::{Celsius, Joule};

/// One temperature reading plus the energy it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempReading {
    /// Reported temperature.
    pub temperature: Celsius,
    /// Conversion energy.
    pub energy: Joule,
}

/// A temperature sensor participating in the T2 comparison table.
///
/// Object-safe so the comparison harness can hold a heterogeneous list.
pub trait Thermometer {
    /// Display name for tables.
    fn name(&self) -> &'static str;

    /// Per-die preparation (self-calibration or factory trim). Sensors with
    /// no calibration step implement this as a no-op.
    ///
    /// # Errors
    ///
    /// Implementation-specific calibration failures.
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(), SensorError>;

    /// One temperature conversion.
    ///
    /// # Errors
    ///
    /// Implementation-specific conversion failures.
    fn read_temperature(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<TempReading, SensorError>;

    /// Whether preparation requires external test equipment (thermal
    /// chamber / tester), as opposed to fully on-chip self-calibration.
    fn needs_external_test(&self) -> bool;

    /// Rough area proxy: number of transistors in the sensing front-end.
    fn device_count(&self) -> usize;
}

/// Convenience: draw a uniform phase from a dyn RNG.
pub(crate) fn uniform_phase(rng: &mut dyn ptsim_rng::RngCore) -> f64 {
    // Use 53 random bits for a uniform double in [0, 1).
    let bits = rng.next_u64() >> 11;
    bits as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_rng::Pcg64;

    #[test]
    fn uniform_phase_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..1000 {
            let p = uniform_phase(&mut rng);
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn Thermometer) {}
    }
}
