//! Common interface over the comparison sensors.
//!
//! Every baseline implements the shared pipeline boundary trait
//! [`Conversion`] (re-exported from `ptsim_core`), so a BJT reading and a
//! full PT-sensor reading flow through the identical [`Reading`]/`Health`
//! types. [`Thermometer`] layers the comparison-table metadata (display
//! name, external-test flag, area proxy) on top, and collapses a full
//! [`Reading`] to the [`TempReading`] view the tables print.

use ptsim_core::error::SensorError;
use ptsim_core::sensor::{Reading, SensorInputs};
use ptsim_device::units::{Celsius, Joule};

pub use ptsim_core::pipeline::Conversion;

/// One temperature reading plus the energy it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempReading {
    /// Reported temperature.
    pub temperature: Celsius,
    /// Conversion energy.
    pub energy: Joule,
}

impl TempReading {
    /// Collapses a full pipeline [`Reading`] to the comparison-table view.
    #[must_use]
    pub fn from_reading(r: &Reading) -> Self {
        TempReading {
            temperature: r.temperature,
            energy: r.energy_total(),
        }
    }
}

/// A temperature sensor participating in the T2 comparison table.
///
/// Preparation (self-calibration or factory trim) and conversion come from
/// the [`Conversion`] supertrait; this trait only adds the table metadata.
/// Object-safe so the comparison harness can hold a heterogeneous list.
pub trait Thermometer: Conversion {
    /// Display name for tables.
    fn name(&self) -> &'static str;

    /// One temperature conversion, collapsed to the comparison-table view.
    /// Provided: delegates to [`Conversion::convert`].
    ///
    /// # Errors
    ///
    /// Implementation-specific conversion failures.
    fn read_temperature(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<TempReading, SensorError> {
        Ok(TempReading::from_reading(&self.convert(inputs, rng)?))
    }

    /// Whether preparation requires external test equipment (thermal
    /// chamber / tester), as opposed to fully on-chip self-calibration.
    fn needs_external_test(&self) -> bool;

    /// Rough area proxy: number of transistors in the sensing front-end.
    fn device_count(&self) -> usize;
}

/// Convenience: draw a uniform phase from a dyn RNG.
pub(crate) fn uniform_phase(rng: &mut dyn ptsim_rng::RngCore) -> f64 {
    // Use 53 random bits for a uniform double in [0, 1).
    let bits = rng.next_u64() >> 11;
    bits as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_circuit::energy::EnergyLedger;
    use ptsim_device::units::Hertz;
    use ptsim_rng::Pcg64;

    #[test]
    fn uniform_phase_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..1000 {
            let p = uniform_phase(&mut rng);
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &dyn Thermometer) {}
        fn _takes_conversion(_: &dyn Conversion) {}
    }

    /// A fixed-output stub proving the provided `read_temperature` collapses
    /// the shared `Reading` without touching its values.
    #[derive(Debug)]
    struct Stub;

    impl Conversion for Stub {
        fn prepare(
            &mut self,
            _inputs: &SensorInputs<'_>,
            _rng: &mut dyn ptsim_rng::RngCore,
        ) -> Result<(), SensorError> {
            Ok(())
        }

        fn convert(
            &self,
            _inputs: &SensorInputs<'_>,
            _rng: &mut dyn ptsim_rng::RngCore,
        ) -> Result<Reading, SensorError> {
            let mut energy = EnergyLedger::new();
            energy.add("stub", Joule(2.0e-12));
            energy.add("more", Joule(1.0e-12));
            Ok(Reading::temperature_only(
                Celsius(33.5),
                energy,
                Hertz(1.0e8),
                0,
            ))
        }
    }

    impl Thermometer for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn needs_external_test(&self) -> bool {
            false
        }

        fn device_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn default_read_temperature_collapses_the_reading() {
        use ptsim_mc::die::{DieSample, DieSite};
        let die = DieSample::nominal();
        let inputs = SensorInputs::new(&die, DieSite::CENTER, Celsius(33.5));
        let mut rng = Pcg64::seed_from_u64(2);
        let th: &dyn Thermometer = &Stub;
        let r = th.read_temperature(&inputs, &mut rng).unwrap();
        assert_eq!(r.temperature, Celsius(33.5));
        assert_eq!(r.energy, Joule(2.0e-12 + 1.0e-12));
        let full = th.convert(&inputs, &mut rng).unwrap();
        assert!(full.health.is_nominal());
        assert_eq!(full.raw_frequencies.0, Hertz(1.0e8));
    }
}
