//! Ring-oscillator thermometer baselines.
//!
//! Two rungs of the calibration ladder below the paper's sensor:
//!
//! * [`RoCalibration::None`] — inverts the TSRO frequency through the
//!   *golden* (nominal-process) model with no per-die correction at all.
//!   Die-to-die threshold shift aliases directly into temperature error
//!   (tens of °C at the corners), which is the motivating problem.
//! * [`RoCalibration::OnePoint`] — additionally stores a single multiplicative
//!   correction at the boot reference point. The offset at 25 °C vanishes,
//!   but without process decoupling the *slope* is still wrong, producing
//!   the classic V-shaped error curve.

use crate::traits::{uniform_phase, Conversion, Thermometer};
use ptsim_circuit::counter::{auto_measure, GatedCounter};
use ptsim_circuit::energy::EnergyLedger;
use ptsim_core::bank::{BankSpec, RoBank, RoClass};
use ptsim_core::error::SensorError;
use ptsim_core::newton::{newton_solve, NewtonOptions};
use ptsim_core::sensor::{Reading, SensorInputs};
use ptsim_device::inverter::CmosEnv;
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Hertz, Joule};

/// Calibration policy of an RO thermometer baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoCalibration {
    /// No per-die correction.
    None,
    /// One multiplicative correction stored at the boot reference point.
    OnePoint,
}

/// A plain TSRO thermometer with configurable calibration policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RoThermometer {
    tech: Technology,
    bank: RoBank,
    policy: RoCalibration,
    counter_bits: u32,
    window_cycles: u64,
    ref_clock: Hertz,
    assumed_boot_temp: Celsius,
    ln_scale: Option<f64>,
}

impl RoThermometer {
    /// Builds the baseline on the same TSRO design the full sensor uses.
    ///
    /// # Errors
    ///
    /// Propagates bank construction errors.
    pub fn new(tech: Technology, policy: RoCalibration) -> Result<Self, SensorError> {
        let bank = RoBank::new(&tech, BankSpec::default_65nm())?;
        Ok(RoThermometer {
            tech,
            bank,
            policy,
            counter_bits: 16,
            window_cycles: 448,
            ref_clock: Hertz(32.0e6),
            assumed_boot_temp: Celsius(25.0),
            ln_scale: None,
        })
    }

    fn measure(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
        ledger: &mut EnergyLedger,
    ) -> Result<Hertz, SensorError> {
        let counter = GatedCounter::new(self.counter_bits, self.window_cycles)?;
        let site = self.bank.site_of(RoClass::Tsro, inputs.site);
        let env = inputs
            .die
            .env_at_with(site, inputs.temp, inputs.extra_vtn, inputs.extra_vtp);
        let vdd = self.bank.spec().vdd_tsro;
        let ring = self.bank.ring(RoClass::Tsro).with_vdd(vdd);
        let f_true = ring.frequency(&self.tech, &env);
        let (f_meas, counted) = auto_measure(f_true, &counter, self.ref_clock, uniform_phase(rng))?;
        let window = counter.window(self.ref_clock);
        ledger.add("TSRO", ring.run_energy(&self.tech, &env, window));
        ledger.add("counters", Joule(18e-15 * counted as f64));
        ledger.add("controller", Joule(85e-15 * 120.0));
        Ok(f_meas)
    }

    fn golden_frequency(&self, temp: Celsius) -> Hertz {
        self.bank.frequency(
            &self.tech,
            RoClass::Tsro,
            self.bank.spec().vdd_tsro,
            &CmosEnv::at(temp),
        )
    }

    /// Inverts a measured frequency to temperature through the golden model
    /// (plus the stored one-point correction), returning the Newton
    /// iteration count alongside.
    fn invert(&self, f_meas: Hertz) -> Result<(Celsius, usize), SensorError> {
        let ln_scale = self.ln_scale.unwrap_or(0.0);
        let mut tx = [self.assumed_boot_temp.0];
        let iters = newton_solve(
            &mut tx,
            |v| vec![(self.golden_frequency(Celsius(v[0])).0 / f_meas.0).ln() + ln_scale],
            &[0.01],
            &[40.0],
            &NewtonOptions::default(),
            "baseline temperature",
        )?;
        Ok((Celsius(tx[0]), iters))
    }
}

impl Conversion for RoThermometer {
    fn prepare(
        &mut self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<(), SensorError> {
        if self.policy == RoCalibration::OnePoint {
            let mut ledger = EnergyLedger::new();
            let f = self.measure(inputs, rng, &mut ledger)?;
            let f_model = self.golden_frequency(self.assumed_boot_temp);
            self.ln_scale = Some((f.0 / f_model.0).ln());
        }
        Ok(())
    }

    fn convert(
        &self,
        inputs: &SensorInputs<'_>,
        rng: &mut dyn ptsim_rng::RngCore,
    ) -> Result<Reading, SensorError> {
        let mut ledger = EnergyLedger::new();
        let f = self.measure(inputs, rng, &mut ledger)?;
        let (t, iters) = self.invert(f)?;
        Ok(Reading::temperature_only(t, ledger, f, iters))
    }
}

impl Thermometer for RoThermometer {
    fn name(&self) -> &'static str {
        match self.policy {
            RoCalibration::None => "uncalibrated RO",
            RoCalibration::OnePoint => "1-point RO",
        }
    }

    fn needs_external_test(&self) -> bool {
        false
    }

    fn device_count(&self) -> usize {
        // One 51-stage ring (2 devices per stage) + counter front-end.
        51 * 2 + 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::Volt;
    use ptsim_mc::die::{DieSample, DieSite};
    use ptsim_rng::Pcg64;

    fn inputs(die: &DieSample, t: f64) -> SensorInputs<'_> {
        SensorInputs::new(die, DieSite::CENTER, Celsius(t))
    }

    #[test]
    fn uncalibrated_fine_on_nominal_die() {
        let th = RoThermometer::new(Technology::n65(), RoCalibration::None).unwrap();
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(1);
        let r = th.read_temperature(&inputs(&die, 60.0), &mut rng).unwrap();
        assert!((r.temperature.0 - 60.0).abs() < 0.5, "{}", r.temperature);
    }

    #[test]
    fn uncalibrated_large_error_on_skewed_die() {
        let th = RoThermometer::new(Technology::n65(), RoCalibration::None).unwrap();
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.030);
        die.d_vtp_d2d = Volt(0.030);
        let mut rng = Pcg64::seed_from_u64(2);
        let r = th.read_temperature(&inputs(&die, 60.0), &mut rng).unwrap();
        assert!(
            (r.temperature.0 - 60.0).abs() > 5.0,
            "a +30 mV die must alias into large temp error, got {}",
            r.temperature
        );
    }

    #[test]
    fn one_point_fixes_offset_at_reference() {
        let mut th = RoThermometer::new(Technology::n65(), RoCalibration::OnePoint).unwrap();
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.030);
        die.d_vtp_d2d = Volt(0.030);
        let mut rng = Pcg64::seed_from_u64(3);
        th.prepare(&inputs(&die, 25.0), &mut rng).unwrap();
        let r = th.read_temperature(&inputs(&die, 25.0), &mut rng).unwrap();
        assert!(
            (r.temperature.0 - 25.0).abs() < 0.5,
            "offset must vanish at the calibration point, got {}",
            r.temperature
        );
    }

    #[test]
    fn one_point_still_errs_away_from_reference() {
        let mut th = RoThermometer::new(Technology::n65(), RoCalibration::OnePoint).unwrap();
        let mut die = DieSample::nominal();
        die.d_vtn_d2d = Volt(0.030);
        die.d_vtp_d2d = Volt(0.030);
        let mut rng = Pcg64::seed_from_u64(4);
        th.prepare(&inputs(&die, 25.0), &mut rng).unwrap();
        let r = th.read_temperature(&inputs(&die, 100.0), &mut rng).unwrap();
        let err = (r.temperature.0 - 100.0).abs();
        assert!(
            err > 1.5,
            "slope error should exceed the paper sensor's ±1.5 °C, got {err:.2}"
        );
    }

    #[test]
    fn names_and_flags() {
        let a = RoThermometer::new(Technology::n65(), RoCalibration::None).unwrap();
        let b = RoThermometer::new(Technology::n65(), RoCalibration::OnePoint).unwrap();
        assert_ne!(a.name(), b.name());
        assert!(!a.needs_external_test());
        assert!(a.device_count() > 100);
    }

    #[test]
    fn reading_reports_positive_energy() {
        let th = RoThermometer::new(Technology::n65(), RoCalibration::None).unwrap();
        let die = DieSample::nominal();
        let mut rng = Pcg64::seed_from_u64(5);
        let r = th.read_temperature(&inputs(&die, 25.0), &mut rng).unwrap();
        let pj = r.energy.picojoules();
        assert!(
            pj > 5.0 && pj < 367.5,
            "baseline should be cheaper: {pj:.1}"
        );
    }
}
