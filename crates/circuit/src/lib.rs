//! # ptsim-circuit
//!
//! Behavioral circuit primitives for the SOCC 2012 PT-sensor reproduction:
//! inverter [`ring::InverterRing`] oscillators, gated
//! [`counter::GatedCounter`]s with prescalers, runtime-parameterized
//! [`fixed::Fixed`]-point arithmetic (the on-chip datapath), and an
//! [`energy::EnergyLedger`] for per-component conversion-energy breakdowns.
//!
//! These blocks model the *digital* half of the sensor at the level that
//! matters for its reported accuracy: frequency quantization from finite
//! counting windows, counter overflow, and fixed-point round-off.
//!
//! ## Example
//!
//! ```
//! use ptsim_circuit::counter::{GatedCounter, Prescaler};
//! use ptsim_device::units::Hertz;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let counter = GatedCounter::new(16, 32_000)?; // 1 ms @ 32 MHz ref
//! let prescaler = Prescaler::new(6)?; // divide GHz RO down by 64
//! let ref_clk = Hertz(32.0e6);
//! let ro = Hertz(2.1e9);
//! let est = prescaler.undo(counter.measure(prescaler.output(ro), ref_clk, 0.5));
//! assert!((est.0 - ro.0).abs() / ro.0 < 1e-4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod counter;
pub mod energy;
pub mod error;
pub mod fixed;
pub mod ring;

pub use counter::{auto_count, auto_measure, GatedCounter, Prescaler};
pub use energy::EnergyLedger;
pub use error::CircuitError;
pub use fixed::{Fixed, QFormat};
pub use ring::{InverterRing, RingCache};
