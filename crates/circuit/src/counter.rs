//! Gated frequency counters.
//!
//! The sensor measures each ring oscillator by counting its edges inside a
//! reference-clock-defined gating window. Counting is inherently quantized:
//! a window of `T_w` seconds resolves frequency to `1/T_w`. The counter
//! width bounds the maximum measurable count (overflow wraps, as the real
//! ripple counter would).

use crate::error::CircuitError;
use ptsim_device::units::{Hertz, Seconds};

/// A binary ripple counter gated by a measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatedCounter {
    bits: u32,
    window_cycles: u64,
}

impl GatedCounter {
    /// Creates a counter with `bits` flip-flops, gated for `window_cycles`
    /// cycles of the reference clock.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidCounter`] if `bits` is 0 or more than
    /// 62, or `window_cycles` is 0.
    pub fn new(bits: u32, window_cycles: u64) -> Result<Self, CircuitError> {
        if bits == 0 || bits > 62 || window_cycles == 0 {
            return Err(CircuitError::InvalidCounter {
                bits,
                window_cycles,
            });
        }
        Ok(GatedCounter {
            bits,
            window_cycles,
        })
    }

    /// Counter width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Gating window length in reference cycles.
    #[must_use]
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Maximum count before wrap-around.
    #[must_use]
    pub fn max_count(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Window length for a given reference clock.
    #[must_use]
    pub fn window(&self, ref_clock: Hertz) -> Seconds {
        Seconds(self.window_cycles as f64 / ref_clock.0)
    }

    /// Simulates one gated count of a signal at `f_in`, with `phase` in
    /// `[0, 1)` modelling the unknown alignment between the signal and the
    /// gate opening. Wraps on overflow exactly like the hardware counter.
    #[must_use]
    pub fn count(&self, f_in: Hertz, ref_clock: Hertz, phase: f64) -> u64 {
        let window = self.window(ref_clock);
        let edges = f_in.0 * window.0 + phase.rem_euclid(1.0);
        let n = edges.floor().max(0.0) as u64;
        n & self.max_count()
    }

    /// Like [`GatedCounter::count`], but reports overflow as a typed error
    /// instead of wrapping — the check the hardened sensor controller runs
    /// on every raw count.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CounterSaturated`] if the signal would
    /// overflow the counter inside the window.
    pub fn count_checked(
        &self,
        f_in: Hertz,
        ref_clock: Hertz,
        phase: f64,
    ) -> Result<u64, CircuitError> {
        if self.overflows(f_in, ref_clock) {
            let edges = (f_in.0 * self.window(ref_clock).0).max(0.0) as u64;
            return Err(CircuitError::CounterSaturated {
                edges,
                max_count: self.max_count(),
            });
        }
        Ok(self.count(f_in, ref_clock, phase))
    }

    /// The frequency this counter reports for a raw count.
    #[must_use]
    pub fn frequency_from_count(&self, count: u64, ref_clock: Hertz) -> Hertz {
        Hertz(count as f64 / self.window(ref_clock).0)
    }

    /// One-step measure: count then convert, i.e. the quantized frequency
    /// estimate the digital backend sees.
    #[must_use]
    pub fn measure(&self, f_in: Hertz, ref_clock: Hertz, phase: f64) -> Hertz {
        self.frequency_from_count(self.count(f_in, ref_clock, phase), ref_clock)
    }

    /// Worst-case quantization step of the frequency estimate.
    #[must_use]
    pub fn resolution(&self, ref_clock: Hertz) -> Hertz {
        Hertz(1.0 / self.window(ref_clock).0)
    }

    /// True if a signal at `f_in` would overflow the counter within the
    /// window (the measurement would silently alias).
    #[must_use]
    pub fn overflows(&self, f_in: Hertz, ref_clock: Hertz) -> bool {
        f_in.0 * self.window(ref_clock).0 > self.max_count() as f64
    }
}

/// A divide-by-2^k prescaler placed in front of a counter so GHz-class ring
/// oscillators can be counted by a slower counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prescaler {
    log2_ratio: u32,
}

impl Prescaler {
    /// Divide-by-`2^log2_ratio` prescaler. `log2_ratio` up to 16.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidPrescale`] if `log2_ratio > 16`.
    pub fn new(log2_ratio: u32) -> Result<Self, CircuitError> {
        if log2_ratio > 16 {
            return Err(CircuitError::InvalidPrescale { log2_ratio });
        }
        Ok(Prescaler { log2_ratio })
    }

    /// Division ratio `2^k`.
    #[must_use]
    pub fn ratio(&self) -> u64 {
        1 << self.log2_ratio
    }

    /// Output frequency for a given input.
    #[must_use]
    pub fn output(&self, f_in: Hertz) -> Hertz {
        Hertz(f_in.0 / self.ratio() as f64)
    }

    /// Scales a downstream frequency estimate back to the input domain.
    #[must_use]
    pub fn undo(&self, f_measured: Hertz) -> Hertz {
        Hertz(f_measured.0 * self.ratio() as f64)
    }
}

/// Auto-ranged count: picks the smallest prescale ratio (up to 2^16) that
/// avoids counter overflow — exactly what the hardware range logic does —
/// then performs one gated count.
///
/// Returns the raw count and the prescaler the range logic settled on, so
/// callers can reconstruct the frequency (and model datapath faults on the
/// raw count in between).
///
/// # Errors
///
/// Returns [`CircuitError::CounterSaturated`] if the signal overflows the
/// counter even at the maximum prescale ratio (previously this aliased
/// silently, wrapping like the bare hardware counter would).
pub fn auto_count(
    f_in: Hertz,
    counter: &GatedCounter,
    ref_clock: Hertz,
    phase: f64,
) -> Result<(u64, Prescaler), CircuitError> {
    let mut log2 = 0u32;
    while log2 < 16 && counter.overflows(Prescaler::new(log2)?.output(f_in), ref_clock) {
        log2 += 1;
    }
    let prescaler = Prescaler::new(log2)?;
    let counted = counter.count_checked(prescaler.output(f_in), ref_clock, phase)?;
    Ok((counted, prescaler))
}

/// Auto-ranged measurement: [`auto_count`] followed by the frequency
/// reconstruction the digital backend performs.
///
/// Returns the quantized frequency estimate and the raw count.
///
/// # Errors
///
/// Returns [`CircuitError::CounterSaturated`] if the signal overflows the
/// counter even at the maximum prescale ratio.
pub fn auto_measure(
    f_in: Hertz,
    counter: &GatedCounter,
    ref_clock: Hertz,
    phase: f64,
) -> Result<(Hertz, u64), CircuitError> {
    let (counted, prescaler) = auto_count(f_in, counter, ref_clock, phase)?;
    let f_est = prescaler.undo(counter.frequency_from_count(counted, ref_clock));
    Ok((f_est, counted))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(GatedCounter::new(0, 10).is_err());
        assert!(GatedCounter::new(63, 10).is_err());
        assert!(GatedCounter::new(16, 0).is_err());
        assert!(GatedCounter::new(16, 10).is_ok());
        assert!(Prescaler::new(17).is_err());
    }

    #[test]
    fn construction_errors_report_the_offending_fields() {
        // Regression: these used to stuff the cycle count / log2 ratio into
        // InvalidWindow { seconds }, rendering "invalid measurement window:
        // 10 s" for a 63-bit counter with a 10-cycle window.
        let err = GatedCounter::new(63, 10).unwrap_err();
        assert_eq!(
            err,
            CircuitError::InvalidCounter {
                bits: 63,
                window_cycles: 10,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("63 bits"), "{msg}");
        assert!(msg.contains("10-cycle window"), "{msg}");
        assert!(
            !msg.contains(" s"),
            "must not report cycles as seconds: {msg}"
        );

        let msg = GatedCounter::new(16, 0).unwrap_err().to_string();
        assert!(
            msg.contains("16 bits") && msg.contains("0-cycle window"),
            "{msg}"
        );

        let err = Prescaler::new(17).unwrap_err();
        assert_eq!(err, CircuitError::InvalidPrescale { log2_ratio: 17 });
        let msg = err.to_string();
        assert!(msg.contains("2^17"), "{msg}");
        assert!(!msg.contains("seconds") && !msg.contains("17 s"), "{msg}");
    }

    #[test]
    fn count_is_floor_of_edges() {
        let c = GatedCounter::new(20, 1000).unwrap();
        let rc = Hertz(1e6); // window = 1 ms
        assert_eq!(c.count(Hertz(123_456.0), rc, 0.0), 123);
        assert_eq!(c.count(Hertz(123_999.0), rc, 0.0), 123);
        assert_eq!(c.count(Hertz(124_000.0), rc, 0.0), 124);
    }

    #[test]
    fn phase_can_add_one_edge() {
        let c = GatedCounter::new(20, 1000).unwrap();
        let rc = Hertz(1e6);
        let lo = c.count(Hertz(123_900.0), rc, 0.0);
        let hi = c.count(Hertz(123_900.0), rc, 0.99);
        assert!(hi == lo || hi == lo + 1);
        assert_eq!(
            c.count(Hertz(123_900.0), rc, 0.11),
            c.count(Hertz(123_900.0), rc, 1.11)
        );
    }

    #[test]
    fn measurement_error_bounded_by_resolution() {
        let c = GatedCounter::new(24, 10_000).unwrap();
        let rc = Hertz(10e6); // window = 1 ms
        let f = Hertz(2.345_678e6);
        let est = c.measure(f, rc, 0.3);
        assert!((est.0 - f.0).abs() <= c.resolution(rc).0);
    }

    #[test]
    fn longer_window_finer_resolution() {
        let short = GatedCounter::new(24, 100).unwrap();
        let long = GatedCounter::new(24, 10_000).unwrap();
        let rc = Hertz(1e6);
        assert!(long.resolution(rc).0 < short.resolution(rc).0);
    }

    #[test]
    fn overflow_wraps_like_hardware() {
        let c = GatedCounter::new(8, 1000).unwrap(); // max 255
        let rc = Hertz(1e6); // 1 ms window
        assert!(c.overflows(Hertz(1e6), rc));
        // 1000 edges wraps to 1000 mod 256.
        assert_eq!(c.count(Hertz(1e6), rc, 0.0), 1000 % 256);
    }

    #[test]
    fn frequency_round_trip() {
        let c = GatedCounter::new(24, 5000).unwrap();
        let rc = Hertz(5e6); // 1 ms
        let f = c.frequency_from_count(12_345, rc);
        // 12 345 edges in a 1 ms window = 12.345 MHz.
        assert!((f.0 - 12_345_000.0).abs() < 1.0);
    }

    #[test]
    fn prescaler_round_trip() {
        let p = Prescaler::new(4).unwrap();
        assert_eq!(p.ratio(), 16);
        let f = Hertz(3.2e9);
        let down = p.output(f);
        assert!((down.0 - 2e8).abs() < 1.0);
        assert!((p.undo(down).0 - f.0).abs() < 1e-3);
    }

    #[test]
    fn auto_measure_handles_fast_and_slow_inputs() {
        let c = GatedCounter::new(16, 32_000).unwrap(); // 1 ms @ 32 MHz
        let rc = Hertz(32e6);
        for f in [1e6, 50e6, 2e9, 60e9] {
            let (est, counted) = auto_measure(Hertz(f), &c, rc, 0.4).unwrap();
            assert!(counted <= c.max_count());
            assert!(
                (est.0 - f).abs() / f < 1e-2,
                "f {f:.3e} est {est} counted {counted}"
            );
        }
    }

    #[test]
    fn count_checked_reports_saturation() {
        let c = GatedCounter::new(8, 1000).unwrap(); // max 255
        let rc = Hertz(1e6); // 1 ms window
        assert!(matches!(
            c.count_checked(Hertz(1e6), rc, 0.0),
            Err(CircuitError::CounterSaturated {
                edges: 1000,
                max_count: 255,
            })
        ));
        assert_eq!(c.count_checked(Hertz(200e3), rc, 0.0).unwrap(), 200);
    }

    #[test]
    fn auto_count_saturates_at_max_prescale() {
        // A 4-bit counter with a long window cannot range a GHz signal even
        // at /2^16 — the hardened path must see a typed error, not a wrap.
        let c = GatedCounter::new(4, 32_000).unwrap();
        let rc = Hertz(32e6); // 1 ms window
        assert!(matches!(
            auto_count(Hertz(2e9), &c, rc, 0.0),
            Err(CircuitError::CounterSaturated { .. })
        ));
        assert!(matches!(
            auto_measure(Hertz(2e9), &c, rc, 0.0),
            Err(CircuitError::CounterSaturated { .. })
        ));
        // A countable signal still works and agrees with auto_measure.
        let (counted, p) = auto_count(Hertz(10e3), &c, rc, 0.0).unwrap();
        let (f_est, counted2) = auto_measure(Hertz(10e3), &c, rc, 0.0).unwrap();
        assert_eq!(counted, counted2);
        assert!((p.undo(c.frequency_from_count(counted, rc)).0 - f_est.0).abs() < 1e-9);
    }

    #[test]
    fn prescaler_extends_counter_range() {
        let c = GatedCounter::new(16, 65_000).unwrap();
        let rc = Hertz(65e6); // 1 ms window
        let fast = Hertz(2e9);
        assert!(c.overflows(fast, rc));
        let p = Prescaler::new(6).unwrap(); // /64
        assert!(!c.overflows(p.output(fast), rc));
    }
}
