//! Runtime-parameterized signed fixed-point arithmetic.
//!
//! The sensor's on-chip digital backend performs its calibration and
//! decoupling math in fixed point; the achievable ±1.5 °C / ±1.6 mV accuracy
//! is partly set by word length. Modelling the word length at runtime (rather
//! than via const generics) lets the ablation benches sweep it.
//!
//! Values are stored as `i64` raw words interpreted as `raw / 2^frac_bits`,
//! constrained to the representable range of a signed `int_bits + frac_bits`
//! word (plus sign). Arithmetic saturates by default, as hardware datapaths
//! typically do.

use crate::error::CircuitError;
use std::fmt;

/// A signed Q-format: `int_bits` integer bits and `frac_bits` fraction bits,
/// plus an implicit sign bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Q16.16 — the default backend format of the sensor.
    pub const Q16_16: QFormat = QFormat {
        int_bits: 16,
        frac_bits: 16,
    };

    /// Q8.8 — a narrow format used by the word-length ablation.
    pub const Q8_8: QFormat = QFormat {
        int_bits: 8,
        frac_bits: 8,
    };

    /// Creates a format.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidQFormat`] unless
    /// `1 <= int_bits + frac_bits <= 62`.
    pub fn new(int_bits: u32, frac_bits: u32) -> Result<Self, CircuitError> {
        let total = int_bits + frac_bits;
        if total == 0 || total > 62 {
            return Err(CircuitError::InvalidQFormat {
                int_bits,
                frac_bits,
            });
        }
        Ok(QFormat {
            int_bits,
            frac_bits,
        })
    }

    /// Integer bits.
    #[inline]
    #[must_use]
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Fraction bits.
    #[inline]
    #[must_use]
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total data bits (excluding sign).
    #[inline]
    #[must_use]
    pub fn total_bits(self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// Smallest representable increment.
    #[inline]
    #[must_use]
    pub fn resolution(self) -> f64 {
        (self.frac_bits as f64).exp2().recip()
    }

    /// Largest representable magnitude.
    #[must_use]
    pub fn max_value(self) -> f64 {
        self.raw_max() as f64 * self.resolution()
    }

    #[inline]
    fn raw_max(self) -> i64 {
        (1i64 << self.total_bits()) - 1
    }

    #[inline]
    fn raw_min(self) -> i64 {
        -(1i64 << self.total_bits())
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

/// A fixed-point value in some [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Quantizes a real number into `format`, rounding to nearest and
    /// saturating at the format limits.
    #[inline]
    #[must_use]
    pub fn from_f64(value: f64, format: QFormat) -> Self {
        let scaled = value * (format.frac_bits as f64).exp2();
        let raw = if scaled.is_nan() {
            0
        } else {
            scaled
                .round()
                .clamp(format.raw_min() as f64, format.raw_max() as f64) as i64
        };
        Fixed { raw, format }
    }

    /// Zero in the given format.
    #[inline]
    #[must_use]
    pub fn zero(format: QFormat) -> Self {
        Fixed { raw: 0, format }
    }

    /// One in the given format.
    #[must_use]
    pub fn one(format: QFormat) -> Self {
        Fixed::from_f64(1.0, format)
    }

    /// Raw underlying word.
    #[inline]
    #[must_use]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Format of this value.
    #[inline]
    #[must_use]
    pub fn format(self) -> QFormat {
        self.format
    }

    /// Real value represented.
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Quantization error incurred when representing `value`.
    #[must_use]
    pub fn quantization_error(value: f64, format: QFormat) -> f64 {
        Fixed::from_f64(value, format).to_f64() - value
    }

    #[inline]
    fn check_format(self, other: Fixed) -> Result<(), CircuitError> {
        if self.format == other.format {
            Ok(())
        } else {
            Err(CircuitError::QFormatMismatch)
        }
    }

    #[inline]
    fn saturate(raw: i128, format: QFormat) -> Fixed {
        let clamped = raw.clamp(format.raw_min() as i128, format.raw_max() as i128) as i64;
        Fixed {
            raw: clamped,
            format,
        }
    }

    /// Saturating addition.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QFormatMismatch`] if formats differ.
    // The arithmetic methods share names with the `std::ops` traits but
    // cannot implement them: they are fallible (format-checked) and
    // saturating, and hiding that behind operators would be misleading.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Fixed) -> Result<Fixed, CircuitError> {
        self.check_format(other)?;
        Ok(Fixed::saturate(
            self.raw as i128 + other.raw as i128,
            self.format,
        ))
    }

    /// Saturating subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QFormatMismatch`] if formats differ.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Fixed) -> Result<Fixed, CircuitError> {
        self.check_format(other)?;
        Ok(Fixed::saturate(
            self.raw as i128 - other.raw as i128,
            self.format,
        ))
    }

    /// Saturating multiplication (full-precision intermediate, rounded back
    /// to the common format).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QFormatMismatch`] if formats differ.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Fixed) -> Result<Fixed, CircuitError> {
        self.check_format(other)?;
        let wide = self.raw as i128 * other.raw as i128;
        let frac = self.format.frac_bits;
        // Round to nearest, ties away from zero, symmetrically in sign: the
        // negative branch must mirror the positive one through negation — a
        // bare arithmetic shift would floor negatives, biasing them away
        // from zero by up to one LSB. With no fraction bits there is
        // nothing to round (half would otherwise be a spurious +1).
        let half = if frac == 0 { 0 } else { 1i128 << (frac - 1) };
        let rounded = if wide >= 0 {
            (wide + half) >> frac
        } else {
            -((-wide + half) >> frac)
        };
        Ok(Fixed::saturate(rounded, self.format))
    }

    /// Saturating division (full-precision intermediate).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::QFormatMismatch`] if formats differ;
    /// * [`CircuitError::FixedDivideByZero`] if `other` is zero.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Fixed) -> Result<Fixed, CircuitError> {
        self.check_format(other)?;
        if other.raw == 0 {
            return Err(CircuitError::FixedDivideByZero);
        }
        let num = (self.raw as i128) << self.format.frac_bits;
        let quot = num / other.raw as i128;
        Ok(Fixed::saturate(quot, self.format))
    }

    /// Saturating negation.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Fixed {
        Fixed::saturate(-(self.raw as i128), self.format)
    }

    /// Absolute value (saturating).
    #[inline]
    #[must_use]
    pub fn abs(self) -> Fixed {
        if self.raw < 0 {
            self.neg()
        } else {
            self
        }
    }

    /// The stored word with one bit flipped — a single-event upset (SEU) in
    /// the register holding this value. `bit` 0 is the LSB; `bit` may range
    /// over the data bits plus the sign position (`total_bits()`).
    ///
    /// The flip acts on the raw two's-complement word, exactly as radiation
    /// would: the resulting value stays inside the register's physical
    /// range but can be arbitrarily far from the original value.
    #[must_use]
    pub fn with_bit_flipped(self, bit: u32) -> Fixed {
        let bit = bit.min(self.format.total_bits());
        // Flip within the sign-extended word, then fold back into range:
        // flipping the top (sign) bit toggles between x and x - 2^(total+1).
        let mask = 1i64 << bit;
        let flipped = self.raw ^ mask;
        let wrapped = if flipped > self.format.raw_max() {
            flipped - (1i64 << (self.format.total_bits() + 1))
        } else if flipped < self.format.raw_min() {
            flipped + (1i64 << (self.format.total_bits() + 1))
        } else {
            flipped
        };
        Fixed {
            raw: wrapped,
            format: self.format,
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_validation() {
        assert!(QFormat::new(16, 16).is_ok());
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(40, 40).is_err());
    }

    #[test]
    fn round_trip_small_values() {
        let q = QFormat::Q16_16;
        for v in [0.0, 1.0, -1.0, 0.5, 3.25, -127.875] {
            assert_eq!(Fixed::from_f64(v, q).to_f64(), v);
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let q = QFormat::Q16_16;
        for i in 0..1000 {
            let v = (i as f64) * 0.001_234_5 - 0.6;
            let e = Fixed::quantization_error(v, q);
            assert!(e.abs() <= q.resolution() / 2.0 + 1e-15);
        }
    }

    #[test]
    fn saturation_at_limits() {
        let q = QFormat::Q8_8;
        let big = Fixed::from_f64(1e9, q);
        assert!((big.to_f64() - q.max_value()).abs() < 1e-9);
        let small = Fixed::from_f64(-1e9, q);
        assert!(small.to_f64() <= -q.max_value());
    }

    #[test]
    fn add_sub_exact_within_range() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(1.5, q);
        let b = Fixed::from_f64(2.25, q);
        assert_eq!(a.add(b).unwrap().to_f64(), 3.75);
        assert_eq!(a.sub(b).unwrap().to_f64(), -0.75);
    }

    #[test]
    fn add_saturates_instead_of_wrapping() {
        let q = QFormat::Q8_8;
        let a = Fixed::from_f64(q.max_value(), q);
        let sum = a.add(a).unwrap();
        assert_eq!(sum.to_f64(), q.max_value());
    }

    #[test]
    fn mul_div_close_to_real_arithmetic() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(3.25, q);
        let b = Fixed::from_f64(2.6, q);
        let prod = a.mul(b).unwrap().to_f64();
        assert!((prod - 3.25 * 2.6).abs() < 3.0 * q.resolution());
        let quot = a.div(b).unwrap().to_f64();
        assert!((quot - 3.25 / 2.6).abs() < 3.0 * q.resolution());
    }

    #[test]
    fn mul_rounds_negative_sub_half_lsb_toward_zero() {
        // raw −1 × raw 16384 (0.25) ⇒ exact product −0.25 LSB, which must
        // round to zero. The old floor-based shift returned −1 LSB.
        let q = QFormat::Q16_16;
        let a = Fixed { raw: -1, format: q };
        let b = Fixed {
            raw: 16384,
            format: q,
        };
        assert_eq!(a.mul(b).unwrap().raw(), 0);
        // A tie (−0.5 LSB exactly) rounds away from zero, matching the
        // positive branch.
        let c = Fixed {
            raw: 32768,
            format: q,
        };
        assert_eq!(a.mul(c).unwrap().raw(), -1);
        assert_eq!(a.neg().mul(c).unwrap().raw(), 1);
    }

    #[test]
    fn mul_with_zero_frac_bits_is_exact() {
        // With no fraction bits there is nothing to round; the old code
        // still added a spurious half = 1 to every product.
        let q = QFormat::new(20, 0).unwrap();
        let a = Fixed::from_f64(3.0, q);
        let b = Fixed::from_f64(5.0, q);
        assert_eq!(a.mul(b).unwrap().to_f64(), 15.0);
        assert_eq!(a.neg().mul(b).unwrap().to_f64(), -15.0);
    }

    #[test]
    fn div_by_zero_is_error() {
        let q = QFormat::Q16_16;
        let a = Fixed::one(q);
        assert_eq!(
            a.div(Fixed::zero(q)).unwrap_err(),
            CircuitError::FixedDivideByZero
        );
    }

    #[test]
    fn mixed_formats_rejected() {
        let a = Fixed::one(QFormat::Q16_16);
        let b = Fixed::one(QFormat::Q8_8);
        assert_eq!(a.add(b).unwrap_err(), CircuitError::QFormatMismatch);
        assert_eq!(a.mul(b).unwrap_err(), CircuitError::QFormatMismatch);
    }

    #[test]
    fn neg_abs() {
        let q = QFormat::Q16_16;
        let a = Fixed::from_f64(-2.5, q);
        assert_eq!(a.abs().to_f64(), 2.5);
        assert_eq!(a.neg().to_f64(), 2.5);
        assert_eq!(a.abs().neg().to_f64(), -2.5);
    }

    #[test]
    fn bit_flip_changes_value_and_double_flip_restores() {
        let q = QFormat::Q16_16;
        let v = Fixed::from_f64(0.0123, q);
        for bit in [0, 5, 12, 20, q.total_bits()] {
            let hit = v.with_bit_flipped(bit);
            assert_ne!(hit.raw(), v.raw(), "bit {bit} flip must change the word");
            assert_eq!(hit.with_bit_flipped(bit).raw(), v.raw());
            assert!(hit.raw() <= q.max_value() as i64 * (1 << q.frac_bits()) + 1);
        }
        // Flip magnitude matches the bit weight for in-range results.
        let lsb = v.with_bit_flipped(0);
        assert!((lsb.to_f64() - v.to_f64()).abs() - q.resolution() < 1e-12);
    }

    #[test]
    fn nan_quantizes_to_zero() {
        assert_eq!(Fixed::from_f64(f64::NAN, QFormat::Q16_16).to_f64(), 0.0);
    }

    #[test]
    fn resolution_and_display() {
        let q = QFormat::new(4, 10).unwrap();
        assert!((q.resolution() - 1.0 / 1024.0).abs() < 1e-15);
        assert_eq!(q.to_string(), "Q4.10");
        let v = Fixed::from_f64(0.5, q);
        assert!(v.to_string().contains("0.5"));
    }

    #[test]
    fn narrower_format_larger_error() {
        let v = 0.123_456_789;
        let e16 = Fixed::quantization_error(v, QFormat::Q16_16).abs();
        let e8 = Fixed::quantization_error(v, QFormat::Q8_8).abs();
        assert!(e8 >= e16);
    }
}
