//! Ring oscillators built from device-level inverters.

use crate::error::CircuitError;
use ptsim_device::delay::{DelayCache, ThermalPoint};
use ptsim_device::inverter::{CmosEnv, Inverter};
use ptsim_device::process::Technology;
use ptsim_device::units::{Celsius, Farad, Hertz, Joule, Seconds, Volt, Watt};

/// An N-stage inverter ring oscillator.
///
/// The oscillation period is `2·N·t_stage`, where each stage drives the next
/// stage's input capacitance plus its own junction capacitance plus an
/// explicit wire load. Per period, every node rises and falls exactly once,
/// so the dynamic energy per period is `N·C_node·VDD²`.
///
/// ```
/// use ptsim_circuit::ring::InverterRing;
/// use ptsim_device::inverter::{CmosEnv, Inverter};
/// use ptsim_device::process::Technology;
/// use ptsim_device::units::{Farad, Micron, Volt};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::n65();
/// let inv = Inverter::balanced(Micron(0.5), 2.0, &tech)?;
/// let ro = InverterRing::new(31, inv, Farad(0.5e-15), Volt(1.0))?;
/// let f = ro.frequency(&tech, &CmosEnv::nominal());
/// assert!(f.0 > 1e8, "GHz-class oscillator, got {f}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterRing {
    stages: usize,
    inverter: Inverter,
    wire_load: Farad,
    vdd: Volt,
}

impl InverterRing {
    /// Creates a ring oscillator.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidStageCount`] unless `stages` is odd and
    /// at least 3.
    pub fn new(
        stages: usize,
        inverter: Inverter,
        wire_load: Farad,
        vdd: Volt,
    ) -> Result<Self, CircuitError> {
        if stages < 3 || stages.is_multiple_of(2) {
            return Err(CircuitError::InvalidStageCount { stages });
        }
        Ok(InverterRing {
            stages,
            inverter,
            wire_load,
            vdd,
        })
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The stage inverter.
    #[must_use]
    pub fn inverter(&self) -> &Inverter {
        &self.inverter
    }

    /// Supply voltage the ring runs at.
    #[must_use]
    pub fn vdd(&self) -> Volt {
        self.vdd
    }

    /// Copy of this ring at a different supply (for voltage sweeps).
    #[must_use]
    pub fn with_vdd(mut self, vdd: Volt) -> Self {
        self.vdd = vdd;
        self
    }

    /// Capacitance switched at each internal node.
    #[must_use]
    pub fn node_cap(&self, tech: &Technology) -> Farad {
        self.inverter.input_cap(tech) + self.inverter.output_cap(tech) + self.wire_load
    }

    /// Stage propagation delay under `env`.
    #[must_use]
    pub fn stage_delay(&self, tech: &Technology, env: &CmosEnv) -> Seconds {
        self.inverter
            .stage_delay(tech, self.vdd, self.node_cap(tech), env)
    }

    /// Oscillation period `2·N·t_stage`.
    #[must_use]
    pub fn period(&self, tech: &Technology, env: &CmosEnv) -> Seconds {
        Seconds(2.0 * self.stages as f64 * self.stage_delay(tech, env).0)
    }

    /// Oscillation frequency.
    #[must_use]
    pub fn frequency(&self, tech: &Technology, env: &CmosEnv) -> Hertz {
        self.period(tech, env).to_frequency()
    }

    /// Dynamic energy dissipated per oscillation period (`N·C·VDD²`).
    #[must_use]
    pub fn energy_per_period(&self, tech: &Technology) -> Joule {
        Joule(self.stages as f64 * self.node_cap(tech).0 * self.vdd.0 * self.vdd.0)
    }

    /// Dynamic power while running.
    #[must_use]
    pub fn dynamic_power(&self, tech: &Technology, env: &CmosEnv) -> Watt {
        Watt(self.energy_per_period(tech).0 * self.frequency(tech, env).0)
    }

    /// Static leakage power of all stages (paid even when gated off only if
    /// the ring is not power-gated; the sensor power-gates idle rings).
    #[must_use]
    pub fn leakage_power(&self, tech: &Technology, env: &CmosEnv) -> Watt {
        Watt(self.stages as f64 * self.inverter.leakage_power(tech, self.vdd, env).0)
    }

    /// Total energy to run the ring for `duration` (dynamic + leakage).
    #[must_use]
    pub fn run_energy(&self, tech: &Technology, env: &CmosEnv, duration: Seconds) -> Joule {
        let p = self.dynamic_power(tech, env).0 + self.leakage_power(tech, env).0;
        Joule(p * duration.0)
    }
}

/// Precomputed hot-path evaluation state of one [`InverterRing`]: the
/// device-level [`DelayCache`] plus the ring-level temperature-independent
/// products (node capacitance, the `2·N` period prefix, the `N·C_node`
/// energy prefix). Bit-identical to the uncached ring methods by the same
/// exact-memoization contract as [`DelayCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingCache {
    delay: DelayCache,
    node_cap: Farad,
    /// Period prefix `2·N` (left-associated prefix of `2·N·t_stage`).
    two_stages: f64,
    /// Stage count as float (leakage-power prefix).
    stages_f: f64,
    /// Energy prefix `N·C_node` (left-associated prefix of `N·C·VDD²`).
    energy_prefix: f64,
}

impl RingCache {
    /// Hoists the temperature-independent constants of `ring` under `tech`.
    #[must_use]
    pub fn new(ring: &InverterRing, tech: &Technology) -> Self {
        let delay = DelayCache::new(ring.inverter(), tech);
        let node_cap = delay.input_cap() + delay.output_cap() + ring.wire_load;
        let stages_f = ring.stages as f64;
        RingCache {
            delay,
            node_cap,
            two_stages: 2.0 * stages_f,
            stages_f,
            energy_prefix: stages_f * node_cap.0,
        }
    }

    /// Shared per-temperature quantities (see [`DelayCache::thermal`]).
    #[must_use]
    pub fn thermal(&self, temp: Celsius) -> ThermalPoint {
        self.delay.thermal(temp)
    }

    /// Precomputed [`InverterRing::node_cap`].
    #[must_use]
    pub fn node_cap(&self) -> Farad {
        self.node_cap
    }

    /// Bit-identical to `ring.with_vdd(vdd).frequency(tech, env)` at
    /// `env.temp == th`'s temperature.
    #[must_use]
    pub fn frequency(&self, th: &ThermalPoint, vdd: Volt, env: &CmosEnv) -> Hertz {
        let stage = self.delay.stage_delay(th, vdd, self.node_cap, env);
        Seconds(self.two_stages * stage.0).to_frequency()
    }

    /// [`RingCache::frequency`] with the drain-saturation factor already
    /// computed (`drain` must be
    /// [`DelayCache::drain_factor`]`(th, vdd)`) — lets a solver evaluating
    /// several rings at one `(temperature, supply)` point share the factor.
    #[must_use]
    pub fn frequency_with_drain(
        &self,
        th: &ThermalPoint,
        drain: f64,
        vdd: Volt,
        env: &CmosEnv,
    ) -> Hertz {
        let stage = self
            .delay
            .stage_delay_with_drain(th, drain, vdd, self.node_cap, env);
        Seconds(self.two_stages * stage.0).to_frequency()
    }

    /// The underlying per-inverter [`DelayCache`] — solver loops use it to
    /// evaluate per-device on-currents they can then memoize across
    /// finite-difference perturbations.
    #[must_use]
    pub fn delay(&self) -> &DelayCache {
        &self.delay
    }

    /// [`RingCache::frequency_with_drain`] with both device on-currents
    /// already computed (`ion_n`/`ion_p` must be this cache's
    /// [`DelayCache::nmos_current`]/[`DelayCache::pmos_current`] at the
    /// same `(th, vdd, drain)` point) — the exact arithmetic tail of the
    /// drain-factor path, so a solver that knows a perturbation left one
    /// device untouched can skip re-evaluating it.
    #[must_use]
    pub fn frequency_from_currents(&self, ion_n: f64, ion_p: f64, vdd: Volt) -> Hertz {
        let stage = self
            .delay
            .stage_delay_from_currents(ion_n, ion_p, vdd, self.node_cap);
        Seconds(self.two_stages * stage.0).to_frequency()
    }

    /// Lane-parallel [`RingCache::frequency_from_currents`]: recombines
    /// per-lane device currents into per-lane oscillation frequencies in one
    /// fixed-trip loop over [`LANES`](ptsim_device::delay::LANES). Each lane
    /// is bit-identical to the scalar call with that lane's operands.
    #[inline]
    pub fn frequency_from_currents_lanes(
        &self,
        ion_n: &[f64; ptsim_device::delay::LANES],
        ion_p: &[f64; ptsim_device::delay::LANES],
        vdd: Volt,
        active: &[bool; ptsim_device::delay::LANES],
        out: &mut [f64; ptsim_device::delay::LANES],
    ) {
        for l in 0..ptsim_device::delay::LANES {
            if active[l] {
                out[l] = self.frequency_from_currents(ion_n[l], ion_p[l], vdd).0;
            }
        }
    }

    /// Bit-identical to `ring.with_vdd(vdd).run_energy(tech, env, duration)`
    /// given `frequency` previously obtained from [`RingCache::frequency`]
    /// (or the uncached equivalent) at the same `(vdd, env)` — the second
    /// ring evaluation the uncached path performs inside
    /// [`InverterRing::dynamic_power`] is elided by reusing that value.
    #[must_use]
    pub fn run_energy_with(
        &self,
        th: &ThermalPoint,
        vdd: Volt,
        env: &CmosEnv,
        frequency: Hertz,
        duration: Seconds,
    ) -> Joule {
        let energy_per_period = self.energy_prefix * vdd.0 * vdd.0;
        let dynamic = energy_per_period * frequency.0;
        let leakage = self.stages_f * self.delay.leakage_power(th, vdd, env).0;
        let p = dynamic + leakage;
        Joule(p * duration.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptsim_device::units::{Celsius, Micron};

    fn tech() -> Technology {
        Technology::n65()
    }

    fn ring(stages: usize) -> InverterRing {
        let inv = Inverter::balanced(Micron(0.5), 2.0, &tech()).unwrap();
        InverterRing::new(stages, inv, Farad(0.5e-15), Volt(1.0)).unwrap()
    }

    #[test]
    fn rejects_even_or_tiny_stage_counts() {
        let inv = Inverter::balanced(Micron(0.5), 2.0, &tech()).unwrap();
        assert!(InverterRing::new(4, inv, Farad::ZERO, Volt(1.0)).is_err());
        assert!(InverterRing::new(1, inv, Farad::ZERO, Volt(1.0)).is_err());
        assert!(InverterRing::new(3, inv, Farad::ZERO, Volt(1.0)).is_ok());
    }

    #[test]
    fn more_stages_lower_frequency() {
        let t = tech();
        let env = CmosEnv::nominal();
        let f31 = ring(31).frequency(&t, &env).0;
        let f61 = ring(61).frequency(&t, &env).0;
        assert!(f31 > 1.8 * f61 && f31 < 2.2 * f61);
    }

    #[test]
    fn frequency_in_plausible_range() {
        let f = ring(31).frequency(&tech(), &CmosEnv::nominal());
        assert!(
            f.0 > 1e8 && f.0 < 2e10,
            "31-stage 65nm RO should be 0.1-20 GHz, got {f}"
        );
    }

    #[test]
    fn lower_vdd_slower_and_less_energy() {
        let t = tech();
        let env = CmosEnv::nominal();
        let hi = ring(31);
        let lo = hi.with_vdd(Volt(0.6));
        assert!(lo.frequency(&t, &env).0 < hi.frequency(&t, &env).0);
        assert!(lo.energy_per_period(&t).0 < hi.energy_per_period(&t).0);
    }

    #[test]
    fn higher_vt_slower() {
        let t = tech();
        let slow_env = CmosEnv {
            d_vtn: Volt(0.04),
            d_vtp: Volt(0.04),
            ..CmosEnv::nominal()
        };
        let r = ring(31);
        assert!(r.frequency(&t, &slow_env).0 < r.frequency(&t, &CmosEnv::nominal()).0);
    }

    #[test]
    fn period_frequency_consistency() {
        let t = tech();
        let env = CmosEnv::at(Celsius(60.0));
        let r = ring(13);
        let prod = r.period(&t, &env).0 * r.frequency(&t, &env).0;
        assert!((prod - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_per_period_scales_with_stage_count() {
        let t = tech();
        let e31 = ring(31).energy_per_period(&t).0;
        let e61 = ring(61).energy_per_period(&t).0;
        assert!((e61 / e31 - 61.0 / 31.0).abs() < 1e-9);
    }

    #[test]
    fn run_energy_combines_dynamic_and_leakage() {
        let t = tech();
        let env = CmosEnv::nominal();
        let r = ring(31);
        let window = Seconds(1e-6);
        let e = r.run_energy(&t, &env, window).0;
        let dyn_only = r.dynamic_power(&t, &env).0 * window.0;
        assert!(e > dyn_only);
        assert!(e < dyn_only * 1.5, "leakage is a small fraction at 1.0 V");
    }

    #[test]
    fn dynamic_power_positive_microwatt_scale() {
        let p = ring(31).dynamic_power(&tech(), &CmosEnv::nominal());
        assert!(p.0 > 1e-7 && p.0 < 1e-2, "RO power {p}");
    }

    ptsim_rng::forall! {
        #[test]
        fn ring_cache_frequency_is_bit_identical(
            t in -55.0f64..150.0,
            dn in -0.05f64..0.05,
            dp in -0.05f64..0.05,
            mu in 0.8f64..1.25,
            vdd in 0.35f64..1.1,
        ) {
            let tech = tech();
            let r = ring(51);
            let cache = RingCache::new(&r, &tech);
            let env = CmosEnv {
                temp: Celsius(t),
                d_vtn: Volt(dn),
                d_vtp: Volt(dp),
                mu_n: mu,
                mu_p: 2.05 - mu,
            };
            let th = cache.thermal(env.temp);
            let cached = cache.frequency(&th, Volt(vdd), &env);
            let reference = r.with_vdd(Volt(vdd)).frequency(&tech, &env);
            assert_eq!(cached.0.to_bits(), reference.0.to_bits());
        }

        #[test]
        fn ring_cache_run_energy_is_bit_identical(
            t in -55.0f64..150.0,
            dn in -0.05f64..0.05,
            vdd in 0.35f64..1.1,
        ) {
            let tech = tech();
            let r = ring(51).with_vdd(Volt(vdd));
            let cache = RingCache::new(&r, &tech);
            let env = CmosEnv {
                temp: Celsius(t),
                d_vtn: Volt(dn),
                d_vtp: Volt(-dn),
                mu_n: 1.03,
                mu_p: 0.97,
            };
            let th = cache.thermal(env.temp);
            let f = cache.frequency(&th, Volt(vdd), &env);
            let window = Seconds(14e-6);
            let cached = cache.run_energy_with(&th, Volt(vdd), &env, f, window);
            let reference = r.run_energy(&tech, &env, window);
            assert_eq!(cached.0.to_bits(), reference.0.to_bits());
        }
    }
}
