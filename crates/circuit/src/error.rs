//! Error type for the circuit crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating circuit blocks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A ring oscillator was configured with an invalid stage count
    /// (must be odd and at least 3).
    InvalidStageCount {
        /// Offending stage count.
        stages: usize,
    },
    /// A Q-format was configured with an unsupported bit allocation.
    InvalidQFormat {
        /// Integer bits requested.
        int_bits: u32,
        /// Fraction bits requested.
        frac_bits: u32,
    },
    /// Two fixed-point operands had different Q-formats.
    QFormatMismatch,
    /// A fixed-point operation overflowed its format and saturation was
    /// disabled.
    FixedOverflow,
    /// Division by a zero fixed-point value.
    FixedDivideByZero,
    /// A counter/measurement window parameter was not a positive finite
    /// number.
    InvalidWindow {
        /// Offending window length in seconds.
        seconds: f64,
    },
    /// A gated counter was configured with an unsupported width or an empty
    /// gating window.
    InvalidCounter {
        /// Requested counter width in flip-flops (must be 1..=62).
        bits: u32,
        /// Requested gating window in reference-clock cycles (must be
        /// non-zero).
        window_cycles: u64,
    },
    /// A prescaler was configured with an unsupported division ratio.
    InvalidPrescale {
        /// Requested `log2` of the division ratio (must be at most 16).
        log2_ratio: u32,
    },
    /// A gated count exceeded the counter width even at the maximum
    /// prescale ratio — the measurement would alias (wrap) in hardware.
    CounterSaturated {
        /// Edges that would have been counted inside the window.
        edges: u64,
        /// Largest count the counter can hold.
        max_count: u64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidStageCount { stages } => {
                write!(
                    f,
                    "ring oscillator needs an odd stage count >= 3, got {stages}"
                )
            }
            CircuitError::InvalidQFormat {
                int_bits,
                frac_bits,
            } => {
                write!(
                    f,
                    "invalid Q-format Q{int_bits}.{frac_bits} (need 1..=62 total bits)"
                )
            }
            CircuitError::QFormatMismatch => {
                write!(f, "fixed-point operands have different formats")
            }
            CircuitError::FixedOverflow => write!(f, "fixed-point overflow"),
            CircuitError::FixedDivideByZero => write!(f, "fixed-point division by zero"),
            CircuitError::InvalidWindow { seconds } => {
                write!(f, "invalid measurement window: {seconds} s")
            }
            CircuitError::InvalidCounter {
                bits,
                window_cycles,
            } => {
                write!(
                    f,
                    "invalid gated counter: {bits} bits, {window_cycles}-cycle window \
                     (need 1..=62 bits and a non-zero window)"
                )
            }
            CircuitError::InvalidPrescale { log2_ratio } => {
                write!(
                    f,
                    "invalid prescaler ratio 2^{log2_ratio} (largest supported is 2^16)"
                )
            }
            CircuitError::CounterSaturated { edges, max_count } => {
                write!(
                    f,
                    "gated counter saturated: {edges} edges exceed max count {max_count}"
                )
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(CircuitError::InvalidStageCount { stages: 4 }
            .to_string()
            .contains('4'));
        assert!(CircuitError::QFormatMismatch.to_string().contains("format"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CircuitError>();
    }
}
