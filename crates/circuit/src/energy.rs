//! Per-component energy bookkeeping.
//!
//! The 367.5 pJ/conversion headline number decomposes into ring-oscillator,
//! counter, controller and arithmetic contributions; the ledger keeps the
//! breakdown so the energy table (T1) can be regenerated.

use ptsim_device::units::Joule;
use std::fmt;

/// Accumulates energy per named component.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyLedger {
    entries: Vec<(String, Joule)>,
}

impl EnergyLedger {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Adds energy to a component, creating it if needed.
    pub fn add(&mut self, component: &str, energy: Joule) {
        if let Some((_, e)) = self.entries.iter_mut().find(|(n, _)| n == component) {
            *e += energy;
        } else {
            self.entries.push((component.to_owned(), energy));
        }
    }

    /// Energy attributed to one component (zero if absent).
    #[must_use]
    pub fn component(&self, name: &str) -> Joule {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| *e)
            .unwrap_or(Joule::ZERO)
    }

    /// Total energy across components.
    #[must_use]
    pub fn total(&self) -> Joule {
        self.entries.iter().map(|(_, e)| *e).sum()
    }

    /// Iterates `(component, energy)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joule)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), *e))
    }

    /// Number of distinct components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no energy has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (n, e) in other.iter() {
            self.add(n, e);
        }
    }

    /// Renders the breakdown as an aligned text table in picojoules.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .entries
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(9)
            .max("component".len());
        out.push_str(&format!("{:<width$}  energy [pJ]   share\n", "component"));
        let total = self.total().0.max(f64::MIN_POSITIVE);
        for (n, e) in self.iter() {
            out.push_str(&format!(
                "{:<width$}  {:>11.2}   {:>5.1}%\n",
                n,
                e.picojoules(),
                100.0 * e.0 / total,
            ));
        }
        out.push_str(&format!(
            "{:<width$}  {:>11.2}   100.0%\n",
            "TOTAL",
            self.total().picojoules(),
        ));
        out
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_component() {
        let mut l = EnergyLedger::new();
        l.add("ro", Joule::from_picojoules(100.0));
        l.add("ro", Joule::from_picojoules(50.0));
        l.add("counter", Joule::from_picojoules(25.0));
        assert!((l.component("ro").picojoules() - 150.0).abs() < 1e-9);
        assert!((l.total().picojoules() - 175.0).abs() < 1e-9);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn missing_component_is_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.component("nothing"), Joule::ZERO);
        assert!(l.is_empty());
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = EnergyLedger::new();
        a.add("x", Joule(1.0));
        let mut b = EnergyLedger::new();
        b.add("x", Joule(2.0));
        b.add("y", Joule(3.0));
        a.merge(&b);
        assert_eq!(a.component("x").0, 3.0);
        assert_eq!(a.component("y").0, 3.0);
    }

    #[test]
    fn table_lists_components_and_total() {
        let mut l = EnergyLedger::new();
        l.add("oscillators", Joule::from_picojoules(200.0));
        l.add("counters", Joule::from_picojoules(100.0));
        let t = l.render_table();
        assert!(t.contains("oscillators"));
        assert!(t.contains("TOTAL"));
        assert!(t.contains("300.00"));
        assert!(t.contains("66.7%"));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut l = EnergyLedger::new();
        l.add("b", Joule(1.0));
        l.add("a", Joule(1.0));
        let names: Vec<&str> = l.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
